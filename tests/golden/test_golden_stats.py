"""Golden regression tests: seed-pinned headline statistics.

Pins the reproduction's headline numbers behind Table 2 and Figs. 2, 6
and 12 at a fixed scale against JSON fixtures.  Every generator seed is
calibrated and recorded, so these numbers are exact functions of the
code — a drift here means a behavior change in workload generation,
trace analysis, planning, or emulation, and must be deliberate.

To re-pin after an intentional change:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.comparison import run_comparison
from repro.experiments.settings import ExperimentSettings
from repro.experiments.traceanalysis import (
    P2A_GRID,
    RATIO_GRID,
    burstiness_by_datacenter,
    resource_ratio_by_datacenter,
    table2_summary,
)
from repro.numerics import approx_eq

GOLDEN_SCALE = 0.05
FIXTURES = Path(__file__).parent / "fixtures"
REGEN_ENV = "REPRO_REGEN_GOLDEN"

#: Relative tolerance for pinned floats.  The pipeline is deterministic
#: given the recorded seeds; the slack only absorbs float-accumulation
#: differences across BLAS/platform variants.
REL_TOL = 1e-6
ABS_TOL = 1e-9


def _regen() -> bool:
    return bool(os.environ.get(REGEN_ENV, ""))


def _check(fixture_name: str, computed: Dict[str, object]) -> None:
    """Compare a computed document against its fixture (or re-pin it)."""
    path = FIXTURES / f"{fixture_name}.json"
    if _regen():
        FIXTURES.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(computed, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return
    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing; regenerate with "
            f"{REGEN_ENV}=1"
        )
    expected = json.loads(path.read_text(encoding="utf-8"))
    _compare(fixture_name, expected, computed)


def _compare(where: str, expected: object, computed: object) -> None:
    if isinstance(expected, dict):
        assert isinstance(computed, dict), f"{where}: type changed"
        assert sorted(expected) == sorted(computed), f"{where}: keys changed"
        for key in expected:
            _compare(f"{where}.{key}", expected[key], computed[key])
    elif isinstance(expected, list):
        assert isinstance(computed, list), f"{where}: type changed"
        assert len(expected) == len(computed), f"{where}: length changed"
        for index, (e, c) in enumerate(zip(expected, computed)):
            _compare(f"{where}[{index}]", e, c)
    elif isinstance(expected, float) or isinstance(computed, float):
        assert approx_eq(
            float(expected), float(computed), rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), f"{where}: {computed!r} drifted from pinned {expected!r}"
    else:
        assert expected == computed, (
            f"{where}: {computed!r} != pinned {expected!r}"
        )


def test_table2_workload_statistics() -> None:
    """Table 2: generated estate sizes and measured CPU utilizations."""
    rows = table2_summary(scale=GOLDEN_SCALE)
    computed = {
        str(row["name"]): {
            "generated_servers": int(row["generated_servers"]),
            "measured_cpu_util": float(row["measured_cpu_util"]),
        }
        for row in rows
    }
    _check("table2", computed)


def test_fig2_cpu_peak_to_average_cdf() -> None:
    """Fig. 2: CPU peak-to-average CDF at the 2-hour sizing interval."""
    reports = burstiness_by_datacenter(scale=GOLDEN_SCALE)
    computed = {
        key: {
            "p2a_cdf_2h": [
                float(report.peak_to_average[("cpu", 2.0)].at(x))
                for x in P2A_GRID
            ],
        }
        for key, report in reports.items()
    }
    _check("fig2", computed)


def test_fig6_resource_ratio() -> None:
    """Fig. 6: CPU:memory demand-ratio CDF + memory-constrained share."""
    reports = resource_ratio_by_datacenter(scale=GOLDEN_SCALE)
    computed = {
        key: {
            "ratio_cdf": [float(report.cdf.at(x)) for x in RATIO_GRID],
            "fraction_memory_constrained": float(
                report.fraction_memory_constrained
            ),
        }
        for key, report in reports.items()
    }
    _check("fig6", computed)


@pytest.mark.parametrize("datacenter", ["banking", "beverage"])
def test_fig12_dynamic_active_fraction(datacenter: str) -> None:
    """Fig. 12: the dynamic scheme's active-server-fraction statistics."""
    settings = ExperimentSettings(scale=GOLDEN_SCALE)
    comparison = run_comparison(datacenter, settings)
    dynamic = comparison.dynamic()
    grid = (0.2, 0.3, 0.5, 0.7, 0.9, 1.0)
    cdf = dynamic.active_fraction_cdf()
    computed = {
        "provisioned_servers": int(dynamic.provisioned_servers),
        "mean_active_fraction": float(
            dynamic.active_fraction_series().mean()
        ),
        "active_fraction_cdf": [float(cdf.at(x)) for x in grid],
        "total_migrations": int(dynamic.total_migrations()),
    }
    _check(f"fig12_{datacenter}", computed)
