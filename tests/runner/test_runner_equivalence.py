"""Serial / parallel / cache-warm equivalence of the experiment runner.

The runner's headline guarantee: the execution strategy is invisible in
the results.  A sweep run serially, across 2 workers, across 4 workers,
and replayed from a warm cache must return identical result objects in
identical order — because executors are pure and every seed lives in
the task spec.
"""

from __future__ import annotations

import pytest

from repro.experiments.settings import ExperimentSettings
from repro.runner import (
    ExperimentRunner,
    derive_seed,
    sensitivity_sweep,
    trace_task,
)
from repro.runner.registry import execute

SCALE = 0.03
DATACENTERS = ("banking", "airlines")


@pytest.fixture(scope="module")
def settings() -> ExperimentSettings:
    return ExperimentSettings(scale=SCALE)


@pytest.fixture(scope="module")
def tasks(settings):
    return sensitivity_sweep(settings, DATACENTERS)


def test_serial_parallel_and_warm_runs_are_identical(
    tasks, settings, tmp_path_factory
) -> None:
    serial = ExperimentRunner(
        serial=True, cache_dir=tmp_path_factory.mktemp("serial-cache")
    )
    two = ExperimentRunner(
        workers=2, cache_dir=tmp_path_factory.mktemp("par2-cache")
    )
    four_cache = tmp_path_factory.mktemp("par4-cache")
    four = ExperimentRunner(workers=4, cache_dir=four_cache)

    serial_report = serial.run(tasks)
    two_report = two.run(tasks)
    four_report = four.run(tasks)
    warm_report = ExperimentRunner(workers=4, cache_dir=four_cache).run(
        tasks
    )

    # Object-for-object equality, in submitted order.
    assert serial_report.results == two_report.results
    assert serial_report.results == four_report.results
    assert serial_report.results == warm_report.results
    assert [r.workload for r in serial_report.results] == [
        "banking",
        "airlines",
    ]

    # Every cold run computed, the warm run only loaded.
    assert serial_report.cache_misses == len(tasks)
    assert warm_report.cache_hits == len(tasks)
    assert warm_report.cache_misses == 0

    # The warm rerun skipped trace generation too: the trace-set
    # sub-tasks the sweep resolved are already in the cache.
    cache = ExperimentRunner(cache_dir=four_cache).cache()
    for key in DATACENTERS:
        _, hit = cache.get(trace_task(key, scale=SCALE))
        assert hit, f"trace set for {key} missing from warm cache"


def test_uncached_runner_matches_cached(tasks, tmp_path) -> None:
    cached = ExperimentRunner(serial=True, cache_dir=tmp_path / "cache")
    uncached = ExperimentRunner(serial=True, use_cache=False)
    assert uncached.cache_dir is None
    assert cached.run(tasks).results == uncached.run(tasks).results


def test_replicate_seeds_change_results(settings, tmp_path) -> None:
    """Replicated sweeps draw genuinely different trace realizations."""
    runner = ExperimentRunner(serial=True, cache_dir=tmp_path / "cache")
    replicated = sensitivity_sweep(
        settings, ["banking"], replicates=2
    )
    assert len(replicated) == 2
    base, replica = runner.run(replicated).results
    assert base.workload == replica.workload == "banking"
    assert base != replica  # an independent seed, not a copy

    # The replicate seed is reproducible and spec-visible.
    assert replicated[1].params["seed"] == derive_seed(
        11, "sensitivity", 1
    )  # banking's preset seed is 11


def test_single_task_runs_serially_even_with_workers(
    tasks, tmp_path
) -> None:
    runner = ExperimentRunner(workers=4, cache_dir=tmp_path / "cache")
    report = runner.run(tasks[:1])
    assert len(report.results) == 1
    assert report.stats[0].worker == "serial"

    direct, hit, _ = execute(tasks[0], runner.cache())
    assert hit  # run_one landed the result in the shared cache
    assert direct == report.results[0]


def test_run_rejects_non_tasks(tmp_path) -> None:
    from repro.exceptions import ConfigurationError

    runner = ExperimentRunner(serial=True, cache_dir=tmp_path / "cache")
    with pytest.raises(ConfigurationError):
        runner.run(["not a task"])
    with pytest.raises(ConfigurationError):
        ExperimentRunner(workers=0)
