"""Task-spec hashing: the determinism layer under the cache and seeds."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runner.hashing import canonical_json, code_salt, stable_hash
from repro.runner.task import ExperimentTask, derive_seed


class TestCanonicalJson:
    def test_sorted_keys_and_no_whitespace(self) -> None:
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_key_order_is_irrelevant(self) -> None:
        assert canonical_json({"x": 1, "y": [2, 3]}) == canonical_json(
            {"y": [2, 3], "x": 1}
        )

    def test_tuples_encode_as_lists(self) -> None:
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_nested_structures(self) -> None:
        doc = {"a": [1, {"b": (2.5, None)}], "c": True}
        assert canonical_json(doc) == '{"a":[1,{"b":[2.5,null]}],"c":true}'

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_rejects_non_finite_floats(self, bad: float) -> None:
        with pytest.raises(ConfigurationError):
            canonical_json({"x": bad})

    def test_rejects_non_string_keys(self) -> None:
        with pytest.raises(ConfigurationError):
            canonical_json({1: "x"})

    def test_rejects_unencodable_values(self) -> None:
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})


class TestStableHash:
    def test_deterministic(self) -> None:
        assert stable_hash({"a": 1}) == stable_hash({"a": 1})

    def test_salt_changes_digest(self) -> None:
        doc = {"a": 1}
        assert stable_hash(doc, salt="v1") != stable_hash(doc, salt="v2")

    def test_distinct_docs_distinct_digests(self) -> None:
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_code_salt_is_short_stable_hex(self) -> None:
        salt = code_salt()
        assert salt == code_salt()
        assert len(salt) == 16
        int(salt, 16)  # hex-parsable


class TestDeriveSeed:
    def test_deterministic(self) -> None:
        assert derive_seed(11, "sensitivity", 3) == derive_seed(
            11, "sensitivity", 3
        )

    def test_distinct_parts_distinct_seeds(self) -> None:
        seeds = {
            derive_seed(11, "sensitivity", replicate)
            for replicate in range(50)
        }
        assert len(seeds) == 50

    def test_base_seed_matters(self) -> None:
        assert derive_seed(11, "x") != derive_seed(12, "x")

    def test_part_order_matters(self) -> None:
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_stays_in_seedsequence_range(self) -> None:
        for replicate in range(100):
            seed = derive_seed(53, "r", replicate)
            assert 0 <= seed < 2**63


class TestExperimentTask:
    def test_equality_ignores_param_insertion_order(self) -> None:
        a = ExperimentTask(kind="k", params={"x": 1, "y": 2})
        b = ExperimentTask(kind="k", params={"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a.spec == b.spec

    def test_label_does_not_affect_identity(self) -> None:
        a = ExperimentTask(kind="k", params={"x": 1}, label="one")
        b = ExperimentTask(kind="k", params={"x": 1}, label="two")
        assert a == b
        assert a.cache_key("s") == b.cache_key("s")

    def test_kind_distinguishes_tasks(self) -> None:
        a = ExperimentTask(kind="k1", params={"x": 1})
        b = ExperimentTask(kind="k2", params={"x": 1})
        assert a != b

    def test_cache_key_depends_on_salt(self) -> None:
        task = ExperimentTask(kind="k", params={"x": 1})
        assert task.cache_key("v1") != task.cache_key("v2")

    def test_name_defaults_to_kind_and_hash(self) -> None:
        task = ExperimentTask(kind="k", params={"x": 1})
        assert task.name.startswith("k:")
        labelled = ExperimentTask(kind="k", params={"x": 1}, label="lbl")
        assert labelled.name == "lbl"

    def test_rejects_empty_kind(self) -> None:
        with pytest.raises(ConfigurationError):
            ExperimentTask(kind="", params={})

    def test_rejects_unencodable_params(self) -> None:
        with pytest.raises(ConfigurationError):
            ExperimentTask(kind="k", params={"x": float("nan")})
