"""The content-addressed result cache and the registry around it."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runner.cache import (
    NO_CACHE_ENV,
    ResultCache,
    cache_disabled,
    default_cache_dir,
)
from repro.runner.registry import (
    RunnerContext,
    register_task_kind,
    registered_kinds,
)
from repro.runner.task import ExperimentTask


def _task(**params: object) -> ExperimentTask:
    return ExperimentTask(kind="trace-set", params=params)


class TestResultCache:
    def test_roundtrip(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        task = _task(x=1)
        assert cache.get(task) == (None, False)
        cache.put(task, {"answer": 42})
        result, hit = cache.get(task)
        assert hit
        assert result == {"answer": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_distinct_tasks_distinct_entries(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        cache.put(_task(x=1), "one")
        cache.put(_task(x=2), "two")
        assert cache.entry_count() == 2
        assert cache.get(_task(x=1)) == ("one", True)
        assert cache.get(_task(x=2)) == ("two", True)

    def test_salt_separates_code_versions(self, tmp_path) -> None:
        task = _task(x=1)
        ResultCache(tmp_path, salt="v1").put(task, "old")
        _, hit = ResultCache(tmp_path, salt="v2").get(task)
        assert not hit  # a code change orphans, never serves, old entries

    def test_corrupt_entry_heals_as_miss(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        task = _task(x=1)
        path = cache.put(task, "good")
        path.write_bytes(b"not a pickle")
        result, hit = cache.get(task)
        assert (result, hit) == (None, False)
        assert not path.exists()  # removed so the next store heals it
        cache.put(task, "fresh")
        assert cache.get(task) == ("fresh", True)

    def test_sidecar_records_spec(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        task = _task(x=1)
        path = cache.put(task, "r")
        sidecar = path.with_suffix(".json")
        assert sidecar.exists()
        assert task.spec in sidecar.read_text(encoding="utf-8")

    def test_clear_removes_everything(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        cache.put(_task(x=1), "a")
        cache.put(_task(x=2), "b")
        assert cache.clear() == 2
        assert cache.entry_count() == 0

    def test_layout_shards_by_kind_and_prefix(self, tmp_path) -> None:
        cache = ResultCache(tmp_path, salt="s")
        task = _task(x=1)
        path = cache.path_for(task)
        key = task.cache_key("s")
        assert path == tmp_path / "trace-set" / key[:2] / f"{key}.pkl"


class TestEnvironmentKnobs:
    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_cache_disabled_env(self, monkeypatch) -> None:
        monkeypatch.delenv(NO_CACHE_ENV, raising=False)
        assert not cache_disabled()
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        assert cache_disabled()
        monkeypatch.setenv(NO_CACHE_ENV, "0")
        assert not cache_disabled()


class TestRegistry:
    def test_builtin_kinds_registered(self) -> None:
        import repro.runner.tasks  # noqa: F401 - registration side effect

        kinds = registered_kinds()
        for kind in (
            "trace-set",
            "comparison",
            "sensitivity",
            "figure",
            "planning-run",
        ):
            assert kind in kinds

    def test_duplicate_registration_rejected(self) -> None:
        @register_task_kind("test-dup-kind")
        def _executor(params, ctx):  # pragma: no cover - never executed
            return None

        with pytest.raises(ConfigurationError):

            @register_task_kind("test-dup-kind")
            def _again(params, ctx):  # pragma: no cover - never executed
                return None

    def test_context_executes_through_cache(self, tmp_path) -> None:
        calls = []

        @register_task_kind("test-counting-kind")
        def _count(params, ctx):
            calls.append(dict(params))
            return params["x"] * 2

        ctx = RunnerContext(ResultCache(tmp_path, salt="s"))
        task = ExperimentTask(kind="test-counting-kind", params={"x": 21})
        first, hit_first, _ = ctx.execute(task)
        second, hit_second, _ = ctx.execute(task)
        assert (first, second) == (42, 42)
        assert (hit_first, hit_second) == (False, True)
        assert len(calls) == 1  # the second execution came from the cache

    def test_unknown_kind_fails_helpfully(self) -> None:
        ctx = RunnerContext(None)
        task = ExperimentTask(kind="no-such-kind", params={})
        with pytest.raises(ConfigurationError, match="no-such-kind"):
            ctx.execute(task)

    def test_cycle_detection(self) -> None:
        @register_task_kind("test-cyclic-kind")
        def _cyclic(params, ctx):
            return ctx.run_task(
                ExperimentTask(kind="test-cyclic-kind", params=dict(params))
            )

        ctx = RunnerContext(None)
        with pytest.raises(ConfigurationError, match="cycle"):
            ctx.execute(ExperimentTask(kind="test-cyclic-kind", params={}))
