"""Vectorized packing engine == scalar reference, property-based.

The array engine (:class:`BinArray` masks) must make exactly the same
decisions as the retained scalar :class:`Bin` scan — same assignment,
same failures — across randomized instances covering tail pooling,
preferred-host hints, both strategies, and constraints.  Driven by
hypothesis when available, with a seeded stdlib-:mod:`random` sweep that
always runs so the suite keeps its coverage without the dependency.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

import pytest

from repro.constraints import AntiColocate, ExcludeHosts
from repro.constraints.manager import ConstraintSet
from repro.exceptions import PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import pack

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

HOST_CPU = 2000.0
HOST_MEM = 16.0


def _pool(n_hosts: int) -> Datacenter:
    dc = Datacenter(name="equiv")
    for index in range(n_hosts):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index:03d}",
                spec=ServerSpec(cpu_rpe2=HOST_CPU, memory_gb=HOST_MEM),
            )
        )
    return dc


def assert_engines_agree(
    demands: List[VMDemand],
    *,
    strategy: str = "ffd",
    bound: float = 1.0,
    preferred: Optional[Dict[str, str]] = None,
    constraints: Optional[ConstraintSet] = None,
    n_hosts: Optional[int] = None,
) -> None:
    """Both engines produce the same placement or the same failure."""
    pool = _pool(n_hosts if n_hosts is not None else len(demands))
    datacenter = pool if constraints else None
    kwargs = dict(
        utilization_bound=bound,
        strategy=strategy,
        constraints=constraints,
        datacenter=datacenter,
        preferred=preferred,
    )
    try:
        scalar = pack(demands, pool.hosts, engine="scalar", **kwargs)
    except PlacementError:
        with pytest.raises(PlacementError):
            pack(demands, pool.hosts, engine="array", **kwargs)
        return
    array = pack(demands, pool.hosts, engine="array", **kwargs)
    assert array.assignment == scalar.assignment


def _random_demands(
    rng: random.Random, *, with_tails: bool, n_vms: int
) -> List[VMDemand]:
    demands = []
    for i in range(n_vms):
        demands.append(
            VMDemand(
                vm_id=f"vm{i:03d}",
                cpu_rpe2=rng.uniform(0.0, 900.0),
                memory_gb=rng.uniform(0.0, 7.0),
                tail_cpu_rpe2=rng.uniform(0.0, 300.0) if with_tails else 0.0,
                tail_memory_gb=rng.uniform(0.0, 2.0) if with_tails else 0.0,
            )
        )
    return demands


# ----------------------------------------------------------------------
# Seeded stdlib sweep: always runs, no hypothesis required.


@pytest.mark.parametrize("strategy", ["ffd", "bfd"])
@pytest.mark.parametrize("with_tails", [False, True])
def test_random_instances_agree(strategy: str, with_tails: bool) -> None:
    rng = random.Random(f"{strategy}-{with_tails}")
    for _ in range(30):
        demands = _random_demands(
            rng, with_tails=with_tails, n_vms=rng.randint(1, 40)
        )
        assert_engines_agree(
            demands,
            strategy=strategy,
            bound=rng.choice([0.7, 0.8, 1.0]),
        )


@pytest.mark.parametrize("strategy", ["ffd", "bfd"])
def test_preferred_host_hints_agree(strategy: str) -> None:
    """Dynamic-consolidation hints route identically in both engines."""
    rng = random.Random(f"hints-{strategy}")
    for _ in range(20):
        demands = _random_demands(
            rng, with_tails=rng.random() < 0.5, n_vms=rng.randint(1, 30)
        )
        # Hint a random subset of VMs at random (sometimes unknown) hosts.
        preferred = {
            d.vm_id: f"h{rng.randint(0, len(demands) + 2):03d}"
            for d in demands
            if rng.random() < 0.6
        }
        assert_engines_agree(demands, strategy=strategy, preferred=preferred)


@pytest.mark.parametrize("strategy", ["ffd", "bfd"])
def test_constrained_instances_agree(strategy: str) -> None:
    """Constraint hooks fire on the masked candidate set identically."""
    rng = random.Random(f"constraints-{strategy}")
    for _ in range(15):
        n_vms = rng.randint(4, 24)
        demands = _random_demands(rng, with_tails=False, n_vms=n_vms)
        constraints = ConstraintSet()
        spread = [d.vm_id for d in rng.sample(demands, k=min(4, n_vms))]
        constraints.add(AntiColocate(*spread))
        excluded = rng.sample(demands, k=min(2, n_vms))
        for demand in excluded:
            constraints.add(
                ExcludeHosts(demand.vm_id, [f"h{rng.randint(0, 3):03d}"])
            )
        assert_engines_agree(
            demands, strategy=strategy, constraints=constraints
        )


def test_oversized_vm_fails_in_both_engines() -> None:
    demand = VMDemand(vm_id="big", cpu_rpe2=HOST_CPU * 2, memory_gb=1.0)
    assert_engines_agree([demand], n_hosts=3)


def test_tail_pooling_exercises_max_not_sum() -> None:
    """Two tails pool (max), so both fit where summed tails would not."""
    demands = [
        VMDemand(
            vm_id="a", cpu_rpe2=700.0, memory_gb=1.0, tail_cpu_rpe2=600.0
        ),
        VMDemand(
            vm_id="b", cpu_rpe2=700.0, memory_gb=1.0, tail_cpu_rpe2=600.0
        ),
    ]
    pool = _pool(2)
    for engine in ("scalar", "array"):
        placement = pack(demands, pool.hosts, engine=engine)
        assert placement.assignment == {"a": "h000", "b": "h000"}


def test_duplicate_vm_ids_rejected() -> None:
    demand = VMDemand(vm_id="dup", cpu_rpe2=1.0, memory_gb=0.1)
    pool = _pool(2)
    for engine in ("scalar", "array"):
        with pytest.raises(PlacementError):
            pack([demand, demand], pool.hosts, engine=engine)


# ----------------------------------------------------------------------
# engine="auto": size-aware dispatch, still pinned to both engines.


@pytest.mark.parametrize("strategy", ["ffd", "bfd"])
@pytest.mark.parametrize("n_hosts", [8, 64, 96, 512, 600])
def test_auto_matches_forced_engines(strategy: str, n_hosts: int) -> None:
    """auto must agree with both forced engines on either side of the
    crossover (ffd switches at 64 hosts, bfd at 512)."""
    rng = random.Random(f"auto-{strategy}-{n_hosts}")
    demands = _random_demands(
        rng, with_tails=True, n_vms=min(40, n_hosts)
    )
    pool = _pool(n_hosts)
    kwargs = dict(utilization_bound=0.8, strategy=strategy)
    auto = pack(demands, pool.hosts, engine="auto", **kwargs)
    default = pack(demands, pool.hosts, **kwargs)
    scalar = pack(demands, pool.hosts, engine="scalar", **kwargs)
    array = pack(demands, pool.hosts, engine="array", **kwargs)
    assert auto.assignment == scalar.assignment == array.assignment
    assert default.assignment == auto.assignment


def test_auto_crossover_thresholds_documented() -> None:
    from repro.placement.binpacking import _AUTO_MIN_HOSTS

    assert _AUTO_MIN_HOSTS == {"ffd": 64, "bfd": 512}


def test_unknown_engine_rejected() -> None:
    from repro.exceptions import ConfigurationError

    demand = VMDemand(vm_id="vm0", cpu_rpe2=1.0, memory_gb=0.1)
    with pytest.raises(ConfigurationError):
        pack([demand], _pool(2).hosts, engine="gpu")


# ----------------------------------------------------------------------
# Hypothesis sweep: wider value coverage when the dependency is present.

if HAVE_HYPOTHESIS:
    demand_strategy = st.builds(
        lambda i, cpu, mem, tail_cpu, tail_mem: VMDemand(
            vm_id=f"vm{i}",
            cpu_rpe2=cpu,
            memory_gb=mem,
            tail_cpu_rpe2=tail_cpu,
            tail_memory_gb=tail_mem,
        ),
        st.integers(0, 10**6),
        st.floats(0.0, 900.0),
        st.floats(0.0, 7.0),
        st.floats(0.0, 300.0),
        st.floats(0.0, 2.0),
    )

    @st.composite
    def demand_lists(draw):
        drawn = draw(st.lists(demand_strategy, min_size=1, max_size=40))
        unique = {d.vm_id: d for d in drawn}
        return list(unique.values())

    @given(
        demands=demand_lists(),
        strategy=st.sampled_from(["ffd", "bfd"]),
        bound=st.sampled_from([0.7, 0.8, 1.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_hypothesis_engines_agree(demands, strategy, bound):
        assert_engines_agree(demands, strategy=strategy, bound=bound)

    @given(
        demands=demand_lists(),
        strategy=st.sampled_from(["ffd", "bfd"]),
        hint_bits=st.lists(st.booleans(), min_size=40, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_hints_agree(demands, strategy, hint_bits):
        preferred = {
            d.vm_id: f"h{i % 7:03d}"
            for i, d in enumerate(demands)
            if hint_bits[i % len(hint_bits)]
        }
        assert_engines_agree(demands, strategy=strategy, preferred=preferred)
