"""Tests for link bandwidth as a placement constraint (paper §3.1)."""

import pytest

from repro.exceptions import PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import Bin, pack


@pytest.fixture
def thin_link_pool():
    """Hosts with plenty of CPU/memory but a 100 Mbps uplink."""
    dc = Datacenter(name="thin")
    for index in range(4):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(
                    cpu_rpe2=10_000.0, memory_gb=100.0, network_mbps=100.0
                ),
            )
        )
    return dc


def _demand(vm_id, network):
    return VMDemand(
        vm_id=vm_id, cpu_rpe2=10.0, memory_gb=0.1, network_mbps=network
    )


class TestNetworkInBin:
    def test_bin_tracks_network(self, thin_link_pool):
        bin_ = Bin.for_host(thin_link_pool.host("h0"), 1.0)
        bin_.add(_demand("a", 60.0))
        assert not bin_.fits(_demand("b", 50.0))
        assert bin_.fits(_demand("b", 40.0))

    def test_bound_scales_network(self, thin_link_pool):
        bin_ = Bin.for_host(thin_link_pool.host("h0"), 0.8)
        assert bin_.network_capacity == pytest.approx(80.0)

    def test_zero_network_demand_never_blocks(self, thin_link_pool):
        bin_ = Bin.for_host(thin_link_pool.host("h0"), 1.0)
        for index in range(50):
            bin_.add(_demand(f"v{index}", 0.0))
        assert len(bin_.vm_ids) == 50


class TestNetworkInPack:
    def test_network_forces_spread(self, thin_link_pool):
        # CPU/memory would fit all eight on one host; the 100 Mbps link
        # admits only two 40 Mbps VMs per host.
        demands = [_demand(f"v{i}", 40.0) for i in range(8)]
        placement = pack(demands, thin_link_pool.hosts)
        assert placement.active_host_count == 4

    def test_unroutable_vm_raises(self, thin_link_pool):
        with pytest.raises(PlacementError):
            pack([_demand("hog", 500.0)], thin_link_pool.hosts)
