"""Property-based tests for the local-search improver (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.placement.improve import improve_placement
from repro.placement.plan import Placement

HOST_CPU = 1000.0
HOST_MEM = 50.0
N_HOSTS = 8


def _pool() -> Datacenter:
    dc = Datacenter(name="prop")
    for index in range(N_HOSTS):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(cpu_rpe2=HOST_CPU, memory_gb=HOST_MEM),
            )
        )
    return dc


POOL = _pool()


@st.composite
def feasible_fragmented_placements(draw):
    """Random demands spread randomly but feasibly across the pool."""
    n_vms = draw(st.integers(1, 16))
    demands = []
    loads = {h.host_id: [0.0, 0.0] for h in POOL}
    assignment = {}
    for index in range(n_vms):
        cpu = draw(st.floats(1.0, 400.0))
        mem = draw(st.floats(0.1, 20.0))
        demand = VMDemand(vm_id=f"v{index}", cpu_rpe2=cpu, memory_gb=mem)
        # Place on a random host with room (guaranteed feasible start).
        candidates = [
            h
            for h, (c, m) in loads.items()
            if c + cpu <= HOST_CPU and m + mem <= HOST_MEM
        ]
        if not candidates:
            continue
        host = draw(st.sampled_from(sorted(candidates)))
        loads[host][0] += cpu
        loads[host][1] += mem
        assignment[demand.vm_id] = host
        demands.append(demand)
    if not demands:
        demand = VMDemand(vm_id="v0", cpu_rpe2=10.0, memory_gb=1.0)
        demands = [demand]
        assignment = {"v0": "h0"}
    return demands, Placement(assignment)


@given(data=feasible_fragmented_placements())
@settings(max_examples=80, deadline=None)
def test_improvement_invariants(data):
    demands, start = data
    improved = improve_placement(start, demands, POOL.hosts)
    # 1. Nothing lost, nothing invented.
    assert sorted(improved.assignment) == sorted(start.assignment)
    # 2. Host count never increases and never beats the volume bound.
    by_id = {d.vm_id: d for d in demands}
    placed = [by_id[v] for v in improved.assignment]
    lower = max(
        1,
        math.ceil(
            max(
                sum(d.cpu_rpe2 for d in placed) / HOST_CPU,
                sum(d.memory_gb for d in placed) / HOST_MEM,
            )
            - 1e-9
        ),
    )
    assert lower <= improved.active_host_count <= start.active_host_count
    # 3. Capacity safe on every host.
    for host in POOL:
        members = [by_id[v] for v in improved.vms_on(host.host_id)]
        assert sum(m.cpu_rpe2 for m in members) <= HOST_CPU + 1e-6
        assert sum(m.memory_gb for m in members) <= HOST_MEM + 1e-6


@given(data=feasible_fragmented_placements())
@settings(max_examples=40, deadline=None)
def test_improvement_is_idempotent(data):
    demands, start = data
    once = improve_placement(start, demands, POOL.hosts)
    twice = improve_placement(once, demands, POOL.hosts)
    assert twice.active_host_count == once.active_host_count
