"""Randomized invariants for :func:`repro.placement.binpacking.pack`.

Property-style tests driven by seeded stdlib :mod:`random` streams (no
external property-testing dependency): across many generated instances,
a successful packing must

* keep every host within its bound-scaled capacity (body sums plus the
  pooled tail — the PCP reservation rule),
* place every VM exactly once, and
* be invariant to the input permutation of the demand list (FFD/BFD
  canonicalize their order internally, with vm_id tie-breaks).
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.exceptions import PlacementError
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.numerics import approx_lte
from repro.placement.binpacking import pack

N_INSTANCES = 25

HOST_SPEC = ServerSpec(
    cpu_rpe2=2000.0, memory_gb=16.0, model_name="prop-host"
)


def _make_hosts(count: int) -> List[PhysicalServer]:
    return [
        PhysicalServer(host_id=f"prop-h{i:03d}", spec=HOST_SPEC)
        for i in range(count)
    ]


def _random_instance(rng: random.Random):
    """One packing instance: demands, hosts, bound, strategy."""
    bound = rng.choice([0.7, 0.8, 0.9, 1.0])
    n_vms = rng.randint(1, 40)
    with_tails = rng.random() < 0.5
    demands = []
    for i in range(n_vms):
        tail_cpu = rng.uniform(0.0, 150.0) if with_tails else 0.0
        tail_mem = rng.uniform(0.0, 1.0) if with_tails else 0.0
        demands.append(
            VMDemand(
                vm_id=f"vm{i:03d}",
                cpu_rpe2=rng.uniform(1.0, 600.0),
                memory_gb=rng.uniform(0.05, 6.0),
                tail_cpu_rpe2=tail_cpu,
                tail_memory_gb=tail_mem,
            )
        )
    # Enough hosts that one VM per host always succeeds: no instance
    # may fail for capacity, so every property quantifies over
    # successful packings only by construction.
    hosts = _make_hosts(n_vms)
    strategy = rng.choice(["ffd", "bfd"])
    return demands, hosts, bound, strategy


def _host_usage(
    assignment: Dict[str, str], demands: List[VMDemand]
) -> Dict[str, Dict[str, float]]:
    """Recompute per-host reservations from scratch (PCP tail pooling)."""
    by_id = {d.vm_id: d for d in demands}
    usage: Dict[str, Dict[str, float]] = {}
    for vm_id, host_id in assignment.items():
        demand = by_id[vm_id]
        entry = usage.setdefault(
            host_id,
            {"cpu": 0.0, "mem": 0.0, "tail_cpu": 0.0, "tail_mem": 0.0},
        )
        entry["cpu"] += demand.cpu_rpe2
        entry["mem"] += demand.memory_gb
        entry["tail_cpu"] = max(entry["tail_cpu"], demand.tail_cpu_rpe2)
        entry["tail_mem"] = max(entry["tail_mem"], demand.tail_memory_gb)
    return usage


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_pack_never_exceeds_capacity(seed: int) -> None:
    rng = random.Random(20260806 + seed)
    demands, hosts, bound, strategy = _random_instance(rng)
    placement = pack(
        demands, hosts, utilization_bound=bound, strategy=strategy
    )
    for host_id, entry in _host_usage(placement.assignment, demands).items():
        assert approx_lte(
            entry["cpu"] + entry["tail_cpu"], HOST_SPEC.cpu_rpe2 * bound
        ), f"seed {seed}: CPU over capacity on {host_id}"
        assert approx_lte(
            entry["mem"] + entry["tail_mem"], HOST_SPEC.memory_gb * bound
        ), f"seed {seed}: memory over capacity on {host_id}"


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_pack_places_every_vm_exactly_once(seed: int) -> None:
    rng = random.Random(918273 + seed)
    demands, hosts, bound, strategy = _random_instance(rng)
    placement = pack(
        demands, hosts, utilization_bound=bound, strategy=strategy
    )
    assert sorted(placement.assignment) == sorted(d.vm_id for d in demands)
    host_ids = {h.host_id for h in hosts}
    assert set(placement.assignment.values()) <= host_ids


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_pack_is_permutation_invariant(seed: int) -> None:
    rng = random.Random(555000 + seed)
    demands, hosts, bound, strategy = _random_instance(rng)
    baseline = pack(
        demands, hosts, utilization_bound=bound, strategy=strategy
    )
    shuffled = list(demands)
    rng.shuffle(shuffled)
    permuted = pack(
        shuffled, hosts, utilization_bound=bound, strategy=strategy
    )
    assert permuted.assignment == baseline.assignment


def test_pack_rejects_oversized_vm() -> None:
    """A VM beyond any host's bound-scaled capacity must fail loudly."""
    hosts = _make_hosts(3)
    demand = VMDemand(
        vm_id="vm-huge", cpu_rpe2=HOST_SPEC.cpu_rpe2 * 2, memory_gb=1.0
    )
    with pytest.raises(PlacementError):
        pack([demand], hosts, utilization_bound=1.0)
