"""Tests for the bin-packing heuristics."""

import pytest

from repro.constraints.affinity import AntiColocate, Colocate, PinToHost
from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConfigurationError, ConstraintViolation, PlacementError
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import Bin, pack, sort_decreasing


def _demand(vm_id, cpu, mem, tail_cpu=0.0, tail_mem=0.0):
    return VMDemand(
        vm_id=vm_id,
        cpu_rpe2=cpu,
        memory_gb=mem,
        tail_cpu_rpe2=tail_cpu,
        tail_memory_gb=tail_mem,
    )


class TestBin:
    def test_capacity_scaled_by_bound(self, tiny_pool):
        host = tiny_pool.host("tiny-h0")
        bin_ = Bin.for_host(host, 0.8)
        assert bin_.cpu_capacity == pytest.approx(800.0)
        assert bin_.memory_capacity == pytest.approx(8.0)

    def test_fits_and_add(self, tiny_pool):
        bin_ = Bin.for_host(tiny_pool.host("tiny-h0"), 1.0)
        assert bin_.fits(_demand("a", 600, 6))
        bin_.add(_demand("a", 600, 6))
        assert not bin_.fits(_demand("b", 500, 1))
        assert bin_.fits(_demand("b", 300, 1))

    def test_tail_pooling(self, tiny_pool):
        bin_ = Bin.for_host(tiny_pool.host("tiny-h0"), 1.0)
        bin_.add(_demand("a", 300, 2, tail_cpu=400))
        # Second VM's tail pools with the first: only max(400, 300) held.
        assert bin_.fits(_demand("b", 300, 2, tail_cpu=300))
        bin_.add(_demand("b", 300, 2, tail_cpu=300))
        assert bin_.used_cpu == pytest.approx(300 + 300 + 400)

    def test_add_overflow_raises(self, tiny_pool):
        bin_ = Bin.for_host(tiny_pool.host("tiny-h0"), 1.0)
        with pytest.raises(PlacementError):
            bin_.add(_demand("a", 2000, 1))

    def test_invalid_bound(self, tiny_pool):
        with pytest.raises(ConfigurationError):
            Bin.for_host(tiny_pool.host("tiny-h0"), 0.0)


class TestSortDecreasing:
    def test_dominant_resource_ordering(self, tiny_pool):
        reference = tiny_pool.host("tiny-h0")  # 1000 RPE2 / 10 GB
        cpu_heavy = _demand("cpu", 900, 1)   # score 0.9
        mem_heavy = _demand("mem", 100, 8)   # score 0.8
        small = _demand("small", 100, 1)     # score 0.1
        ordered = sort_decreasing([small, mem_heavy, cpu_heavy], reference)
        assert [d.vm_id for d in ordered] == ["cpu", "mem", "small"]

    def test_deterministic_tiebreak(self, tiny_pool):
        reference = tiny_pool.host("tiny-h0")
        a, b = _demand("a", 100, 1), _demand("b", 100, 1)
        assert [d.vm_id for d in sort_decreasing([b, a], reference)] == [
            "a",
            "b",
        ]


class TestPack:
    def test_all_vms_placed_within_capacity(self, tiny_pool):
        demands = [_demand(f"v{i}", 300, 3) for i in range(6)]
        placement = pack(demands, tiny_pool.hosts)
        assert len(placement) == 6
        for host in tiny_pool:
            vms = placement.vms_on(host.host_id)
            assert sum(300 for _ in vms) <= host.cpu_rpe2

    def test_ffd_minimizes_hosts_for_easy_case(self, tiny_pool):
        # 3 + 3 + 4 fits in one host of 10 GB memory.
        demands = [
            _demand("a", 100, 3.0),
            _demand("b", 100, 3.0),
            _demand("c", 100, 4.0),
        ]
        placement = pack(demands, tiny_pool.hosts)
        assert placement.active_host_count == 1

    def test_utilization_bound_respected(self, tiny_pool):
        demands = [_demand("a", 500, 1), _demand("b", 400, 1)]
        placement = pack(demands, tiny_pool.hosts, utilization_bound=0.8)
        # 500 + 400 = 900 > 800 -> must split across hosts.
        assert placement.active_host_count == 2

    def test_unplaceable_vm_raises(self, tiny_pool):
        with pytest.raises(PlacementError, match="fits on no host"):
            pack([_demand("big", 5000, 1)], tiny_pool.hosts)

    def test_duplicate_vm_rejected(self, tiny_pool):
        with pytest.raises(PlacementError, match="duplicate"):
            pack([_demand("a", 1, 1), _demand("a", 2, 1)], tiny_pool.hosts)

    def test_no_hosts_rejected(self):
        with pytest.raises(PlacementError):
            pack([_demand("a", 1, 1)], [])

    def test_bad_strategy_rejected(self, tiny_pool):
        with pytest.raises(ConfigurationError):
            pack([_demand("a", 1, 1)], tiny_pool.hosts, strategy="magic")

    def test_preferred_host_sticky(self, tiny_pool):
        demands = [_demand("a", 100, 1)]
        placement = pack(
            demands, tiny_pool.hosts, preferred={"a": "tiny-h1"}
        )
        assert placement.host_of("a") == "tiny-h1"

    def test_preferred_ignored_when_full(self, tiny_pool):
        demands = [_demand("a", 900, 9), _demand("b", 400, 4)]
        placement = pack(
            demands, tiny_pool.hosts, preferred={"b": "tiny-h0"}
        )
        # "a" lands on h0 first (bigger), so b's hint is infeasible.
        assert placement.host_of("a") == "tiny-h0"
        assert placement.host_of("b") == "tiny-h1"

    def test_bfd_prefers_tightest_open_bin(self, tiny_pool):
        # Seed both hosts, then a small VM should go to the fuller one
        # under BFD.
        demands = [
            _demand("big", 800, 8),
            _demand("mid", 600, 6),
            _demand("small", 100, 1),
        ]
        placement = pack(demands, tiny_pool.hosts, strategy="bfd")
        assert placement.host_of("small") == placement.host_of("big")


class TestPackWithConstraints:
    def test_anti_colocate_forces_split(self, tiny_pool):
        constraints = ConstraintSet([AntiColocate("a", "b")])
        demands = [_demand("a", 10, 0.1), _demand("b", 10, 0.1)]
        placement = pack(
            demands,
            tiny_pool.hosts,
            constraints=constraints,
            datacenter=tiny_pool,
        )
        assert placement.host_of("a") != placement.host_of("b")

    def test_pin_to_host(self, tiny_pool):
        constraints = ConstraintSet([PinToHost("a", "tiny-h1")])
        placement = pack(
            [_demand("a", 10, 0.1)],
            tiny_pool.hosts,
            constraints=constraints,
            datacenter=tiny_pool,
        )
        assert placement.host_of("a") == "tiny-h1"

    def test_colocate_group_lands_together(self, tiny_pool):
        constraints = ConstraintSet([Colocate("a", "b")])
        demands = [
            _demand("a", 100, 1),
            _demand("b", 100, 1),
            _demand("c", 700, 7),
        ]
        placement = pack(
            demands,
            tiny_pool.hosts,
            constraints=constraints,
            datacenter=tiny_pool,
        )
        assert placement.host_of("a") == placement.host_of("b")

    def test_constrained_vms_claim_hosts_first(self, tiny_pool):
        # Without constrained-first ordering, the big unconstrained VM
        # would fill h0 before the colocated pair arrives and the pack
        # would fail; the ordering guarantees the pair lands together.
        constraints = ConstraintSet([Colocate("a", "b")])
        demands = [
            _demand("a", 100, 1),
            _demand("b", 100, 1),
            _demand("c", 900, 9),
        ]
        placement = pack(
            demands,
            tiny_pool.hosts,
            constraints=constraints,
            datacenter=tiny_pool,
        )
        assert placement.host_of("a") == placement.host_of("b")
        assert placement.host_of("c") != placement.host_of("a")

    def test_truly_infeasible_colocate_raises(self, tiny_pool):
        # The pair itself exceeds any single host: no ordering saves it.
        constraints = ConstraintSet([Colocate("a", "b")])
        demands = [_demand("a", 600, 6), _demand("b", 600, 6)]
        with pytest.raises(PlacementError):
            pack(
                demands,
                tiny_pool.hosts,
                constraints=constraints,
                datacenter=tiny_pool,
            )

    def test_infeasible_constraints_raise(self, tiny_pool):
        constraints = ConstraintSet(
            [PinToHost("a", "tiny-h0"), PinToHost("b", "tiny-h0"),
             AntiColocate("a", "b")]
        )
        with pytest.raises(PlacementError):
            pack(
                [_demand("a", 10, 0.1), _demand("b", 10, 0.1)],
                tiny_pool.hosts,
                constraints=constraints,
                datacenter=tiny_pool,
            )

    def test_constraints_require_datacenter(self, tiny_pool):
        with pytest.raises(ConfigurationError, match="datacenter"):
            pack(
                [_demand("a", 10, 0.1)],
                tiny_pool.hosts,
                constraints=ConstraintSet([PinToHost("a", "tiny-h0")]),
            )
