"""Property-based tests for bin packing (hypothesis).

Invariants, for arbitrary demand populations:

* every VM is placed exactly once (or PlacementError is raised),
* no host's body+pooled-tail reservation exceeds its bounded capacity,
* packing is deterministic,
* FFD never uses more than one host per VM (trivial upper bound) and
  never fewer than the volume lower bound.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import pack

HOST_CPU = 1000.0
HOST_MEM = 100.0


def _pool(n_hosts: int) -> Datacenter:
    dc = Datacenter(name="prop")
    for index in range(n_hosts):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(cpu_rpe2=HOST_CPU, memory_gb=HOST_MEM),
            )
        )
    return dc


demand_strategy = st.builds(
    lambda i, cpu, mem, tail_cpu, tail_mem: VMDemand(
        vm_id=f"vm{i}",
        cpu_rpe2=cpu,
        memory_gb=mem,
        tail_cpu_rpe2=tail_cpu,
        tail_memory_gb=tail_mem,
    ),
    st.integers(0, 10**6),
    st.floats(0.0, 400.0),
    st.floats(0.0, 40.0),
    st.floats(0.0, 200.0),
    st.floats(0.0, 20.0),
)


def _unique_demands(demands):
    seen = {}
    for demand in demands:
        seen[demand.vm_id] = demand
    return list(seen.values())


@st.composite
def demand_lists(draw):
    return _unique_demands(
        draw(st.lists(demand_strategy, min_size=1, max_size=40))
    )


@given(demands=demand_lists(), bound=st.sampled_from([0.8, 1.0]))
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(demands, bound):
    pool = _pool(len(demands))
    placement = pack(demands, pool.hosts, utilization_bound=bound)
    by_id = {d.vm_id: d for d in demands}
    for host in pool:
        vms = [by_id[v] for v in placement.vms_on(host.host_id)]
        if not vms:
            continue
        body_cpu = sum(v.cpu_rpe2 for v in vms)
        body_mem = sum(v.memory_gb for v in vms)
        tail_cpu = max(v.tail_cpu_rpe2 for v in vms)
        tail_mem = max(v.tail_memory_gb for v in vms)
        assert body_cpu + tail_cpu <= HOST_CPU * bound + 1e-6
        assert body_mem + tail_mem <= HOST_MEM * bound + 1e-6


@given(demands=demand_lists())
@settings(max_examples=60, deadline=None)
def test_every_vm_placed_exactly_once(demands):
    pool = _pool(len(demands))
    placement = pack(demands, pool.hosts)
    assert sorted(placement.assignment) == sorted(d.vm_id for d in demands)
    total_assigned = sum(
        len(placement.vms_on(h.host_id)) for h in pool
    )
    assert total_assigned == len(demands)


@given(demands=demand_lists(), strategy=st.sampled_from(["ffd", "bfd"]))
@settings(max_examples=40, deadline=None)
def test_packing_is_deterministic(demands, strategy):
    pool = _pool(len(demands))
    first = pack(demands, pool.hosts, strategy=strategy)
    second = pack(demands, pool.hosts, strategy=strategy)
    assert first.assignment == second.assignment


@given(demands=demand_lists())
@settings(max_examples=40, deadline=None)
def test_host_count_bounded_by_volume(demands):
    pool = _pool(len(demands))
    placement = pack(demands, pool.hosts)
    cpu_lower = sum(d.cpu_rpe2 for d in demands) / HOST_CPU
    mem_lower = sum(d.memory_gb for d in demands) / HOST_MEM
    lower = max(1, math.ceil(max(cpu_lower, mem_lower) - 1e-9))
    assert lower <= placement.active_host_count <= len(demands)


@given(
    cpu=st.floats(1000.1, 10_000.0),
    mem=st.floats(0.0, 50.0),
)
@settings(max_examples=20, deadline=None)
def test_oversized_vm_always_raises(cpu, mem):
    pool = _pool(2)
    with pytest.raises(PlacementError):
        pack([VMDemand(vm_id="big", cpu_rpe2=cpu, memory_gb=mem)], pool.hosts)
