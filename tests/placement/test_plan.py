"""Tests for the placement data structure."""

import pytest

from repro.exceptions import PlacementError
from repro.placement.plan import Placement


class TestPlacement:
    def test_lookup_and_membership(self):
        placement = Placement({"a": "h1", "b": "h1", "c": "h2"})
        assert placement.host_of("a") == "h1"
        assert "a" in placement
        assert len(placement) == 3

    def test_vms_on_host(self):
        placement = Placement({"a": "h1", "b": "h1", "c": "h2"})
        assert set(placement.vms_on("h1")) == {"a", "b"}
        assert placement.vms_on("h9") == ()

    def test_hosts_used_and_active_count(self):
        placement = Placement({"a": "h1", "b": "h1", "c": "h2"})
        assert placement.hosts_used == {"h1", "h2"}
        assert placement.active_host_count == 2

    def test_unplaced_vm_raises(self):
        placement = Placement({"a": "h1"})
        with pytest.raises(PlacementError):
            placement.host_of("z")

    def test_migrations_from(self):
        before = Placement({"a": "h1", "b": "h1", "c": "h2"})
        after = Placement({"a": "h2", "b": "h1", "d": "h3"})
        # a moved, b stayed, c disappeared, d is new.
        assert after.migrations_from(before) == {"a"}

    def test_migrations_from_empty(self):
        after = Placement({"a": "h1"})
        assert after.migrations_from(Placement.empty()) == frozenset()

    def test_with_assignment_is_functional(self):
        placement = Placement({"a": "h1"})
        updated = placement.with_assignment("b", "h2")
        assert "b" not in placement
        assert updated.host_of("b") == "h2"
        assert updated.host_of("a") == "h1"

    def test_empty_ids_rejected(self):
        with pytest.raises(PlacementError):
            Placement({"": "h1"})
        with pytest.raises(PlacementError):
            Placement({"a": ""})

    def test_assignment_snapshot_is_independent(self):
        source = {"a": "h1"}
        placement = Placement(source)
        source["b"] = "h2"
        assert "b" not in placement
