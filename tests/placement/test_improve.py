"""Tests for the local-search placement improver."""

import pytest

from repro.constraints.affinity import AntiColocate, PinToHost
from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConfigurationError, PlacementError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand
from repro.placement.binpacking import pack
from repro.placement.improve import improve_placement
from repro.placement.plan import Placement


@pytest.fixture
def pool():
    dc = Datacenter(name="ls")
    for index in range(8):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(cpu_rpe2=1000.0, memory_gb=10.0),
            )
        )
    return dc


def _demands(n, cpu=200.0, mem=2.0):
    return [
        VMDemand(vm_id=f"v{i}", cpu_rpe2=cpu, memory_gb=mem)
        for i in range(n)
    ]


def _round_robin(demands, pool):
    hosts = [h.host_id for h in pool]
    return Placement(
        {d.vm_id: hosts[i % len(hosts)] for i, d in enumerate(demands)}
    )


class TestImprovePlacement:
    def test_collapses_fragmented_placement(self, pool):
        # 8 VMs of 200 RPE2 round-robined over 8 hosts fit on 2.
        demands = _demands(8)
        fragmented = _round_robin(demands, pool)
        assert fragmented.active_host_count == 8
        improved = improve_placement(fragmented, demands, pool.hosts)
        assert improved.active_host_count == 2

    def test_never_increases_host_count(self, pool):
        demands = _demands(10, cpu=450.0)
        packed = pack(demands, pool.hosts)
        improved = improve_placement(packed, demands, pool.hosts)
        assert improved.active_host_count <= packed.active_host_count

    def test_capacity_respected_after_improvement(self, pool):
        demands = _demands(12, cpu=300.0, mem=3.0)
        improved = improve_placement(
            _round_robin(demands, pool), demands, pool.hosts,
            utilization_bound=0.9,
        )
        by_id = {d.vm_id: d for d in demands}
        for host in pool:
            members = [by_id[v] for v in improved.vms_on(host.host_id)]
            assert sum(m.cpu_rpe2 for m in members) <= 900.0 + 1e-6
            assert sum(m.memory_gb for m in members) <= 9.0 + 1e-6

    def test_all_vms_still_placed(self, pool):
        demands = _demands(9)
        improved = improve_placement(
            _round_robin(demands, pool), demands, pool.hosts
        )
        assert sorted(improved.assignment) == sorted(
            d.vm_id for d in demands
        )

    def test_respects_constraints(self, pool):
        demands = _demands(6)
        constraints = ConstraintSet(
            [AntiColocate("v0", "v1"), PinToHost("v2", "h5")]
        )
        start = Placement(
            {"v0": "h0", "v1": "h1", "v2": "h5", "v3": "h3",
             "v4": "h4", "v5": "h6"}
        )
        improved = improve_placement(
            start, demands, pool.hosts,
            constraints=constraints, datacenter=pool,
        )
        assert improved.host_of("v0") != improved.host_of("v1")
        assert improved.host_of("v2") == "h5"

    def test_tail_pooling_preserved(self, pool):
        # Two VMs with large tails pool on a host; evacuating a third
        # must account for its tail joining the pool.
        demands = [
            VMDemand("a", cpu_rpe2=300, memory_gb=1, tail_cpu_rpe2=400),
            VMDemand("b", cpu_rpe2=300, memory_gb=1, tail_cpu_rpe2=350),
            VMDemand("c", cpu_rpe2=250, memory_gb=1, tail_cpu_rpe2=100),
        ]
        start = Placement({"a": "h0", "b": "h1", "c": "h2"})
        improved = improve_placement(start, demands, pool.hosts)
        by_id = {d.vm_id: d for d in demands}
        for host in pool:
            members = [by_id[v] for v in improved.vms_on(host.host_id)]
            if not members:
                continue
            body = sum(m.cpu_rpe2 for m in members)
            tail = max(m.tail_cpu_rpe2 for m in members)
            assert body + tail <= 1000.0 + 1e-6

    def test_unknown_host_rejected(self, pool):
        demands = _demands(1)
        with pytest.raises(PlacementError, match="unknown host"):
            improve_placement(
                Placement({"v0": "ghost"}), demands, pool.hosts
            )

    def test_validation(self, pool):
        demands = _demands(2)
        placement = _round_robin(demands, pool)
        with pytest.raises(ConfigurationError):
            improve_placement(
                placement, demands, pool.hosts, max_rounds=0
            )
