"""Asyncio front-end: placement queries answered mid-firehose.

The acceptance property from the issue: ``repro-serve`` must keep
answering NDJSON placement queries over the socket *while* a simulated
monitoring firehose streams updates through the same controller.  The
tests run a real ``asyncio.start_server`` on an ephemeral port and a
real firehose task on the same loop.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.service.harness import FaultInjector, FaultSpec
from repro.service.server import run_firehose, serve_controller

from tests.service.conftest import (
    assert_plan_consistent,
    build_controller,
    scripted_feed_for,
)


async def _request(reader, writer, payload: dict) -> dict:
    writer.write(json.dumps(payload).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def _churny_feed(controller, n_ticks: int, seed: int):
    rng = np.random.default_rng(seed)
    n_vms = controller.store.n_servers
    return scripted_feed_for(
        controller,
        np.clip(
            rng.uniform(0.05, 0.6, (n_vms, n_ticks))
            + 0.5 * (rng.random((n_vms, n_ticks)) < 0.1),
            0.0,
            1.0,
        ),
        rng.uniform(1.0, 6.0, (n_vms, n_ticks)),
    )


class TestServer:
    def test_queries_answered_while_firehose_streams(self):
        async def scenario():
            controller = build_controller(n_hosts=4, n_vms=8, seed=11)
            feed = _churny_feed(controller, 40, seed=11)
            server = await serve_controller(controller, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            firehose = asyncio.ensure_future(
                run_firehose(
                    controller,
                    feed,
                    injector=FaultInjector(
                        FaultSpec(
                            drop_rate=0.1,
                            duplicate_rate=0.1,
                            delay_rate=0.1,
                            seed=11,
                        )
                    ),
                    tick_seconds=0.001,
                    replan_every=2,
                )
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            answered_mid_stream = 0
            while not firehose.done():
                response = await _request(
                    reader, writer, {"op": "place", "vm_id": "vm3"}
                )
                assert response["ok"]
                assert response["host"] is not None
                answered_mid_stream += 1
                await asyncio.sleep(0.001)
            delivered = await firehose
            stats = await _request(reader, writer, {"op": "stats"})
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return answered_mid_stream, delivered, stats, controller

        answered, delivered, stats, controller = asyncio.run(scenario())
        assert delivered == 40
        assert answered >= 5, "queries must be served during the stream"
        assert stats["stats"]["cycles"] >= delivered // 2
        assert stats["stats"]["ticks_flushed"] > 0
        assert_plan_consistent(controller)

    def test_multiple_concurrent_clients(self):
        async def scenario():
            controller = build_controller(n_hosts=3, n_vms=6, seed=2)
            server = await serve_controller(controller, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]

            async def client(vm_id: str) -> dict:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                response = await _request(
                    reader, writer, {"op": "place", "vm_id": vm_id}
                )
                writer.close()
                await writer.wait_closed()
                return response

            responses = await asyncio.gather(
                *(client(f"vm{i}") for i in range(6))
            )
            server.close()
            await server.wait_closed()
            return responses, controller

        responses, controller = asyncio.run(scenario())
        for i, response in enumerate(responses):
            assert response["ok"]
            assert response["host"] == controller.host_of(f"vm{i}")

    def test_bad_requests_keep_connection_alive(self):
        async def scenario():
            controller = build_controller(n_hosts=3, n_vms=4, seed=2)
            server = await serve_controller(controller, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            bad = await _request(reader, writer, {"op": "warp"})
            # Same connection still serves good requests afterwards.
            good = await _request(reader, writer, {"op": "ping"})
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return bad, good

        bad, good = asyncio.run(scenario())
        assert bad["ok"] is False
        assert good == {"ok": True, "op": "ping"}


class TestCli:
    def test_build_demo_controller_is_seeded(self):
        from repro.service.cli import build_demo_controller

        first = build_demo_controller(4, 10, seed=5)
        second = build_demo_controller(4, 10, seed=5)
        assert first.plan.assignment() == second.plan.assignment()
        assert_plan_consistent(first)

    def test_parser_defaults(self):
        from repro.service.cli import _build_parser

        args = _build_parser().parse_args([])
        assert args.port == 7077
        assert args.n_hosts == 8
        assert args.n_vms == 24
