"""ConsolidationController: ingest semantics, replan decisions, twin mode.

The streaming contracts (watermark, duplicate, late, gap-fill), the
Neat-style decision loop (overload eviction, all-or-nothing underload
vacate), and the headline equivalence: a controller carrying
delta-mutated plan state produces the *same schedule* as its twin that
rebuilds the plan from scratch every cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PlacementError, ServiceError
from repro.service.controller import (
    ConsolidationController,
    ControllerConfig,
    MonitoringSample,
)
from repro.service.detectors import (
    ThresholdOverloadDetector,
    ThresholdUnderloadDetector,
)
from repro.service.harness import ScriptedFeed, SimulationHarness
from repro.service.clock import VirtualClock

from tests.service.conftest import (
    assert_plan_consistent,
    build_controller,
    scripted_feed_for,
)


class TestIngest:
    def test_complete_tick_flushes(self):
        controller = build_controller(n_vms=3)
        tick = controller.store.total_points
        before = controller.store.total_points
        for i, vm_id in enumerate(controller.store.vm_ids):
            accepted = controller.ingest(
                MonitoringSample(tick, vm_id, 0.5, 2.0)
            )
            assert accepted
        assert controller.store.total_points == before + 1
        assert controller.stats.ticks_flushed == 1
        np.testing.assert_array_equal(
            controller.store.last_cpu_util(), [0.5, 0.5, 0.5]
        )

    def test_duplicate_ignored_and_counted(self):
        controller = build_controller(n_vms=3)
        tick = controller.store.total_points
        assert controller.ingest(MonitoringSample(tick, "vm0", 0.5, 2.0))
        assert not controller.ingest(
            MonitoringSample(tick, "vm0", 0.9, 9.0)
        )
        assert controller.stats.duplicates_ignored == 1
        # The first value wins once the tick flushes.
        for vm_id in ("vm1", "vm2"):
            controller.ingest(MonitoringSample(tick, vm_id, 0.5, 2.0))
        assert controller.store.last_cpu_util()[0] == 0.5

    def test_late_sample_dropped(self):
        controller = build_controller(n_vms=2)
        tick = controller.store.total_points
        for vm_id in controller.store.vm_ids:
            controller.ingest(MonitoringSample(tick, vm_id, 0.5, 2.0))
        assert not controller.ingest(
            MonitoringSample(tick - 1, "vm0", 0.4, 1.0)
        )
        assert not controller.ingest(
            MonitoringSample(tick, "vm0", 0.4, 1.0)
        )
        assert controller.stats.late_dropped == 2

    def test_gap_fill_when_stream_moves_past(self):
        controller = build_controller(n_vms=2)
        tick = controller.store.total_points
        last_util = np.array(controller.store.last_cpu_util())
        # Tick t gets only vm0; tick t+1 completes → both flush.
        controller.ingest(MonitoringSample(tick, "vm0", 0.7, 3.0))
        for vm_id in controller.store.vm_ids:
            controller.ingest(
                MonitoringSample(tick + 1, vm_id, 0.4, 2.0)
            )
        assert controller.stats.ticks_flushed == 2
        # vm1's missing cell at tick t was filled from last-known.
        window = controller.store.view().cpu_util
        assert window[0, -2] == 0.7
        assert window[1, -2] == last_util[1]
        assert controller.stats.gaps_filled == 1

    def test_skipped_tick_entirely_gap_filled(self):
        controller = build_controller(n_vms=2)
        tick = controller.store.total_points
        for vm_id in controller.store.vm_ids:
            controller.ingest(
                MonitoringSample(tick + 1, vm_id, 0.6, 2.0)
            )
        # Tick `tick` never got a sample; both cells were gap-filled.
        assert controller.stats.ticks_flushed == 2
        assert controller.stats.gaps_filled == 2

    def test_malformed_samples_raise_service_error(self):
        controller = build_controller(n_vms=2)
        tick = controller.store.total_points
        with pytest.raises(ServiceError):
            controller.ingest(MonitoringSample(tick, "nope", 0.5, 2.0))
        with pytest.raises(ServiceError):
            controller.ingest(
                MonitoringSample(tick, "vm0", float("nan"), 2.0)
            )
        with pytest.raises(ServiceError):
            controller.ingest(MonitoringSample(tick, "vm0", -0.1, 2.0))

    def test_flush_pending_forces_partial_ticks(self):
        controller = build_controller(n_vms=3)
        tick = controller.store.total_points
        controller.ingest(MonitoringSample(tick, "vm0", 0.5, 2.0))
        assert controller.flush_pending() == 1
        assert controller.store.total_points == tick + 1
        assert controller.flush_pending() == 0


class TestBootstrapAndQueries:
    def test_bootstrap_places_everything(self):
        controller = build_controller(bootstrap=False)
        assignment = controller.bootstrap()
        assert set(assignment) == set(controller.store.vm_ids)
        assert_plan_consistent(controller)
        assert controller.host_of("vm0") == assignment["vm0"]

    def test_bootstrap_requires_data(self):
        controller = build_controller(warmup_points=0, bootstrap=False)
        with pytest.raises(ServiceError):
            controller.bootstrap()

    def test_bootstrap_infeasible_fleet_raises(self):
        # One tiny host cannot take VMs sized at ~500 RPE2 peaks.
        controller = build_controller(
            n_hosts=1, n_vms=8, bootstrap=False, vm_capacity_rpe2=5000.0
        )
        with pytest.raises(PlacementError):
            controller.bootstrap()

    def test_unknown_vm_query(self):
        controller = build_controller()
        with pytest.raises(ServiceError):
            controller.host_of("nope")


class TestReplanDecisions:
    def test_overload_evicts_until_host_fits(self):
        controller = build_controller(n_hosts=3, n_vms=4)
        # Everything lands hot on whatever host carries it: drive all
        # VMs of one host to saturation.
        victim_host = controller.host_of("vm0")
        hot = [
            1.0 if controller.host_of(vm_id) == victim_host else 0.1
            for vm_id in controller.store.vm_ids
        ]
        feed = scripted_feed_for(
            controller, np.tile(np.array(hot)[:, None], (1, 3))
        )
        harness = SimulationHarness(controller, feed, replan_every=1)
        reports = harness.run()
        migrations = harness.migrations()
        assert migrations, "overloaded host should shed VMs"
        assert all(move[1] == victim_host for move in migrations)
        assert_plan_consistent(controller)
        # Replan scope stayed bounded: only source+target hosts.
        for report in reports:
            assert len(report.touched_hosts) <= 2 * len(migrations) + 1

    def test_underload_vacates_all_or_nothing(self):
        controller = build_controller(n_hosts=4, n_vms=6)
        # Everything idles → underload detector consolidates down.
        feed = scripted_feed_for(
            controller, np.full((6, 4), 0.05)
        )
        harness = SimulationHarness(controller, feed, replan_every=1)
        harness.run()
        active_before = len(controller.plan.active_hosts())
        assert active_before <= 2
        # Vacated VMs all moved; none left dangling.
        assert set(controller.plan.assignment()) == set(
            controller.store.vm_ids
        )
        assert_plan_consistent(controller)

    def test_vacate_failure_leaves_host_alone(self):
        # Two hosts, one big VM each (peak 500 of a 900 bound):
        # underloaded by the detector but neither host can absorb the
        # other's VM → counted, no moves.
        controller = build_controller(
            n_hosts=2,
            n_vms=2,
            warmup_points=0,
            bootstrap=False,
            vm_capacity_rpe2=2000.0,
            underload_detector=ThresholdUnderloadDetector(threshold=0.99),
            overload_detector=ThresholdOverloadDetector(threshold=1.0),
        )
        controller.store.append_samples(
            np.full((2, 4), 0.25), np.full((2, 4), 2.0)
        )
        controller.bootstrap()
        assert len(controller.plan.active_hosts()) == 2
        feed = scripted_feed_for(controller, np.full((2, 2), 0.15))
        SimulationHarness(controller, feed, replan_every=1).run()
        assert controller.stats.vacate_failures > 0
        assert len(controller.plan.active_hosts()) == 2
        assert_plan_consistent(controller)

    def test_stats_snapshot_shape(self):
        controller = build_controller()
        controller.replan_cycle()
        snapshot = controller.stats.snapshot()
        for key in (
            "cycles",
            "samples_ingested",
            "duplicates_ignored",
            "late_dropped",
            "gaps_filled",
            "detector_errors",
            "deadline_aborts",
            "migrations_total",
            "latency_seconds_p99",
            "replan_scope_p99",
        ):
            assert key in snapshot
        assert snapshot["cycles"] == 1


class TestEquivalenceTwin:
    def _run_pair(self, seed: int, n_ticks: int = 24):
        rng = np.random.default_rng(seed)
        n_vms = 8
        cpu_util = np.clip(
            rng.uniform(0.05, 0.6, (n_vms, n_ticks))
            + 0.5 * (rng.random((n_vms, n_ticks)) < 0.1),
            0.0,
            1.0,
        )
        memory_gb = rng.uniform(1.0, 6.0, (n_vms, n_ticks))
        assignments = []
        migration_logs = []
        for rebuild in (False, True):
            controller = build_controller(
                n_hosts=4,
                n_vms=n_vms,
                seed=seed,
                config=ControllerConfig(
                    sizing_window_points=4,
                    rebuild_plan_each_cycle=rebuild,
                ),
            )
            feed = scripted_feed_for(controller, cpu_util, memory_gb)
            harness = SimulationHarness(controller, feed, replan_every=2)
            harness.run()
            assert_plan_consistent(controller)
            assignments.append(controller.plan.assignment())
            migration_logs.append(harness.migrations())
        return assignments, migration_logs

    @pytest.mark.parametrize("seed", [3, 17, 4242])
    def test_incremental_matches_rebuild_twin(self, seed):
        (a, b), (moves_a, moves_b) = self._run_pair(seed)
        assert moves_a == moves_b
        assert a == b


class TestDeadline:
    class _AutoAdvanceClock(VirtualClock):
        """Every reading costs virtual time — simulates a slow cycle."""

        def __init__(self, step_seconds: float) -> None:
            super().__init__()
            self._step_seconds = step_seconds

        def now(self) -> float:
            self.advance(self._step_seconds)
            return super().now()

    def test_deadline_defers_remaining_hosts(self):
        clock = self._AutoAdvanceClock(step_seconds=0.5)
        controller = build_controller(
            n_hosts=4,
            n_vms=8,
            config=ControllerConfig(
                sizing_window_points=4, deadline_seconds=0.75
            ),
            clock=clock,
        )
        # Saturate everything so several hosts get flagged at once.
        tick = controller.store.total_points
        for offset in range(3):
            for vm_id in controller.store.vm_ids:
                controller.ingest(
                    MonitoringSample(tick + offset, vm_id, 1.0, 2.0)
                )
        report = controller.replan_cycle()
        assert report.deadline_hit
        assert controller.stats.deadline_aborts == 1
        # Degraded, not corrupted: plan state is still canonical.
        assert_plan_consistent(controller)
