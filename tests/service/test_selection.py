"""VM selection policies: deterministic eviction orders."""

from __future__ import annotations

import pytest

from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.exceptions import ServiceError
from repro.service.selection import (
    MaximumDemandSelector,
    MinimumMigrationTimeSelector,
)

from tests.service.conftest import build_fleet


def _plan() -> IncrementalPlan:
    caps = HostCapacities(build_fleet(2), utilization_bound=0.9)
    return IncrementalPlan.from_assignment(
        caps,
        ["vm0", "vm1", "vm2", "vm3"],
        cpu=[100.0, 400.0, 200.0, 400.0],
        mem=[8.0, 2.0, 2.0, 4.0],
        assignment={"vm0": "h0", "vm1": "h0", "vm2": "h0", "vm3": "h0"},
    )


class TestMinimumMigrationTime:
    def test_smallest_memory_leaves_first(self):
        order = MinimumMigrationTimeSelector().eviction_order(_plan(), 0)
        # mem 2.0 ties between rows 1 and 2 → ascending row breaks it.
        assert order == [1, 2, 3, 0]

    def test_empty_host_is_empty_order(self):
        order = MinimumMigrationTimeSelector().eviction_order(_plan(), 1)
        assert order == []


class TestMaximumDemand:
    def test_largest_cpu_leaves_first(self):
        order = MaximumDemandSelector().eviction_order(_plan(), 0)
        # cpu 400 ties between rows 1 and 3 → ascending row breaks it.
        assert order == [1, 3, 2, 0]


class TestValidation:
    @pytest.mark.parametrize(
        "selector",
        [MinimumMigrationTimeSelector(), MaximumDemandSelector()],
    )
    @pytest.mark.parametrize("host", [-1, 2])
    def test_unknown_host_raises(self, selector, host):
        with pytest.raises(ServiceError):
            selector.eviction_order(_plan(), host)
