"""NDJSON protocol surface, exercised without any sockets."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import handle_request

from tests.service.conftest import build_controller


@pytest.fixture
def controller():
    return build_controller(n_hosts=3, n_vms=4)


class TestOps:
    def test_ping(self, controller):
        response = handle_request(controller, '{"op": "ping"}')
        assert response == {"ok": True, "op": "ping"}

    def test_place(self, controller):
        response = handle_request(
            controller, json.dumps({"op": "place", "vm_id": "vm1"})
        )
        assert response["ok"]
        assert response["host"] == controller.host_of("vm1")

    def test_place_unassigned_is_null(self):
        controller = build_controller(bootstrap=False)
        response = handle_request(
            controller, '{"op": "place", "vm_id": "vm0"}'
        )
        assert response["ok"]
        assert response["host"] is None

    def test_assignment(self, controller):
        response = handle_request(controller, '{"op": "assignment"}')
        assert response["assignment"] == controller.plan.assignment()

    def test_ingest_roundtrip(self, controller):
        tick = controller.store.total_points
        for vm_id in controller.store.vm_ids:
            response = handle_request(
                controller,
                json.dumps(
                    {
                        "op": "ingest",
                        "tick": tick,
                        "vm_id": vm_id,
                        "cpu_util": 0.5,
                        "memory_gb": 2.0,
                    }
                ),
            )
            assert response["ok"] and response["accepted"]
        assert controller.store.total_points == tick + 1
        # Duplicate: acknowledged, not accepted (tick already flushed →
        # late path).
        response = handle_request(
            controller,
            json.dumps(
                {
                    "op": "ingest",
                    "tick": tick,
                    "vm_id": "vm0",
                    "cpu_util": 0.5,
                    "memory_gb": 2.0,
                }
            ),
        )
        assert response["ok"] and not response["accepted"]

    def test_replan(self, controller):
        response = handle_request(controller, '{"op": "replan"}')
        assert response["ok"]
        assert response["cycle"] == 1
        assert isinstance(response["migrations"], list)
        assert "latency_seconds" in response
        # The payload is JSON-serializable end to end.
        json.dumps(response)

    def test_stats(self, controller):
        handle_request(controller, '{"op": "replan"}')
        response = handle_request(controller, '{"op": "stats"}')
        assert response["ok"]
        assert response["stats"]["cycles"] == 1
        assert response["n_vms"] == 4
        assert response["n_hosts"] == 3
        json.dumps(response)


class TestErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"no_op": 1}',
            '{"op": "warp"}',
            '{"op": 7}',
            '{"op": "place"}',
            '{"op": "place", "vm_id": 5}',
            '{"op": "place", "vm_id": "ghost"}',
            '{"op": "ingest", "tick": "x", "vm_id": "vm0",'
            ' "cpu_util": 0.5, "memory_gb": 1.0}',
            '{"op": "ingest", "tick": 1, "vm_id": "vm0",'
            ' "cpu_util": -2.0, "memory_gb": 1.0}',
        ],
    )
    def test_bad_requests_return_error_responses(self, controller, line):
        response = handle_request(controller, line)
        assert response["ok"] is False
        assert isinstance(response["error"], str) and response["error"]

    def test_bool_is_not_an_int_tick(self, controller):
        response = handle_request(
            controller,
            '{"op": "ingest", "tick": true, "vm_id": "vm0",'
            ' "cpu_util": 0.5, "memory_gb": 1.0}',
        )
        assert response["ok"] is False

    def test_errors_do_not_mutate_state(self, controller):
        before = controller.plan.assignment()
        samples_before = controller.stats.samples_ingested
        handle_request(controller, '{"op": "warp"}')
        handle_request(controller, '{"op": "place", "vm_id": "ghost"}')
        assert controller.plan.assignment() == before
        assert controller.stats.samples_ingested == samples_before
