"""MHOD Markov overload detector vs hand-computed fixtures.

The chain math is small enough to verify by hand.  For the history
``[0.1, 0.9, 0.9, 0.1, 0.9]`` with ``threshold=0.5``, ``n_states=2``:

* states: ``[0, 1, 1, 0, 1]``
* raw transition counts: ``[[0, 2], [1, 1]]``
* Laplace-smoothed (α=1) row-stochastic matrix:
  ``[[1/4, 3/4], [1/2, 1/2]]``
* stationary distribution: solve ``π P = π`` → ``π = [2/5, 3/5]``

so the overload probability is exactly 0.6.  A metamorphic
monotonicity property backs the fixture: for a 2-state chain whose
history ends in the overload state, appending another overload sample
adds a 1→1 transition, which can only shift row 1's mass away from
the 1→0 exit — the stationary overload probability never decreases.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service.detectors import (
    MHODOverloadDetector,
    ThresholdOverloadDetector,
    ThresholdUnderloadDetector,
)

FIXTURE_HISTORY = [0.1, 0.9, 0.9, 0.1, 0.9]


@pytest.fixture
def detector() -> MHODOverloadDetector:
    return MHODOverloadDetector(
        threshold=0.5,
        otf_limit=0.5,
        n_states=2,
        smoothing=1.0,
        min_history=4,
    )


class TestHandFixture:
    def test_discretize(self, detector):
        np.testing.assert_array_equal(
            detector.discretize(FIXTURE_HISTORY), [0, 1, 1, 0, 1]
        )

    def test_transition_matrix(self, detector):
        states = detector.discretize(FIXTURE_HISTORY)
        matrix = detector.transition_matrix(states)
        np.testing.assert_array_equal(
            matrix, [[0.25, 0.75], [0.5, 0.5]]
        )

    def test_stationary_distribution(self, detector):
        pi = detector.stationary_distribution(
            np.array([[0.25, 0.75], [0.5, 0.5]])
        )
        assert pi[0] == pytest.approx(0.4, abs=1e-12)
        assert pi[1] == pytest.approx(0.6, abs=1e-12)
        assert pi.sum() == pytest.approx(1.0, abs=1e-12)

    def test_overload_probability(self, detector):
        assert detector.overload_probability(
            FIXTURE_HISTORY
        ) == pytest.approx(0.6, abs=1e-12)

    def test_detect_uses_otf_limit(self, detector):
        # π₁ = 0.6 > 0.5 → overloaded.
        assert detector.detect(FIXTURE_HISTORY)
        relaxed = MHODOverloadDetector(
            threshold=0.5, otf_limit=0.7, n_states=2, min_history=4
        )
        assert not relaxed.detect(FIXTURE_HISTORY)


class TestMetamorphicMonotonicity:
    def test_appending_overload_never_decreases_probability(self):
        rng = random.Random(20260808)
        detector = MHODOverloadDetector(
            threshold=0.6, otf_limit=0.3, n_states=2, min_history=4
        )
        checked = 0
        for _ in range(200):
            history = [rng.random() for _ in range(rng.randint(4, 30))]
            history.append(rng.uniform(0.6, 1.0))  # end overloaded
            base = detector.overload_probability(history)
            extended = detector.overload_probability(
                history + [rng.uniform(0.6, 1.0)]
            )
            assert extended >= base - 1e-12, (history, base, extended)
            checked += 1
        assert checked == 200

    def test_raising_otf_limit_never_adds_detections(self):
        rng = random.Random(7)
        strict = MHODOverloadDetector(
            threshold=0.6, otf_limit=0.2, n_states=2, min_history=4
        )
        lax = MHODOverloadDetector(
            threshold=0.6, otf_limit=0.8, n_states=2, min_history=4
        )
        for _ in range(100):
            history = [rng.random() for _ in range(12)]
            if lax.detect(history):
                assert strict.detect(history)


class TestBehaviour:
    def test_saturated_host_detected_and_idle_host_not(self, detector):
        assert detector.detect([0.95] * 12)
        assert not detector.detect([0.05] * 12)

    def test_short_history_falls_back_to_threshold(self, detector):
        assert detector.detect([0.9])
        assert not detector.detect([0.2, 0.3])
        assert not detector.detect([])

    def test_three_state_discretization(self):
        detector = MHODOverloadDetector(
            threshold=0.8, otf_limit=0.3, n_states=3
        )
        np.testing.assert_array_equal(
            detector.discretize([0.0, 0.39, 0.41, 0.79, 0.8, 1.0]),
            [0, 0, 1, 1, 2, 2],
        )

    def test_transition_rows_are_stochastic(self, detector):
        rng = random.Random(11)
        for _ in range(20):
            history = [rng.random() for _ in range(25)]
            matrix = detector.transition_matrix(
                detector.discretize(history)
            )
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
            assert np.all(matrix > 0)  # Laplace smoothing

    def test_rejects_nan_history(self, detector):
        with pytest.raises(ConfigurationError):
            detector.discretize([0.5, float("nan")])


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ConfigurationError):
            MHODOverloadDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            MHODOverloadDetector(otf_limit=1.5)
        with pytest.raises(ConfigurationError):
            MHODOverloadDetector(n_states=1)
        with pytest.raises(ConfigurationError):
            MHODOverloadDetector(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            MHODOverloadDetector(min_history=1)

    def test_threshold_detectors(self):
        over = ThresholdOverloadDetector(threshold=0.9)
        under = ThresholdUnderloadDetector(threshold=0.3)
        assert over.detect([0.2, 0.9])
        assert not over.detect([0.9, 0.2])
        assert under.detect([0.9, 0.3])
        assert not under.detect([0.3, 0.9])
        assert not over.detect([]) and not under.detect([])
        with pytest.raises(ConfigurationError):
            ThresholdOverloadDetector(threshold=-0.1)
