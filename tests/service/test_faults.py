"""Fault injection: a hostile stream degrades telemetry, never the plan.

The suite throws dropped, duplicated, delayed (out-of-order / late)
samples, raising detectors, and blown deadlines at the controller and
pins the graceful-degradation contract after every cycle:

* the live plan equals its from-scratch canonical rebuild (no
  corruption, ever),
* every VM stays assigned,
* faults show up in counters instead of exceptions,
* one clean cycle after the fault, decisions flow again.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.service.controller import ControllerConfig, MonitoringSample
from repro.service.clock import VirtualClock
from repro.service.detectors import ThresholdOverloadDetector
from repro.service.harness import (
    FaultInjector,
    FaultSpec,
    ScriptedFeed,
    SimulationHarness,
)

from tests.service.conftest import (
    assert_plan_consistent,
    build_controller,
    scripted_feed_for,
)


def _noisy_feed(controller, n_ticks: int, seed: int) -> ScriptedFeed:
    rng = np.random.default_rng(seed)
    n_vms = controller.store.n_servers
    cpu_util = np.clip(
        rng.uniform(0.05, 0.7, (n_vms, n_ticks))
        + 0.4 * (rng.random((n_vms, n_ticks)) < 0.1),
        0.0,
        1.0,
    )
    return scripted_feed_for(
        controller, cpu_util, rng.uniform(1.0, 6.0, (n_vms, n_ticks))
    )


class TestStreamFaults:
    @pytest.mark.parametrize("seed", [1, 23, 456])
    def test_drop_dup_delay_never_corrupts_plan(self, seed):
        controller = build_controller(n_hosts=4, n_vms=8, seed=seed)
        feed = _noisy_feed(controller, 30, seed)
        injector = FaultInjector(
            FaultSpec(
                drop_rate=0.15,
                duplicate_rate=0.15,
                delay_rate=0.15,
                delay_ticks=2,
                seed=seed,
            )
        )
        harness = SimulationHarness(
            controller, feed, injector=injector, replan_every=1
        )
        for report in harness.run():
            assert_plan_consistent(controller)
            assert report.latency_seconds >= 0.0
        # The stream really was hostile…
        assert injector.dropped > 0
        assert injector.duplicated > 0
        assert injector.delayed > 0
        # …and the controller accounted for every delivered sample:
        # accepted, duplicate-ignored, or late-dropped — nothing lost,
        # nothing raised.
        stats = controller.stats.snapshot()
        delivered = (
            controller.store.n_servers * feed.n_ticks
            - injector.dropped
            + injector.duplicated
        )
        assert (
            stats["samples_ingested"]
            + stats["duplicates_ignored"]
            + stats["late_dropped"]
            == delivered
        )
        assert stats["duplicates_ignored"] > 0
        assert stats["gaps_filled"] > 0
        # Every VM still has a home.
        assert set(controller.plan.assignment()) == set(
            controller.store.vm_ids
        )

    def test_reorder_within_tick_is_equivalent_to_in_order(self):
        # Shuffling delivery order *within* each tick must change
        # nothing: same store contents, same schedule.
        stores, assignments = [], []
        for shuffle_seed in (None, 99):
            controller = build_controller(n_hosts=4, n_vms=6, seed=5)
            feed = _noisy_feed(controller, 20, seed=5)
            rng = (
                random.Random(shuffle_seed)
                if shuffle_seed is not None
                else None
            )
            for batch in feed.batches():
                batch = list(batch)
                if rng is not None:
                    rng.shuffle(batch)
                for sample in batch:
                    controller.ingest(sample)
                controller.replan_cycle()
            stores.append(np.array(controller.store.view().cpu_rpe2))
            assignments.append(controller.plan.assignment())
        np.testing.assert_array_equal(stores[0], stores[1])
        assert assignments[0] == assignments[1]

    def test_duplicates_are_idempotent(self):
        # A duplicate-only injector (nothing dropped or delayed) must
        # leave store and schedule identical to the clean run.
        results = []
        for rates in (0.0, 0.5):
            controller = build_controller(n_hosts=4, n_vms=6, seed=8)
            feed = _noisy_feed(controller, 20, seed=8)
            injector = FaultInjector(
                FaultSpec(duplicate_rate=rates, seed=3)
            )
            harness = SimulationHarness(
                controller, feed, injector=injector, replan_every=2
            )
            harness.run()
            results.append(
                (
                    np.array(controller.store.view().cpu_rpe2),
                    controller.plan.assignment(),
                    harness.migrations(),
                )
            )
        np.testing.assert_array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]
        assert results[0][2] == results[1][2]


class _FlakyDetector:
    """Threshold detector that raises on scheduled calls."""

    def __init__(self, threshold: float, fail_calls) -> None:
        self._inner = ThresholdOverloadDetector(threshold=threshold)
        self._fail_calls = set(fail_calls)
        self._calls = 0

    def detect(self, utilization) -> bool:
        self._calls += 1
        if self._calls in self._fail_calls:
            raise RuntimeError("detector hardware went away")
        return self._inner.detect(utilization)


class TestDetectorFaults:
    def test_raising_detector_is_counted_and_cycle_survives(self):
        controller = build_controller(
            n_hosts=3,
            n_vms=4,
            overload_detector=_FlakyDetector(0.85, fail_calls={1, 2}),
        )
        feed = scripted_feed_for(controller, np.full((4, 1), 0.5))
        SimulationHarness(controller, feed, replan_every=1).run()
        assert controller.stats.detector_errors >= 1
        assert controller.stats.cycles >= 1
        assert_plan_consistent(controller)

    def test_recovery_on_next_clean_cycle(self):
        # Cycle 1: detector raises for every active host → no evictions.
        # Cycle 2: detector works → the hot host finally sheds load.
        controller = build_controller(
            n_hosts=3,
            n_vms=4,
            overload_detector=_FlakyDetector(0.85, fail_calls={1, 2}),
        )
        victim = controller.host_of("vm0")
        hot = [
            1.0 if controller.host_of(vm) == victim else 0.1
            for vm in controller.store.vm_ids
        ]
        feed = scripted_feed_for(
            controller, np.tile(np.array(hot)[:, None], (1, 4))
        )
        harness = SimulationHarness(controller, feed, replan_every=1)
        reports = harness.run()
        faulted = [r for r in reports if r.detector_errors]
        assert faulted and not faulted[0].migrations
        assert harness.migrations(), "should evict once detector recovers"
        assert_plan_consistent(controller)


class TestDeadlineFaults:
    class _SlowClock(VirtualClock):
        def __init__(self, step_seconds: float) -> None:
            super().__init__()
            self._step_seconds = step_seconds

        def now(self) -> float:
            self.advance(self._step_seconds)
            return super().now()

    def test_deadline_degrades_and_recovers(self):
        clock = self._SlowClock(step_seconds=0.4)
        controller = build_controller(
            n_hosts=4,
            n_vms=8,
            config=ControllerConfig(
                sizing_window_points=4, deadline_seconds=0.5
            ),
            clock=clock,
        )
        tick = controller.store.total_points
        for offset in range(3):
            for vm_id in controller.store.vm_ids:
                controller.ingest(
                    MonitoringSample(tick + offset, vm_id, 1.0, 2.0)
                )
        first = controller.replan_cycle()
        assert first.deadline_hit
        assert_plan_consistent(controller)
        # Speed the clock back up: the next cycles drain the backlog.
        clock._step_seconds = 0.0
        for _ in range(4):
            report = controller.replan_cycle()
            assert not report.deadline_hit
            assert_plan_consistent(controller)
        assert controller.stats.deadline_aborts == 1
