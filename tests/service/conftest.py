"""Shared builders for the online-service test suite.

Everything is seeded and runs on a :class:`VirtualClock`; the
``assert_plan_consistent`` helper is the suite's core invariant — a
controller's live plan must always equal its from-scratch rebuild,
bit for bit, no matter what faults the stream threw at it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.incremental import IncrementalPlan
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.service.clock import VirtualClock
from repro.service.controller import ConsolidationController, ControllerConfig
from repro.service.detectors import (
    ThresholdOverloadDetector,
    ThresholdUnderloadDetector,
)
from repro.service.harness import ScriptedFeed
from repro.workloads.rolling import RollingTraceStore


def build_fleet(
    n_hosts: int, cpu_rpe2: float = 1000.0, memory_gb: float = 64.0
) -> List[PhysicalServer]:
    return [
        PhysicalServer(
            f"h{i}", ServerSpec(cpu_rpe2=cpu_rpe2, memory_gb=memory_gb)
        )
        for i in range(n_hosts)
    ]


def build_controller(
    n_hosts: int = 4,
    n_vms: int = 8,
    seed: int = 1,
    warmup_points: int = 6,
    retention_points: int = 64,
    vm_capacity_rpe2: float = 500.0,
    config: Optional[ControllerConfig] = None,
    bootstrap: bool = True,
    **controller_kwargs,
) -> ConsolidationController:
    """Seeded quiet-fleet controller on a VirtualClock."""
    rng = np.random.default_rng(seed)
    hosts = build_fleet(n_hosts)
    vm_ids = [f"vm{i}" for i in range(n_vms)]
    store = RollingTraceStore(
        vm_ids,
        [vm_capacity_rpe2] * n_vms,
        interval_hours=1.0,
        retention_points=retention_points,
    )
    if warmup_points:
        store.append_samples(
            rng.uniform(0.05, 0.3, (n_vms, warmup_points)),
            rng.uniform(1.0, 4.0, (n_vms, warmup_points)),
        )
    controller_kwargs.setdefault(
        "overload_detector", ThresholdOverloadDetector(threshold=0.85)
    )
    controller_kwargs.setdefault(
        "underload_detector", ThresholdUnderloadDetector(threshold=0.2)
    )
    controller_kwargs.setdefault("clock", VirtualClock())
    controller = ConsolidationController(
        hosts,
        store,
        config=config
        if config is not None
        else ControllerConfig(sizing_window_points=4),
        **controller_kwargs,
    )
    if bootstrap and warmup_points:
        controller.bootstrap()
    return controller


def assert_plan_consistent(controller: ConsolidationController) -> None:
    """The live plan must equal its canonical from-scratch rebuild."""
    plan = controller.plan
    rebuilt = IncrementalPlan.from_assignment(
        plan.caps,
        plan.vm_ids,
        plan.cpu,
        plan.mem,
        plan.assignment(),
        plan.net,
        plan.dsk,
    )
    assert plan.assignment_rows == rebuilt.assignment_rows
    assert plan.vm_rows_of_host == rebuilt.vm_rows_of_host
    assert plan.body_cpu == rebuilt.body_cpu
    assert plan.body_mem == rebuilt.body_mem
    assert plan.body_net == rebuilt.body_net
    assert plan.body_dsk == rebuilt.body_dsk


def scripted_feed_for(
    controller: ConsolidationController,
    cpu_util: Sequence[Sequence[float]],
    memory_gb: Optional[Sequence[Sequence[float]]] = None,
) -> ScriptedFeed:
    """Feed over explicit per-VM utilization rows, ticks from 'now'."""
    cpu = np.asarray(cpu_util, dtype=float)
    mem = (
        np.asarray(memory_gb, dtype=float)
        if memory_gb is not None
        else np.full(cpu.shape, 2.0)
    )
    return ScriptedFeed(
        list(controller.store.vm_ids),
        cpu,
        mem,
        start_tick=controller.store.total_points,
    )
