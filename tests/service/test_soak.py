"""Soak: 10k streamed updates, bounded memory, bounded replan scope.

The full soak is gated behind ``REPRO_SOAK=1`` (it streams 10 000
samples through ingest → replan and takes tens of seconds); a scaled
smoke variant always runs in tier-1 so the invariants themselves stay
pinned by CI:

* buffer memory stays a constant multiple of the retention window no
  matter how many samples stream in,
* p99 replan scope stays below the full fleet — the incremental
  controller never degenerates into replanning everything,
* the live plan still equals its from-scratch rebuild at the end.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.service.harness import (
    FaultInjector,
    FaultSpec,
    SimulationHarness,
)

from tests.service.conftest import (
    assert_plan_consistent,
    build_controller,
    scripted_feed_for,
)


def _run_soak(
    n_hosts: int, n_vms: int, n_ticks: int, seed: int
) -> dict:
    controller = build_controller(
        n_hosts=n_hosts,
        n_vms=n_vms,
        seed=seed,
        retention_points=48,
    )
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 0.5, n_vms)
    drift = 0.25 * np.sin(
        np.linspace(0.0, 20.0, n_ticks)[None, :]
        + rng.uniform(0.0, 6.0, n_vms)[:, None]
    )
    spikes = 0.5 * (rng.random((n_vms, n_ticks)) < 0.03)
    cpu_util = np.clip(base[:, None] + drift + spikes, 0.0, 1.0)
    memory_gb = np.clip(
        rng.uniform(1.0, 6.0, n_vms)[:, None]
        + 0.5 * rng.standard_normal((n_vms, n_ticks)),
        0.1,
        None,
    )
    feed = scripted_feed_for(controller, cpu_util, memory_gb)
    harness = SimulationHarness(
        controller,
        feed,
        injector=FaultInjector(
            FaultSpec(
                drop_rate=0.02,
                duplicate_rate=0.02,
                delay_rate=0.02,
                seed=seed,
            )
        ),
        replan_every=4,
    )
    harness.run()
    stats = controller.stats.snapshot()

    # Bounded memory: the rolling buffers never exceed 2× retention,
    # and the retained window is exact.
    store = controller.store
    assert store.buffer_points <= 2 * store.retention_points
    assert store.n_points <= store.retention_points
    assert store.total_points >= n_ticks
    assert store.n_compactions > 0

    # Bounded replan scope: p99 of touched hosts per cycle is well
    # under the fleet size — the point of incremental replanning.
    assert stats["replan_scope_p99"] < n_hosts
    assert stats["replan_scope_max"] <= n_hosts

    # No corruption after the whole stream.
    assert_plan_consistent(controller)
    assert set(controller.plan.assignment()) == set(store.vm_ids)
    return stats


class TestSoakSmoke:
    def test_smoke_invariants(self):
        # ~1.6k updates: the same invariants as the full soak at a
        # size tier-1 can afford on every run.
        stats = _run_soak(n_hosts=6, n_vms=16, n_ticks=100, seed=13)
        assert stats["cycles"] >= 25
        assert stats["samples_ingested"] > 1000


@pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="full soak is opt-in: set REPRO_SOAK=1",
)
class TestSoakFull:
    def test_ten_thousand_updates(self):
        # 20 VMs × 500 ticks = 10 000 streamed samples (plus faults).
        stats = _run_soak(n_hosts=8, n_vms=20, n_ticks=500, seed=20260808)
        assert stats["samples_ingested"] >= 9_000
        assert stats["cycles"] >= 125
