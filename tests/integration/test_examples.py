"""Smoke tests: every shipped example must actually run.

Examples are the public face of the library; a broken example is a
broken deliverable.  Each runs in a subprocess at its smallest sensible
scale.  The full-report example is exercised separately through the
report tests (it would dominate the suite's runtime here).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"


def _example_env():
    """Subprocess env with the in-repo package importable.

    Examples run from a scratch cwd, so ``src`` must be put on
    PYTHONPATH relative to the repo root, not the cwd, prepended so the
    in-repo tree wins over any installed copy.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env

pytestmark = pytest.mark.slow

CASES = [
    ("quickstart.py", []),
    ("trace_analysis.py", ["0.05"]),
    ("migration_study.py", []),
    ("datacenter_planning.py", ["airlines", "--scale", "0.05", "--serial"]),
    ("custom_workload.py", []),
    ("monitoring_pipeline.py", []),
]


@pytest.mark.parametrize(
    "script,args", CASES, ids=[case[0] for case in CASES]
)
def test_example_runs(script, args, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
