"""Tests for the repro-vmc command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "table2" in out

    def test_figure(self, capsys):
        assert main(["--scale", "0.05", "figure", "olio"]) == 0
        assert "7.9x" in capsys.readouterr().out

    def test_analyze(self, capsys):
        assert main(["--scale", "0.05", "analyze", "airlines"]) == 0
        out = capsys.readouterr().out
        assert "airlines" in out
        assert "memory-constrained" in out

    def test_compare(self, capsys):
        assert main(["--scale", "0.05", "compare", "airlines"]) == 0
        out = capsys.readouterr().out
        assert "semi-static" in out
        assert "dynamic" in out

    def test_unknown_figure_raises(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["figure", "fig99"])

    def test_candidates(self, capsys):
        assert main(
            ["--scale", "0.05", "candidates", "banking", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "dynamic-placement candidates" in out
        assert "reclaimable" in out

    def test_intervals(self, capsys):
        assert main(["--scale", "0.04", "intervals", "airlines"]) == 0
        out = capsys.readouterr().out
        assert "interval" in out
        assert "migrations" in out

    def test_migration_ladder(self, capsys):
        assert main(["migration-ladder"]) == 0
        out = capsys.readouterr().out
        assert "baseline-1gbe" in out
        assert "rdma" in out
