"""End-to-end integration tests across the whole stack.

These exercise the realistic pipeline (generate → plan → emulate →
metrics) on one small datacenter and assert cross-module invariants
that no unit test can see.
"""

import numpy as np
import pytest

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    SemiStaticConsolidation,
    StochasticConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.constraints import AntiColocate, ConstraintSet, PinToHost
from repro.core import PlanningConfig


@pytest.fixture(scope="module")
def traces():
    return generate_datacenter("banking", scale=0.08)


@pytest.fixture(scope="module")
def pool(traces):
    return build_target_pool("pool", host_count=len(traces) // 2)


@pytest.fixture(scope="module")
def results(traces, pool):
    planner = ConsolidationPlanner(traces=traces, datacenter=pool)
    return planner.compare(
        [
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        ]
    )


class TestDemandConservation:
    def test_total_demand_independent_of_scheme(self, results):
        """Replayed demand is conserved: placement moves demand between
        hosts but can neither create nor destroy it."""
        totals = {
            name: result.cpu_demand.sum() for name, result in results.items()
        }
        values = list(totals.values())
        assert values[0] == pytest.approx(values[1], rel=1e-9)
        assert values[0] == pytest.approx(values[2], rel=1e-9)

    def test_memory_demand_conserved(self, results):
        totals = [r.memory_demand.sum() for r in results.values()]
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
        assert totals[0] == pytest.approx(totals[2], rel=1e-9)


class TestSchemeCharacter:
    def test_semistatic_hosts_always_active(self, results):
        semi = results["semi-static"]
        assert semi.active.all()

    def test_dynamic_powers_hosts_off(self, results):
        dynamic = results["dynamic"]
        assert not dynamic.active.all()
        assert dynamic.active.any(axis=0).all()  # never everything off

    def test_power_ordering(self, results):
        # Powering hosts off can only reduce energy relative to
        # always-on schemes *per provisioned host*; globally dynamic
        # must beat vanilla for this bursty workload.
        assert results["dynamic"].energy_kwh < results["semi-static"].energy_kwh

    def test_every_vm_always_placed(self, results, traces):
        for result in results.values():
            for segment in result.schedule:
                assert set(segment.placement.assignment) == set(
                    traces.vm_ids
                )


class TestConstraintsEndToEnd:
    def test_constraints_respected_by_all_schemes(self, traces, pool):
        vm_ids = traces.vm_ids
        constraints = ConstraintSet(
            [
                AntiColocate(vm_ids[0], vm_ids[1]),
                PinToHost(vm_ids[2], pool.hosts[0].host_id),
            ]
        )
        planner = ConsolidationPlanner(
            traces=traces, datacenter=pool, constraints=constraints
        )
        for algorithm in (
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        ):
            schedule = planner.plan(algorithm)
            for segment in schedule:
                placement = segment.placement
                assert placement.host_of(vm_ids[0]) != placement.host_of(
                    vm_ids[1]
                ), algorithm.name
                assert placement.host_of(vm_ids[2]) == (
                    pool.hosts[0].host_id
                ), algorithm.name


class TestReservationEffect:
    def test_reservation_costs_servers(self, traces, pool):
        def peak_hosts(bound):
            planner = ConsolidationPlanner(
                traces=traces,
                datacenter=pool,
                config=PlanningConfig(utilization_bound=bound),
            )
            return planner.run(DynamicConsolidation()).provisioned_servers

        assert peak_hosts(0.7) >= peak_hosts(1.0)
