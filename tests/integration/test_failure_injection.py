"""Failure-injection tests: the system must fail loudly and precisely.

A planning tool that silently under-provisions or mis-reports is worse
than one that crashes; these tests pin the failure behaviour of each
layer under injected faults.
"""

import numpy as np
import pytest

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    PlacementError,
    SemiStaticConsolidation,
    StochasticConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.constraints import ConstraintSet, PinToHost
from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.monitoring.agent import MonitoringAgent
from repro.monitoring.warehouse import DataWarehouse
from repro.placement.plan import Placement
from tests.conftest import make_server_trace


@pytest.fixture(scope="module")
def traces():
    return generate_datacenter("banking", scale=0.05)


class TestPoolExhaustion:
    def test_every_algorithm_raises_with_vm_named(self, traces):
        pool = build_target_pool("tiny", host_count=1)
        planner = ConsolidationPlanner(traces=traces, datacenter=pool)
        for algorithm in (
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        ):
            with pytest.raises(PlacementError, match="banking-vm"):
                planner.plan(algorithm)

    def test_infeasible_pin_raises(self, traces):
        pool = build_target_pool("pool", host_count=20)
        vm = traces.vm_ids[0]
        planner = ConsolidationPlanner(
            traces=traces,
            datacenter=pool,
            constraints=ConstraintSet(
                [PinToHost(vm, "pool-h0000"), PinToHost(vm, "pool-h0001")]
            ),
        )
        with pytest.raises(PlacementError):
            planner.plan(SemiStaticConsolidation())


class TestEmulatorFaults:
    def test_stale_placement_detected(self, traces):
        # A placement referring to a VM that has since left the estate.
        pool = build_target_pool("pool", host_count=4)
        evaluation = traces.window(0, 48)
        emulator = ConsolidationEmulator(
            trace_set=evaluation, datacenter=pool
        )
        placement = Placement({"ghost-vm": "pool-h0000"})
        with pytest.raises(EmulationError, match="ghost-vm"):
            emulator.evaluate(PlacementSchedule.static(placement, 48))

    def test_decommissioned_host_detected(self, traces):
        pool = build_target_pool("pool", host_count=4)
        evaluation = traces.window(0, 48)
        emulator = ConsolidationEmulator(
            trace_set=evaluation, datacenter=pool
        )
        placement = Placement({traces.vm_ids[0]: "decommissioned-host"})
        with pytest.raises(EmulationError, match="decommissioned-host"):
            emulator.evaluate(PlacementSchedule.static(placement, 48))


class TestMonitoringFaults:
    def test_fully_dark_hours_exclude_server(self):
        """An agent that loses whole hours must not enter planning."""
        rng = np.random.default_rng(4)
        trace = make_server_trace(
            "dark", 0.1 + 0.2 * rng.random(96), np.ones(96) * 2.0
        )
        # 97% drop probability: several hours lose all 60 samples.
        agent = MonitoringAgent(trace, seed=2, drop_probability=0.97)
        assert (agent.dropped_mask().all(axis=1)).any(), (
            "fixture must contain at least one fully dark hour"
        )
        warehouse = DataWarehouse()
        warehouse.ingest_agent(agent)
        exported, excluded = warehouse.export_trace_set(
            "plan", min_completeness=0.01
        )
        assert excluded == ("dark",)
        assert len(exported) == 0

    def test_partial_hours_still_average_correctly(self):
        rng = np.random.default_rng(5)
        trace = make_server_trace(
            "flaky", 0.1 + 0.2 * rng.random(96), np.ones(96) * 2.0
        )
        agent = MonitoringAgent(trace, seed=3, drop_probability=0.5)
        warehouse = DataWarehouse()
        record = warehouse.ingest_agent(agent)
        # Hourly means from surviving samples track the ground truth
        # closely (the texture is mean-one and drops are random).
        valid = ~np.isnan(record.hourly_cpu_util)
        assert valid.any()
        error = np.abs(
            record.hourly_cpu_util[valid]
            - trace.cpu_util.values[valid]
        ) / trace.cpu_util.values[valid]
        assert np.median(error) < 0.05
