"""End-to-end test of the §3.1 I/O constraints across the algorithms.

"Consolidation planning optimizes CPU and memory, while using network
and disk throughput as constraints to identify hosts with sufficient
link bandwidth."  With I/O models configured, every algorithm must
respect host link/SAN capacity even when CPU and memory would fit.
"""

import pytest

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    SemiStaticConsolidation,
    StochasticConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.core import PlanningConfig
from repro.sizing import DiskDemandModel, NetworkDemandModel


@pytest.fixture(scope="module")
def traces():
    return generate_datacenter("banking", scale=0.05)


def _run(traces, config):
    pool = build_target_pool("pool", host_count=len(traces))
    planner = ConsolidationPlanner(
        traces=traces, datacenter=pool, config=config
    )
    return {
        algo.name: planner.run(algo)
        for algo in (
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        )
    }


class TestIoConstrainedPlanning:
    def test_io_constraints_cost_servers(self, traces):
        """Aggressive I/O reservations force wider spreads."""
        without = _run(traces, PlanningConfig())
        with_io = _run(
            traces,
            PlanningConfig(
                # Deliberately heavy intensities: I/O becomes binding.
                network=NetworkDemandModel(
                    web_mbps_per_rpe2=1.2, batch_mbps_per_rpe2=0.5
                ),
                disk=DiskDemandModel(
                    web_mbps_per_rpe2=0.3, batch_mbps_per_rpe2=0.6
                ),
            ),
        )
        for scheme in without:
            assert (
                with_io[scheme].provisioned_servers
                >= without[scheme].provisioned_servers
            ), scheme

    def test_default_io_models_barely_bind(self, traces):
        """At realistic intensities I/O is a safety net, not a driver."""
        without = _run(traces, PlanningConfig())
        with_io = _run(
            traces,
            PlanningConfig(
                network=NetworkDemandModel(), disk=DiskDemandModel()
            ),
        )
        for scheme in without:
            delta = (
                with_io[scheme].provisioned_servers
                - without[scheme].provisioned_servers
            )
            assert 0 <= delta <= 2, scheme
