"""Tolerance helpers backing the REPRO104 lint rule."""

from repro.numerics import CAPACITY_SLACK, approx_eq, approx_gte, approx_lte, approx_ne


def test_approx_eq_absorbs_accumulated_rounding():
    total = sum([0.1] * 10)  # 0.9999999999999999, not 1.0
    assert total != 1.0
    assert approx_eq(total, 1.0)
    assert not approx_ne(total, 1.0)


def test_approx_eq_near_zero_uses_absolute_floor():
    assert approx_eq(1e-15, 0.0)
    assert approx_ne(1e-6, 0.0)


def test_approx_eq_distinguishes_real_differences():
    assert approx_ne(0.5, 0.500001)
    assert approx_eq(0.5, 0.5)


def test_capacity_fit_helpers_allow_exact_fill():
    capacity_gb = 64.0
    demand_gb = sum([6.4] * 10)  # mathematically == capacity
    assert approx_lte(demand_gb, capacity_gb)
    assert approx_gte(capacity_gb, demand_gb)
    assert not approx_lte(capacity_gb + 1.0, capacity_gb)
    assert CAPACITY_SLACK > 0.0
