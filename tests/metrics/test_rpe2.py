"""Tests for RPE2 capacity units."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.rpe2 import Rpe2, rpe2_to_utilization, utilization_to_rpe2


class TestRpe2Type:
    def test_float_conversion(self):
        assert float(Rpe2(2500.0)) == 2500.0

    def test_arithmetic_returns_rpe2(self):
        assert float(Rpe2(100) + Rpe2(50)) == 150
        assert float(Rpe2(100) - 25) == 75
        assert float(Rpe2(100) * 2) == 200
        assert float(2 * Rpe2(100)) == 200

    def test_division_returns_plain_ratio(self):
        assert Rpe2(100) / Rpe2(50) == 2.0

    def test_ordering(self):
        assert Rpe2(10) < Rpe2(20)
        assert max(Rpe2(10), Rpe2(20)) == Rpe2(20)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Rpe2(-1.0)


class TestConversions:
    def test_round_trip(self):
        demand = utilization_to_rpe2(0.25, 2000.0)
        assert demand == 500.0
        assert rpe2_to_utilization(demand, 2000.0) == 0.25

    def test_over_capacity_utilization_allowed(self):
        # Contended demand is representable: utilization above 1.
        assert utilization_to_rpe2(1.5, 1000.0) == 1500.0
        assert rpe2_to_utilization(1500.0, 1000.0) == 1.5

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            utilization_to_rpe2(-0.1, 1000.0)
        with pytest.raises(ConfigurationError):
            utilization_to_rpe2(0.5, 0.0)
        with pytest.raises(ConfigurationError):
            rpe2_to_utilization(-5.0, 1000.0)
        with pytest.raises(ConfigurationError):
            rpe2_to_utilization(5.0, -1000.0)
