"""Tests for the hardware catalog."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.catalog import (
    HS23_ELITE,
    SOURCE_MODELS,
    ServerModel,
    get_model,
    list_models,
    register_model,
)


class TestHs23Anchor:
    def test_ratio_is_exactly_160(self):
        # The single published anchor everything else hangs on.
        assert HS23_ELITE.cpu_memory_ratio == pytest.approx(160.0)

    def test_memory_is_128_gb(self):
        assert HS23_ELITE.memory_gb == 128.0


class TestCatalogLookup:
    def test_get_known_model(self):
        assert get_model("hs23-elite") is HS23_ELITE

    def test_source_models_registered(self):
        for model in SOURCE_MODELS:
            assert get_model(model.name) is model

    def test_unknown_model_lists_known_keys(self):
        with pytest.raises(ConfigurationError, match="hs23-elite"):
            get_model("nonexistent-server")

    def test_list_models_sorted(self):
        names = [m.name for m in list_models()]
        assert names == sorted(names)


class TestRegistration:
    def test_register_and_lookup(self):
        model = ServerModel(
            name="test-unique-box",
            cpu_rpe2=1000.0,
            memory_gb=2.0,
            idle_watts=50.0,
            peak_watts=100.0,
        )
        register_model(model)
        assert get_model("test-unique-box") is model

    def test_duplicate_rejected_without_replace(self):
        model = ServerModel(
            name="dup-box",
            cpu_rpe2=1000.0,
            memory_gb=2.0,
            idle_watts=50.0,
            peak_watts=100.0,
        )
        register_model(model, replace=True)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_model(model)

    def test_replace_overwrites(self):
        first = ServerModel(
            name="swap-box", cpu_rpe2=1000.0, memory_gb=2.0,
            idle_watts=50.0, peak_watts=100.0,
        )
        second = ServerModel(
            name="swap-box", cpu_rpe2=2000.0, memory_gb=4.0,
            idle_watts=60.0, peak_watts=120.0,
        )
        register_model(first, replace=True)
        register_model(second, replace=True)
        assert get_model("swap-box").cpu_rpe2 == 2000.0


class TestModelValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_rpe2": 0.0},
            {"cpu_rpe2": -10.0},
            {"memory_gb": 0.0},
            {"idle_watts": -1.0},
            {"peak_watts": 10.0, "idle_watts": 20.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        base = dict(
            name="bad", cpu_rpe2=100.0, memory_gb=1.0,
            idle_watts=10.0, peak_watts=20.0,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ServerModel(**base)
