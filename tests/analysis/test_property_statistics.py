"""Property-based tests for demand statistics and CDFs (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.statistics import (
    coefficient_of_variation,
    interval_demand,
    peak_to_average,
)

positive_series = hnp.arrays(
    dtype=float,
    shape=st.integers(4, 96).map(lambda n: n - n % 4),  # multiple of 4
    elements=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
)


@given(values=positive_series)
@settings(max_examples=80, deadline=None)
def test_p2a_at_least_one(values):
    assert peak_to_average(values) >= 1.0 - 1e-12


@given(values=positive_series)
@settings(max_examples=80, deadline=None)
def test_p2a_nonincreasing_in_interval_length(values):
    ratios = [
        peak_to_average(interval_demand(values, k)) for k in (1, 2, 4)
    ]
    assert ratios[0] >= ratios[1] - 1e-9
    assert ratios[1] >= ratios[2] - 1e-9


@given(values=positive_series, scale=st.floats(1e-3, 1e3))
@settings(max_examples=60, deadline=None)
def test_cov_scale_invariant(values, scale):
    original = coefficient_of_variation(values)
    scaled = coefficient_of_variation(values * scale)
    # Relative tolerance: near-subnormal inputs lose a few bits under
    # multiplication, so exact equality is not achievable.
    assert scaled == pytest.approx(original, rel=1e-5, abs=1e-9)


@given(values=positive_series)
@settings(max_examples=60, deadline=None)
def test_interval_demand_max_dominates_each_window(values):
    demand = interval_demand(values, 4)
    windows = values.reshape(-1, 4)
    assert (demand[:, None] >= windows).all()
    assert (demand == windows.max(axis=1)).all()


sample_strategy = hnp.arrays(
    dtype=float,
    shape=st.integers(1, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


@given(sample=sample_strategy)
@settings(max_examples=80, deadline=None)
def test_cdf_monotone_and_bounded(sample):
    cdf = EmpiricalCDF(sample)
    xs = np.linspace(sample.min() - 1, sample.max() + 1, 17)
    values = [cdf.at(float(x)) for x in xs]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert cdf.at(float(sample.max())) == 1.0


@given(
    sample=sample_strategy,
    q1=st.floats(0.0, 1.0),
    q2=st.floats(0.0, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_cdf_quantile_monotone_and_in_range(sample, q1, q2):
    cdf = EmpiricalCDF(sample)
    lo, hi = min(q1, q2), max(q1, q2)
    x_lo, x_hi = cdf.quantile(lo), cdf.quantile(hi)
    assert x_lo <= x_hi
    assert sample.min() <= x_lo <= sample.max()
    assert sample.min() <= x_hi <= sample.max()


@given(sample=sample_strategy, x=st.floats(-1e6, 1e6))
@settings(max_examples=60, deadline=None)
def test_cdf_complement(sample, x):
    cdf = EmpiricalCDF(sample)
    assert cdf.at(x) + cdf.fraction_above(x) == 1.0
