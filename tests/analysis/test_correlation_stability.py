"""Tests for correlation stability (Observation 5's premise)."""

import numpy as np
import pytest

from repro.analysis.correlation import correlation_stability
from repro.exceptions import TraceError
from repro.workloads import generate_datacenter
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


class TestCorrelationStability:
    def test_perfectly_stable_structure(self):
        # Three servers whose relationships repeat exactly each half.
        base = np.tile([0.1, 0.5, 0.2, 0.8], 10)
        ts = TraceSet(name="s")
        ts.add(make_server_trace("a", base, np.ones(40)))
        ts.add(make_server_trace("b", base * 0.5 + 0.05, np.ones(40)))
        ts.add(make_server_trace("c", 0.9 - base, np.ones(40)))
        assert correlation_stability(ts) == pytest.approx(1.0, abs=1e-6)

    def test_generated_datacenters_are_stable(self):
        # The paper: "correlation between workloads is stable over time"
        # — the property PCP banks on (Observation 5).
        for key in ("banking", "natural-resources"):
            ts = generate_datacenter(key, scale=0.08)
            assert correlation_stability(ts) > 0.3, key

    def test_uncorrelated_noise_is_unstable(self):
        rng = np.random.default_rng(0)
        ts = TraceSet(name="noise")
        for i in range(10):
            ts.add(
                make_server_trace(
                    f"n{i}", rng.random(200) * 0.5 + 0.01, np.ones(200)
                )
            )
        assert abs(correlation_stability(ts)) < 0.4

    def test_validation(self):
        ts = TraceSet(name="tiny")
        ts.add(make_server_trace("a", [0.1] * 8, [1.0] * 8))
        ts.add(make_server_trace("b", [0.2] * 8, [1.0] * 8))
        with pytest.raises(TraceError, match="3 servers"):
            correlation_stability(ts)
