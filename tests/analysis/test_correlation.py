"""Tests for correlation analysis and peak clustering."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    cluster_by_peaks,
    correlation_matrix,
    envelope_similarity,
    peak_envelope,
)
from repro.exceptions import TraceError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


class TestCorrelationMatrix:
    def test_self_correlation_is_one(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((4, 50))
        corr = correlation_matrix(matrix)
        assert np.allclose(np.diag(corr), 1.0)

    def test_perfect_correlation_and_anticorrelation(self):
        base = np.linspace(0, 1, 20)
        matrix = np.vstack([base, base * 2 + 1, -base])
        corr = correlation_matrix(matrix)
        assert corr[0, 1] == pytest.approx(1.0)
        assert corr[0, 2] == pytest.approx(-1.0)

    def test_constant_row_is_zero_correlated(self):
        matrix = np.vstack([np.ones(10), np.arange(10, dtype=float)])
        corr = correlation_matrix(matrix)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0

    def test_shape_validation(self):
        with pytest.raises(TraceError):
            correlation_matrix(np.ones(5))


class TestPeakEnvelope:
    def test_marks_top_decile(self):
        values = np.arange(100, dtype=float)
        envelope = peak_envelope(values, body_quantile=0.9)
        assert envelope.sum() == 10
        assert envelope[-10:].all()

    def test_flat_series_has_no_peaks(self):
        envelope = peak_envelope(np.full(50, 2.0))
        assert not envelope.any()

    def test_similarity_identical_and_disjoint(self):
        a = np.array([True, True, False, False])
        b = np.array([False, False, True, True])
        assert envelope_similarity(a, a) == 1.0
        assert envelope_similarity(a, b) == 0.0

    def test_similarity_partial(self):
        a = np.array([True, True, False])
        b = np.array([True, False, True])
        assert envelope_similarity(a, b) == pytest.approx(1 / 3)


class TestClusterByPeaks:
    def _trace(self, vm_id, peak_hours, n_hours=100):
        util = np.full(n_hours, 0.1)
        util[list(peak_hours)] = 0.9
        return make_server_trace(vm_id, util, np.full(n_hours, 1.0))

    def test_copeaking_servers_share_cluster(self):
        ts = TraceSet(name="c")
        ts.add(self._trace("a", range(0, 10)))
        ts.add(self._trace("b", range(0, 10)))
        ts.add(self._trace("c", range(50, 60)))
        clusters = cluster_by_peaks(ts, similarity_threshold=0.5)
        assert clusters.cluster_for("a") == clusters.cluster_for("b")
        assert clusters.cluster_for("a") != clusters.cluster_for("c")
        assert clusters.n_clusters == 2

    def test_members_listing(self):
        ts = TraceSet(name="c")
        ts.add(self._trace("a", range(0, 10)))
        ts.add(self._trace("b", range(0, 10)))
        clusters = cluster_by_peaks(ts, similarity_threshold=0.5)
        assert set(clusters.members(clusters.cluster_for("a"))) == {"a", "b"}

    def test_unknown_vm(self):
        ts = TraceSet(name="c")
        ts.add(self._trace("a", range(0, 10)))
        clusters = cluster_by_peaks(ts)
        with pytest.raises(TraceError):
            clusters.cluster_for("zz")

    def test_every_vm_assigned(self, generated_trace_set):
        clusters = cluster_by_peaks(generated_trace_set)
        assert set(clusters.vm_ids) == set(generated_trace_set.vm_ids)
        assert all(c >= 0 for c in clusters.cluster_of)
