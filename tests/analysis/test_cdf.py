"""Tests for the empirical CDF."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCDF
from repro.exceptions import TraceError


class TestEmpiricalCDF:
    def test_at_known_points(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.5) == 0.5
        assert cdf.at(4.0) == 1.0
        assert cdf.at(100.0) == 1.0

    def test_right_continuity_with_ties(self):
        cdf = EmpiricalCDF.from_sample([2.0, 2.0, 2.0, 5.0])
        assert cdf.at(2.0) == 0.75
        assert cdf.at(1.999) == 0.0

    def test_fraction_above_is_strict(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0, 2.0, 3.0])
        assert cdf.fraction_above(2.0) == pytest.approx(0.25)
        assert cdf.fraction_above(0.0) == 1.0

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_sample(np.arange(101, dtype=float))
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(1.0) == 100.0
        assert cdf.median == pytest.approx(50.0)

    def test_quantile_range_checked(self):
        cdf = EmpiricalCDF.from_sample([1.0])
        with pytest.raises(TraceError):
            cdf.quantile(1.5)

    def test_tabulate(self):
        cdf = EmpiricalCDF.from_sample([1.0, 2.0, 3.0, 4.0])
        table = cdf.tabulate([2.0, 3.0])
        assert table == ((2.0, 0.5), (3.0, 0.75))

    def test_input_not_mutated_and_sorted_internally(self):
        sample = np.array([3.0, 1.0, 2.0])
        cdf = EmpiricalCDF(sample)
        assert list(cdf.sorted_values) == [1.0, 2.0, 3.0]
        assert list(sample) == [3.0, 1.0, 2.0]

    @pytest.mark.parametrize("bad", [[], [float("nan")], [[1.0, 2.0]]])
    def test_invalid_samples(self, bad):
        with pytest.raises(TraceError):
            EmpiricalCDF.from_sample(np.array(bad))
