"""Tests for the burstiness analysis (Figs. 2-5)."""

import numpy as np
import pytest

from repro.analysis.burstiness import (
    analyze_burstiness,
    server_cov,
    server_peak_to_average,
)
from repro.exceptions import TraceError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def spiky_trace():
    # 23 hours at 0.1, one hour at 0.9 over 2 days.
    util = np.full(48, 0.1)
    util[10] = 0.9
    util[34] = 0.9
    memory = np.full(48, 2.0)
    return make_server_trace("spiky", util, memory, cpu_rpe2=1000.0)


class TestServerMetrics:
    def test_p2a_1h(self, spiky_trace):
        expected = 0.9 / np.mean(spiky_trace.cpu_util.values)
        assert server_peak_to_average(spiky_trace, "cpu", 1.0) == (
            pytest.approx(expected)
        )

    def test_p2a_decreases_with_interval(self, spiky_trace):
        p2a_1 = server_peak_to_average(spiky_trace, "cpu", 1.0)
        p2a_2 = server_peak_to_average(spiky_trace, "cpu", 2.0)
        p2a_4 = server_peak_to_average(spiky_trace, "cpu", 4.0)
        assert p2a_1 > p2a_2 > p2a_4

    def test_flat_memory_p2a_is_one(self, spiky_trace):
        assert server_peak_to_average(spiky_trace, "memory", 1.0) == 1.0

    def test_cov_flat_memory_zero(self, spiky_trace):
        assert server_cov(spiky_trace, "memory") == 0.0

    def test_unknown_resource(self, spiky_trace):
        with pytest.raises(TraceError, match="resource"):
            server_peak_to_average(spiky_trace, "disk", 1.0)

    def test_misaligned_interval(self, spiky_trace):
        with pytest.raises(TraceError, match="align"):
            server_peak_to_average(spiky_trace, "cpu", 1.5)


class TestAnalyzeBurstiness:
    def test_report_structure(self, flat_trace_set):
        report = analyze_burstiness(flat_trace_set)
        assert set(report.cov) == {"cpu", "memory"}
        assert ("cpu", 1.0) in report.peak_to_average
        assert ("memory", 4.0) in report.peak_to_average
        assert len(report.cov["cpu"]) == len(flat_trace_set)

    def test_flat_set_not_bursty(self, flat_trace_set):
        report = analyze_burstiness(flat_trace_set)
        assert report.median_p2a("cpu", 1.0) == 1.0
        assert report.fraction_p2a_above("cpu", 1.0, 1.5) == 0.0
        assert report.cov["cpu"].median == 0.0

    def test_empty_set_rejected(self):
        with pytest.raises(TraceError, match="empty"):
            analyze_burstiness(TraceSet(name="none"))

    def test_generated_set_cpu_burstier_than_memory(self, generated_trace_set):
        report = analyze_burstiness(generated_trace_set)
        assert (
            report.median_p2a("cpu", 1.0)
            > report.median_p2a("memory", 1.0)
        )
        assert (
            report.cov["cpu"].median > report.cov["memory"].median
        )
