"""Tests for the CPU:memory resource-ratio analysis (Fig. 6)."""

import numpy as np
import pytest

from repro.analysis.resource_ratio import (
    REFERENCE_RATIO,
    analyze_resource_ratio,
    resource_ratio_series,
)
from repro.exceptions import TraceError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _set_with_ratio(cpu_util, memory_gb, cpu_rpe2=1000.0):
    ts = TraceSet(name="ratio")
    ts.add(
        make_server_trace("a", cpu_util, memory_gb, cpu_rpe2=cpu_rpe2)
    )
    return ts


class TestReferenceRatio:
    def test_anchor_value(self):
        assert REFERENCE_RATIO == pytest.approx(160.0)


class TestResourceRatioSeries:
    def test_constant_demand(self):
        ts = _set_with_ratio([0.5] * 4, [2.0] * 4)
        series = resource_ratio_series(ts, interval_hours=2.0)
        # 0.5 * 1000 RPE2 / 2 GB = 250 per interval.
        assert np.allclose(series, 250.0)
        assert series.shape == (2,)

    def test_interval_uses_peak_sizing(self):
        # CPU spikes in hour 1; the 2 h interval must provision its peak.
        ts = _set_with_ratio([0.2, 0.8], [2.0, 2.0])
        series = resource_ratio_series(ts, interval_hours=2.0)
        assert series[0] == pytest.approx(0.8 * 1000 / 2.0)

    def test_misaligned_interval_rejected(self):
        ts = _set_with_ratio([0.5] * 4, [2.0] * 4)
        with pytest.raises(TraceError, match="align"):
            resource_ratio_series(ts, interval_hours=1.5)


class TestAnalyzeResourceRatio:
    def test_memory_constrained_classification(self):
        # Ratio 250 > 160: CPU-constrained all the time.
        cpu_bound = analyze_resource_ratio(
            _set_with_ratio([0.5] * 4, [2.0] * 4), interval_hours=2.0
        )
        assert cpu_bound.fraction_memory_constrained == 0.0
        assert cpu_bound.fraction_cpu_constrained == 1.0

        # Ratio 50 < 160: memory-constrained all the time.
        memory_bound = analyze_resource_ratio(
            _set_with_ratio([0.5] * 4, [10.0] * 4), interval_hours=2.0
        )
        assert memory_bound.fraction_memory_constrained == 1.0

    def test_custom_reference(self):
        report = analyze_resource_ratio(
            _set_with_ratio([0.5] * 4, [2.0] * 4),
            interval_hours=2.0,
            reference_ratio=300.0,
        )
        assert report.fraction_memory_constrained == 1.0

    def test_median_ratio(self):
        report = analyze_resource_ratio(
            _set_with_ratio([0.5] * 4, [2.0] * 4), interval_hours=1.0
        )
        assert report.median_ratio == pytest.approx(250.0)
