"""Tests for seasonality detection."""

import numpy as np
import pytest

from repro.analysis.seasonality import (
    DIURNAL_LAG,
    WEEKLY_LAG,
    periodic_strength,
    seasonality_profile,
)
from repro.exceptions import TraceError


def _diurnal_series(days=14, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    hours = np.arange(days * 24)
    series = 1.0 + np.sin(2 * np.pi * hours / 24)
    return series + noise * rng.standard_normal(series.size) + 2.0


class TestPeriodicStrength:
    def test_pure_diurnal_is_strongly_periodic(self):
        assert periodic_strength(_diurnal_series(), DIURNAL_LAG) > 0.95

    def test_white_noise_is_aperiodic(self):
        rng = np.random.default_rng(1)
        series = rng.random(24 * 14)
        assert periodic_strength(series, DIURNAL_LAG) < 0.2

    def test_noise_weakens_periodicity(self):
        clean = periodic_strength(_diurnal_series(noise=0.0), DIURNAL_LAG)
        noisy = periodic_strength(_diurnal_series(noise=1.5), DIURNAL_LAG)
        assert noisy < clean

    def test_constant_series_scores_zero(self):
        assert periodic_strength(np.full(100, 3.0), 24) == 0.0

    def test_negative_autocorrelation_clipped(self):
        # Period-2 alternation is anti-correlated at odd lags.
        series = np.tile([0.0, 1.0], 100)
        assert periodic_strength(series, 1) == 0.0

    def test_short_series_rejected(self):
        with pytest.raises(TraceError, match="at least"):
            periodic_strength(np.ones(30), 24)

    def test_bad_lag_rejected(self):
        with pytest.raises(TraceError):
            periodic_strength(np.ones(100), 0)


class TestSeasonalityProfile:
    def test_diurnal_label(self):
        profile = seasonality_profile("vm", _diurnal_series())
        assert profile.label == "diurnal"
        assert profile.diurnal_strength > 0.9

    def test_weekly_label(self):
        # Flat weekdays, quiet weekends, no intra-day cycle.
        weeks = 4
        pattern = np.concatenate(
            [np.full(5 * 24, 2.0), np.full(2 * 24, 0.5)]
        )
        series = np.tile(pattern, weeks)
        rng = np.random.default_rng(2)
        series = series + 0.05 * rng.standard_normal(series.size)
        profile = seasonality_profile("vm", series)
        assert profile.weekly_strength > 0.8
        # Daily lag also correlates within weekdays, so only assert the
        # label when diurnal does not dominate.
        assert profile.label in ("weekly", "diurnal")

    def test_aperiodic_label(self):
        rng = np.random.default_rng(3)
        profile = seasonality_profile("vm", rng.random(24 * 15) + 0.5)
        assert profile.label == "aperiodic"

    def test_short_trace_skips_weekly(self):
        profile = seasonality_profile("vm", _diurnal_series(days=7))
        assert profile.weekly_strength == 0.0
