"""Tests for dynamic-placement candidate scoring (Bobroff-style)."""

import numpy as np
import pytest

from repro.analysis.candidates import rank_candidates, score_candidate
from repro.exceptions import TraceError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _diurnal_bursty(vm_id, days=14, base=0.05, peak=0.8):
    hours = days * 24
    util = np.full(hours, base)
    for day in range(days):
        util[day * 24 + 12] = peak  # same hour every day: predictable
        util[day * 24 + 13] = peak * 0.8
    return make_server_trace(vm_id, util, np.full(hours, 1.0))


def _flat(vm_id, days=14, level=0.3):
    hours = days * 24
    return make_server_trace(
        vm_id, np.full(hours, level), np.full(hours, 1.0)
    )


def _random_spiky(vm_id, days=14, seed=0):
    rng = np.random.default_rng(seed)
    hours = days * 24
    util = np.full(hours, 0.05)
    util[rng.choice(hours, size=10, replace=False)] = 0.9
    return make_server_trace(vm_id, util, np.full(hours, 1.0))


class TestScoreCandidate:
    def test_predictable_bursty_server_is_good(self):
        score = score_candidate(_diurnal_bursty("good"))
        assert score.is_good_candidate
        assert score.reclaimable_fraction > 0.5
        assert score.predictability > 0.5

    def test_flat_server_has_nothing_to_reclaim(self):
        score = score_candidate(_flat("flat"))
        assert score.reclaimable_fraction == pytest.approx(0.0)
        assert not score.is_good_candidate

    def test_unpredictable_spikes_are_poor_candidates(self):
        # Big reclaimable gap, but no periodic structure to act on.
        score = score_candidate(_random_spiky("spiky"))
        assert score.reclaimable_fraction > 0.5
        assert score.predictability < 0.4
        assert not score.is_good_candidate

    def test_zero_demand_server(self):
        # All-zero CPU cannot gain anything; must not divide by zero.
        hours = 14 * 24
        trace = make_server_trace(
            "idle", np.zeros(hours) + 0.0, np.full(hours, 1.0)
        )
        score = score_candidate(trace)
        assert score.score == 0.0

    def test_percentile_validation(self):
        with pytest.raises(TraceError):
            score_candidate(_flat("x"), body_percentile=100.0)


class TestRankCandidates:
    def test_ordering(self):
        ts = TraceSet(name="rank")
        ts.add(_flat("flat"))
        ts.add(_diurnal_bursty("good"))
        ts.add(_random_spiky("spiky"))
        ranked = rank_candidates(ts)
        assert ranked[0].vm_id == "good"
        assert ranked[-1].vm_id == "flat"

    def test_every_server_scored(self, generated_trace_set):
        ranked = rank_candidates(generated_trace_set)
        assert {s.vm_id for s in ranked} == set(generated_trace_set.vm_ids)

    def test_scores_monotone(self, generated_trace_set):
        ranked = rank_candidates(generated_trace_set)
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)
