"""Tests for the demand statistics primitives."""

import numpy as np
import pytest

from repro.analysis.statistics import (
    SIZING_MAX,
    SIZING_MEAN,
    coefficient_of_variation,
    interval_demand,
    peak_to_average,
)
from repro.exceptions import TraceError


class TestIntervalDemand:
    def test_max_sizing_takes_window_peaks(self):
        values = np.array([1.0, 3.0, 2.0, 5.0, 0.0, 1.0])
        assert list(interval_demand(values, 2)) == [3.0, 5.0, 1.0]

    def test_mean_sizing(self):
        values = np.array([1.0, 3.0, 2.0, 4.0])
        assert list(interval_demand(values, 2, SIZING_MEAN)) == [2.0, 3.0]

    def test_custom_sizing_function(self):
        values = np.arange(8, dtype=float)
        p50 = interval_demand(values, 4, lambda w: float(np.median(w)))
        assert list(p50) == [1.5, 5.5]

    def test_interval_of_one_is_identity(self):
        values = np.array([2.0, 1.0, 4.0])
        assert list(interval_demand(values, 1)) == [2.0, 1.0, 4.0]

    def test_misaligned_length_rejected(self):
        with pytest.raises(TraceError, match="multiple"):
            interval_demand(np.ones(5), 2)

    def test_longer_intervals_reduce_p2a(self):
        # The Fig. 2 trend: coarser consolidation intervals raise the
        # average of the interval-demand series, lowering the ratio.
        rng = np.random.default_rng(0)
        values = rng.lognormal(0, 1.0, size=720)
        ratios = [
            peak_to_average(interval_demand(values, k)) for k in (1, 2, 4)
        ]
        assert ratios[0] >= ratios[1] >= ratios[2]


class TestPeakToAverage:
    def test_flat_series_is_one(self):
        assert peak_to_average(np.full(10, 3.0)) == 1.0

    def test_all_zero_series_is_one(self):
        assert peak_to_average(np.zeros(5)) == 1.0

    def test_known_value(self):
        assert peak_to_average(np.array([1.0, 1.0, 4.0])) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            peak_to_average(np.array([]))


class TestCoV:
    def test_flat_series_is_zero(self):
        assert coefficient_of_variation(np.full(8, 2.0)) == 0.0

    def test_all_zero_series_is_zero(self):
        assert coefficient_of_variation(np.zeros(4)) == 0.0

    def test_known_value(self):
        values = np.array([0.0, 2.0])
        assert coefficient_of_variation(values) == pytest.approx(1.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        values = rng.random(1000) + 0.1
        assert coefficient_of_variation(values) == pytest.approx(
            coefficient_of_variation(values * 7.3)
        )
