"""Tests for trace archive (de)serialization."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.io import load_trace_set, save_trace_set
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def trace_set():
    ts = TraceSet(name="archive-test")
    ts.add(make_server_trace("a", [0.1, 0.5, 0.2], [1.0, 1.5, 1.2]))
    ts.add(make_server_trace("b", [0.3, 0.1, 0.4], [2.0, 2.5, 2.2]))
    return ts


class TestRoundTrip:
    def test_round_trip_preserves_everything(self, trace_set, tmp_path):
        path = save_trace_set(trace_set, tmp_path / "traces.npz")
        loaded = load_trace_set(path)
        assert loaded.name == trace_set.name
        assert loaded.vm_ids == trace_set.vm_ids
        assert loaded.interval_hours == trace_set.interval_hours
        for original, restored in zip(trace_set, loaded):
            assert np.allclose(
                original.cpu_util.values, restored.cpu_util.values
            )
            assert np.allclose(
                original.memory_gb.values, restored.memory_gb.values
            )
            assert restored.source_spec == original.source_spec
            assert restored.vm.workload_class == original.vm.workload_class
            assert dict(restored.vm.labels) == dict(original.vm.labels)

    def test_extension_appended(self, trace_set, tmp_path):
        path = save_trace_set(trace_set, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="empty"):
            save_trace_set(TraceSet(name="empty"), tmp_path / "x.npz")


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace_set(tmp_path / "nope.npz")

    def test_wrong_version_rejected(self, trace_set, tmp_path):
        import json

        path = save_trace_set(trace_set, tmp_path / "traces.npz")
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            cpu, mem = archive["cpu_util"], archive["memory_gb"]
        meta["format_version"] = 999
        np.savez(
            path,
            cpu_util=cpu,
            memory_gb=mem,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="version"):
            load_trace_set(path)

    def test_truncated_archive_rejected(self, trace_set, tmp_path):
        import json

        path = save_trace_set(trace_set, tmp_path / "traces.npz")
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            cpu = archive["cpu_util"]
        # Drop a matrix row but keep both server records.
        np.savez(
            path,
            cpu_util=cpu[:1],
            memory_gb=cpu[:1],
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(TraceError, match="do not match"):
            load_trace_set(path)
