"""Property suite for the appendable :class:`RollingTraceStore`.

Three contracts, each stated as a property over random append
sequences (hypothesis when available, plus a seeded stdlib sweep that
always runs):

* **Append-then-window == rebuild-from-scratch** — any sequence of
  appends followed by a window read equals one bulk append of the
  concatenated columns, including the derived ``cpu_rpe2`` matrix.
* **Zero-copy, immutable views** — snapshots are read-only NumPy views
  of the live buffers and never change after they are handed out, even
  across appends and compactions.
* **Trailing-column-only invalidation** — an append derives ``cpu_rpe2``
  for the new columns only; previously derived columns are not
  recomputed (pinned by poking the private buffer).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.rolling import RollingTraceStore
from repro.workloads.store import TraceStore

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False


def _make_store(n_vms: int, retention_points: int) -> RollingTraceStore:
    return RollingTraceStore(
        [f"vm{i}" for i in range(n_vms)],
        [100.0 * (i + 1) for i in range(n_vms)],
        interval_hours=1.0,
        retention_points=retention_points,
    )


def _random_chunks(
    rng: random.Random, n_vms: int, chunk_sizes: list
) -> list:
    chunks = []
    for size in chunk_sizes:
        cpu = np.array(
            [
                [rng.uniform(0.0, 1.0) for _ in range(size)]
                for _ in range(n_vms)
            ]
        )
        mem = np.array(
            [
                [rng.uniform(0.1, 16.0) for _ in range(size)]
                for _ in range(n_vms)
            ]
        )
        chunks.append((cpu, mem))
    return chunks


def _check_append_equals_rebuild(
    n_vms: int, retention_points: int, chunk_sizes: list, seed: int
) -> None:
    rng = random.Random(seed)
    chunks = _random_chunks(rng, n_vms, chunk_sizes)

    incremental = _make_store(n_vms, retention_points)
    for cpu, mem in chunks:
        incremental.append_samples(cpu, mem)

    all_cpu = np.concatenate([c for c, _ in chunks], axis=1)
    all_mem = np.concatenate([m for _, m in chunks], axis=1)
    bulk = _make_store(n_vms, retention_points)
    bulk.append_samples(all_cpu, all_mem)

    assert incremental.n_points == bulk.n_points
    assert incremental.total_points == bulk.total_points == all_cpu.shape[1]
    got = incremental.view()
    want = bulk.view()
    np.testing.assert_array_equal(got.cpu_util, want.cpu_util)
    np.testing.assert_array_equal(got.memory_gb, want.memory_gb)
    # Derived matrix must match exactly despite trailing-only derivation.
    np.testing.assert_array_equal(got.cpu_rpe2, want.cpu_rpe2)
    # And both must equal the definition.
    capacity = np.array([100.0 * (i + 1) for i in range(n_vms)])[:, None]
    tail = all_cpu[:, -incremental.n_points :]
    np.testing.assert_array_equal(got.cpu_rpe2, tail * capacity)


class TestAppendEqualsRebuild:
    def test_seeded_sweep(self):
        rng = random.Random(20260808)
        for _ in range(25):
            n_vms = rng.randint(1, 5)
            retention = rng.randint(3, 40)
            n_chunks = rng.randint(1, 8)
            sizes = [rng.randint(1, 17) for _ in range(n_chunks)]
            _check_append_equals_rebuild(
                n_vms, retention, sizes, rng.randint(0, 10_000)
            )

    if HAVE_HYPOTHESIS:

        @settings(max_examples=50, deadline=None)
        @given(
            n_vms=st.integers(1, 4),
            retention=st.integers(2, 30),
            sizes=st.lists(st.integers(1, 12), min_size=1, max_size=6),
            seed=st.integers(0, 2**20),
        )
        def test_hypothesis(self, n_vms, retention, sizes, seed):
            _check_append_equals_rebuild(n_vms, retention, sizes, seed)

    def test_oversized_append_keeps_trailing_window(self):
        store = _make_store(2, 5)
        cpu = np.linspace(0.0, 1.0, 24).reshape(2, 12)
        mem = np.ones((2, 12))
        store.append_samples(cpu, mem)
        assert store.n_points == 5
        assert store.total_points == 12
        np.testing.assert_array_equal(
            store.view().cpu_util, cpu[:, -5:]
        )


class TestViews:
    def test_views_are_zero_copy_and_read_only(self):
        store = _make_store(3, 32)
        store.append_samples(np.full((3, 8), 0.5), np.full((3, 8), 2.0))
        view = store.view()
        assert isinstance(view, TraceStore)
        # Zero-copy: the snapshot aliases the live buffer.
        assert np.shares_memory(view.cpu_util, store._cpu_util)
        for matrix in (view.cpu_util, view.cpu_rpe2, view.memory_gb):
            assert not matrix.flags.writeable
            with pytest.raises(ValueError):
                matrix[0, 0] = 9.9

    def test_snapshot_stable_across_appends_and_compactions(self):
        store = _make_store(2, 6)
        rng = random.Random(7)
        store.append_samples(
            np.full((2, 4), 0.25), np.full((2, 4), 1.0)
        )
        snap = store.view()
        frozen_cpu = snap.cpu_util.copy()
        frozen_rpe2 = snap.cpu_rpe2.copy()
        frozen_mem = snap.memory_gb.copy()
        # Push far past retention so compaction definitely runs.
        for _ in range(12):
            k = rng.randint(1, 5)
            store.append_samples(
                np.full((2, k), rng.random()), np.full((2, k), 2.0)
            )
        assert store.n_compactions >= 1
        np.testing.assert_array_equal(snap.cpu_util, frozen_cpu)
        np.testing.assert_array_equal(snap.cpu_rpe2, frozen_rpe2)
        np.testing.assert_array_equal(snap.memory_gb, frozen_mem)

    def test_rolling_view_window_selection(self):
        store = _make_store(1, 24)
        cpu = np.arange(10, dtype=float)[None, :] / 10.0
        store.append_samples(cpu, np.ones((1, 10)))
        window = store.rolling_view(4.0)
        np.testing.assert_array_equal(
            window.cpu_util, cpu[:, -4:]
        )
        assert window.n_points == 4

    def test_rolling_view_rejects_misaligned_or_oversized(self):
        store = _make_store(1, 24)
        store.append_samples(np.ones((1, 5)) * 0.5, np.ones((1, 5)))
        with pytest.raises(TraceError):
            store.rolling_view(2.5)
        with pytest.raises(TraceError):
            store.rolling_view(6.0)
        with pytest.raises(TraceError):
            store.rolling_view(0.0)


class TestTrailingInvalidation:
    def test_append_does_not_recompute_existing_columns(self):
        store = _make_store(2, 32)
        store.append_samples(np.full((2, 3), 0.5), np.ones((2, 3)))
        # Poison the already-derived columns; a correct implementation
        # never rewrites them on append.
        store._cpu_rpe2[:, :3] = -123.0
        store.append_samples(np.full((2, 2), 0.5), np.ones((2, 2)))
        np.testing.assert_array_equal(
            store._cpu_rpe2[:, :3], np.full((2, 3), -123.0)
        )
        # The new columns are derived normally.
        capacity = np.array([100.0, 200.0])[:, None]
        np.testing.assert_array_equal(
            store._cpu_rpe2[:, 3:5], 0.5 * capacity * np.ones((2, 2))
        )

    def test_bounded_buffer(self):
        store = _make_store(1, 8)
        for i in range(100):
            store.append_samples(
                np.array([[i / 100.0]]), np.array([[1.0]])
            )
        assert store.buffer_points <= 16
        assert store.n_points == 8
        assert store.total_points == 100
        # Retained tail is the most recent 8 samples.
        np.testing.assert_array_equal(
            store.view().cpu_util[0],
            np.arange(92, 100, dtype=float) / 100.0,
        )


class TestValidation:
    def test_rejects_bad_samples(self):
        store = _make_store(2, 8)
        good = np.ones((2, 1))
        with pytest.raises(TraceError):
            store.append_samples(np.full((2, 1), np.nan), good)
        with pytest.raises(TraceError):
            store.append_samples(np.full((2, 1), -0.1), good)
        with pytest.raises(TraceError):
            store.append_samples(np.ones((3, 1)), good)
        with pytest.raises(TraceError):
            store.append_samples(np.ones((2, 2)), good)
        # Nothing was ingested by the failed attempts.
        assert store.n_points == 0

    def test_constructor_validation(self):
        with pytest.raises(TraceError):
            RollingTraceStore([], [])
        with pytest.raises(TraceError):
            RollingTraceStore(["a", "a"], [1.0, 1.0])
        with pytest.raises(TraceError):
            RollingTraceStore(["a"], [0.0])
        with pytest.raises(TraceError):
            RollingTraceStore(["a"], [1.0], retention_points=0)

    def test_empty_store_queries_raise(self):
        store = _make_store(1, 8)
        with pytest.raises(TraceError):
            store.view()
        with pytest.raises(TraceError):
            store.last_cpu_rpe2()
        with pytest.raises(TraceError):
            store.last_cpu_util()
        with pytest.raises(TraceError):
            store.peak_window(4)

    def test_peak_window(self):
        store = _make_store(1, 16)
        cpu = np.array([[0.1, 0.9, 0.3, 0.5]])
        mem = np.array([[4.0, 1.0, 2.0, 3.0]])
        store.append_samples(cpu, mem)
        peak_cpu, peak_mem = store.peak_window(2)
        assert peak_cpu[0] == 0.5 * 100.0
        assert peak_mem[0] == 3.0
        peak_cpu, peak_mem = store.peak_window(100)
        assert peak_cpu[0] == 0.9 * 100.0
        assert peak_mem[0] == 4.0
