"""Unit proofs for the array engine's fast seeding and draw kernels.

The engine trusts nothing at runtime — both fast paths verify
themselves against the numpy reference constructors before the first
use and fall back to bit-identical python otherwise.  These tests pin
the pieces of that contract that the end-to-end equivalence suite
exercises only indirectly: the batched SeedSequence/PCG64 hashes, the
state-install round trip, and the compiled kernel's availability probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.fastdraw import make_fast_drawer
from repro.workloads.fastseed import (
    FastSeeder,
    batched_pcg64_state_words,
    make_fast_seeder,
    seedseq_state_words,
)


@pytest.mark.parametrize("seed", [0, 1, 11, 2**63 + 12345])
def test_seedseq_state_words_match_reference(seed):
    indices = np.array([0, 1, 2, 7, 40001], dtype=np.uint64)
    words = seedseq_state_words(seed, indices)
    assert words is not None
    assert words.shape == (indices.size, 8)
    for row, index in enumerate(indices):
        reference = np.random.SeedSequence(
            seed, spawn_key=(int(index),)
        ).generate_state(8, np.uint32)
        np.testing.assert_array_equal(words[row], reference)


@pytest.mark.parametrize("seed", [3, 999])
def test_batched_pcg64_states_match_reference(seed):
    arrays = batched_pcg64_state_words(seed, np.arange(6, dtype=np.uint64))
    assert arrays is not None
    state_lo, state_hi, inc_lo, inc_hi = arrays
    for i in range(6):
        reference = np.random.PCG64(
            np.random.SeedSequence(seed, spawn_key=(i,))
        ).state["state"]
        expected_state = reference["state"]
        expected_inc = reference["inc"]
        got_state = (int(state_hi[i]) << 64) | int(state_lo[i])
        got_inc = (int(inc_hi[i]) << 64) | int(inc_lo[i])
        assert got_state == expected_state
        assert got_inc == expected_inc


def test_fast_seeder_install_replays_reference_draws():
    seeder = make_fast_seeder()
    assert seeder is not None, "fast seeder must verify on this platform"
    arrays = seeder.seeded_state_arrays(21, 5, 8)
    assert arrays is not None
    for offset, index in enumerate(range(5, 8)):
        seeder.install(
            int(arrays[0][offset]),
            int(arrays[1][offset]),
            int(arrays[2][offset]),
            int(arrays[3][offset]),
        )
        reference = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(21, spawn_key=(index,)))
        )
        np.testing.assert_array_equal(
            seeder.generator.standard_normal(5), reference.standard_normal(5)
        )
        assert int(seeder.generator.integers(0, 10**9)) == int(
            reference.integers(0, 10**9)
        )


def test_fast_seeder_save_restore_round_trip():
    seeder = make_fast_seeder()
    assert seeder is not None
    snapshot = seeder.save()
    before = seeder.generator.standard_normal(4)
    seeder.restore(snapshot)
    np.testing.assert_array_equal(
        before, seeder.generator.standard_normal(4)
    )


def test_fast_drawer_requires_seeder():
    assert make_fast_drawer(None) is None


def test_fast_drawer_filters_match_numpy():
    """When the compiled kernel is available its fused passes must match
    the numpy pass sequences bitwise (skipped where no toolchain)."""
    seeder = make_fast_seeder()
    drawer = make_fast_drawer(seeder)
    if drawer is None:
        pytest.skip("compiled draw kernel unavailable on this platform")
    rng = np.random.default_rng(7)
    util = rng.random((5, 48)) * 1.4
    rpe2 = np.empty_like(util)
    committed = np.empty_like(util)
    expected_util = np.clip(util, 0.002, 1.0)
    expected_rpe2 = expected_util * 52.0
    peaks = np.maximum(expected_util.max(axis=1), 1e-9)
    expected_committed = expected_util / peaks[:, None]
    candidate = util.copy()
    drawer.clip_scale_div(
        candidate,
        rpe2,
        committed,
        clip_low=0.002,
        clip_high=1.0,
        scale=52.0,
        peak_floor=1e-9,
    )
    np.testing.assert_array_equal(candidate, expected_util)
    np.testing.assert_array_equal(rpe2, expected_rpe2)
    np.testing.assert_array_equal(committed, expected_committed)


def test_fast_seeder_exposes_state_addresses():
    seeder = FastSeeder()
    words_address, flags_address = seeder.raw_addresses()
    assert words_address != 0
    assert flags_address != 0
