"""Tests for the statistical trace building blocks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads import models


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestCalendars:
    def test_hour_of_day_wraps(self):
        hod = models.hour_of_day(50, start_hour=22)
        assert hod[0] == 22
        assert hod[2] == 0
        assert hod.max() == 23

    def test_day_of_week_cycles(self):
        dow = models.day_of_week(24 * 8)
        assert dow[0] == 0
        assert dow[24 * 7] == 0
        assert set(dow) == set(range(7))


class TestDiurnalProfile:
    def test_peak_at_peak_hour(self):
        profile = models.diurnal_profile(24, peak_hour=14.0, amplitude=2.0)
        assert np.argmax(profile) == 14
        assert profile.max() == pytest.approx(3.0)

    def test_zero_amplitude_is_flat(self):
        profile = models.diurnal_profile(48, amplitude=0.0)
        assert np.allclose(profile, 1.0)

    def test_circular_distance(self):
        # Peak at 23:00 should spill into hour 0.
        profile = models.diurnal_profile(
            24, peak_hour=23.0, amplitude=1.0, width_hours=2.0
        )
        assert profile[0] > profile[12]


class TestWeeklyProfile:
    def test_weekend_dipped(self):
        profile = models.weekly_profile(24 * 7, weekend_factor=0.4)
        assert np.allclose(profile[: 24 * 5], 1.0)
        assert np.allclose(profile[24 * 5:], 0.4)


class TestLognormalNoise:
    def test_mean_approximately_one(self, rng):
        noise = models.lognormal_noise(200_000, 0.8, rng)
        assert noise.mean() == pytest.approx(1.0, rel=0.02)

    def test_sigma_zero_is_ones(self, rng):
        assert np.allclose(models.lognormal_noise(10, 0.0, rng), 1.0)

    def test_heavier_sigma_heavier_tail(self, rng):
        light = models.lognormal_noise(50_000, 0.3, rng)
        heavy = models.lognormal_noise(50_000, 1.2, rng)
        assert heavy.max() > light.max()


class TestAr1Noise:
    def test_stationary_variance(self, rng):
        phi, sigma = 0.8, 0.5
        series = models.ar1_noise(100_000, phi, sigma, rng)
        expected_std = sigma / np.sqrt(1 - phi**2)
        assert series.std() == pytest.approx(expected_std, rel=0.05)

    def test_autocorrelation_sign(self, rng):
        series = models.ar1_noise(50_000, 0.9, 0.3, rng)
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 == pytest.approx(0.9, abs=0.05)

    def test_invalid_phi(self, rng):
        with pytest.raises(ConfigurationError):
            models.ar1_noise(10, 1.0, 0.1, rng)


class TestParetoSpikes:
    def test_zero_rate_gives_zeros(self, rng):
        spikes = models.pareto_spikes(
            100, rate_per_hour=0.0, alpha=1.5, scale=0.1, max_spike=1.0,
            rng=rng,
        )
        assert not spikes.any()

    def test_spikes_bounded(self, rng):
        spikes = models.pareto_spikes(
            2000, rate_per_hour=0.1, alpha=1.2, scale=0.3, max_spike=0.7,
            rng=rng,
        )
        assert spikes.max() <= 0.7
        assert spikes.min() >= 0.0
        assert spikes.any()

    def test_spike_decay_within_duration(self, rng):
        # With duration forced to 1 there is no decay tail to check, so
        # use a longer duration and verify values never exceed the start.
        spikes = models.pareto_spikes(
            500, rate_per_hour=0.05, alpha=1.5, scale=0.5, max_spike=0.9,
            rng=rng, max_duration_hours=3,
        )
        assert spikes.max() <= 0.9


class TestScheduledJobs:
    def test_daily_schedule(self):
        load = models.scheduled_jobs(
            72, period_hours=24, start_hour=2, duration_hours=2, level=0.5
        )
        for day in range(3):
            assert load[day * 24 + 2] == 0.5
            assert load[day * 24 + 3] == 0.5
            assert load[day * 24 + 5] == 0.0

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigurationError, match="rng"):
            models.scheduled_jobs(
                24, period_hours=24, start_hour=2, duration_hours=1,
                level=0.5, jitter_hours=1,
            )

    def test_jitter_moves_but_preserves_level(self):
        rng = np.random.default_rng(3)
        load = models.scheduled_jobs(
            24 * 10, period_hours=24, start_hour=12, duration_hours=1,
            level=0.4, jitter_hours=2, rng=rng,
        )
        assert load.max() == pytest.approx(0.4)
        assert (load > 0).sum() >= 8  # roughly one slot per day


class TestEwmaSmooth:
    def test_alpha_one_is_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        assert np.allclose(models.ewma_smooth(values, 1.0), values)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(0)
        values = rng.random(1000)
        smoothed = models.ewma_smooth(values, 0.2)
        assert smoothed.std() < values.std()

    def test_preserves_constant(self):
        values = np.full(10, 3.0)
        assert np.allclose(models.ewma_smooth(values, 0.3), 3.0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            models.ewma_smooth(np.ones(3), 0.0)
