"""Columnar :class:`TraceStore` semantics: caching, views, immutability.

The store is the cached backing matrix behind every vectorized kernel,
so these tests pin its contract precisely: built once per
:class:`TraceSet`, invalidated by ``add``, propagated to ``window`` /
``subset`` children as zero-copy views (``np.shares_memory``), always
read-only, and bitwise equal to the per-trace arrays it was packed from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.workloads import TraceStore
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

N_HOURS = 48


def _trace(vm_id: str, seed: int, n_hours: int = N_HOURS) -> ServerTrace:
    rng = np.random.default_rng(seed)
    return ServerTrace(
        vm=VirtualMachine(vm_id=vm_id, memory_config_gb=16.0),
        source_spec=ServerSpec(cpu_rpe2=2000.0, memory_gb=16.0),
        cpu_util=ResourceTrace(
            values=rng.uniform(0.0, 1.0, size=n_hours), unit="fraction"
        ),
        memory_gb=ResourceTrace(
            values=rng.uniform(0.5, 16.0, size=n_hours), unit="GB"
        ),
    )


def _trace_set(n_vms: int = 5) -> TraceSet:
    traces = TraceSet(name="store-test")
    for i in range(n_vms):
        traces.add(_trace(f"vm{i:02d}", seed=i))
    return traces


class TestCaching:
    def test_store_is_cached(self) -> None:
        traces = _trace_set()
        assert traces.store is traces.store

    def test_add_invalidates_store(self) -> None:
        traces = _trace_set()
        first = traces.store
        traces.add(_trace("vm99", seed=99))
        rebuilt = traces.store
        assert rebuilt is not first
        assert rebuilt.n_servers == first.n_servers + 1
        assert rebuilt.vm_ids[-1] == "vm99"

    def test_empty_set_raises(self) -> None:
        with pytest.raises(TraceError):
            TraceSet(name="empty").store

    def test_matrix_queries_share_the_cached_store(self) -> None:
        traces = _trace_set()
        assert traces.cpu_rpe2_matrix() is traces.store.cpu_rpe2
        assert traces.cpu_util_matrix() is traces.store.cpu_util
        assert traces.memory_gb_matrix() is traces.store.memory_gb


class TestContents:
    def test_matrices_match_per_trace_arrays_bitwise(self) -> None:
        traces = _trace_set()
        store = traces.store
        for row, trace in enumerate(traces):
            assert np.array_equal(
                store.cpu_util[row], trace.cpu_util.values
            )
            assert np.array_equal(
                store.memory_gb[row], trace.memory_gb.values
            )
            assert np.array_equal(
                store.cpu_rpe2[row],
                trace.cpu_util.values * trace.source_spec.cpu_rpe2,
            )

    def test_row_of_maps_ids_to_rows(self) -> None:
        store = _trace_set().store
        for row, vm_id in enumerate(store.vm_ids):
            assert store.row_of(vm_id) == row
        with pytest.raises(TraceError):
            store.row_of("nope")

    def test_matrices_are_read_only(self) -> None:
        store = _trace_set().store
        for matrix in (store.cpu_util, store.cpu_rpe2, store.memory_gb):
            assert not matrix.flags.writeable
            with pytest.raises(ValueError):
                matrix[0, 0] = 1.0

    def test_aggregates_come_from_the_store(self) -> None:
        traces = _trace_set()
        store = traces.store
        assert np.array_equal(
            traces.aggregate_cpu_rpe2(), store.cpu_rpe2.sum(axis=0)
        )
        assert np.array_equal(
            traces.per_vm_peak_cpu_rpe2(), store.cpu_rpe2.max(axis=1)
        )
        assert traces.mean_cpu_utilization() == pytest.approx(
            float(np.mean([t.cpu_util.values.mean() for t in traces]))
        )


class TestZeroCopyWindows:
    def test_store_window_is_a_view(self) -> None:
        store = _trace_set().store
        sliced = store.window(8, 32)
        assert sliced.n_points == 24
        assert np.shares_memory(sliced.cpu_rpe2, store.cpu_rpe2)
        assert np.shares_memory(sliced.memory_gb, store.memory_gb)
        assert not sliced.cpu_rpe2.flags.writeable
        assert np.array_equal(sliced.cpu_util, store.cpu_util[:, 8:32])

    def test_traceset_window_propagates_built_store(self) -> None:
        traces = _trace_set()
        parent_store = traces.store
        child = traces.window(8.0, 32.0)
        assert np.shares_memory(
            child.store.cpu_rpe2, parent_store.cpu_rpe2
        )

    def test_traceset_window_without_built_store_builds_lazily(self) -> None:
        traces = _trace_set()
        child = traces.window(0.0, 24.0)
        assert child.store.n_points == 24

    def test_resource_trace_window_is_a_view(self) -> None:
        """Satellite: read-only trace arrays are adopted without copying,
        so windowing a frozen trace never duplicates demand data."""
        trace = ResourceTrace(values=np.arange(24.0), unit="rpe2")
        view = trace.window(6.0, 18.0)
        assert np.shares_memory(view.values, trace.values)
        assert not view.values.flags.writeable

    def test_writable_input_is_still_copied(self) -> None:
        """A caller-held writable array must not alias the trace."""
        raw = np.ones(12)
        trace = ResourceTrace(values=raw, unit="fraction")
        raw[0] = 7.0
        assert trace.values[0] == 1.0

    def test_read_only_input_is_adopted(self) -> None:
        raw = np.ones(12)
        raw.flags.writeable = False
        trace = ResourceTrace(values=raw, unit="fraction")
        assert trace.values is raw


class TestSubset:
    def test_take_preserves_requested_order(self) -> None:
        store = _trace_set().store
        picked = store.take(["vm03", "vm00"])
        assert picked.vm_ids == ("vm03", "vm00")
        assert np.array_equal(picked.cpu_rpe2[0], store.cpu_rpe2[3])
        assert np.array_equal(picked.cpu_rpe2[1], store.cpu_rpe2[0])

    def test_take_unknown_vm_raises(self) -> None:
        with pytest.raises(TraceError):
            _trace_set().store.take(["vm00", "ghost"])

    def test_traceset_subset_propagates_built_store(self) -> None:
        traces = _trace_set()
        traces.store
        child = traces.subset(["vm02", "vm04"])
        assert child.store.vm_ids == ("vm02", "vm04")
        assert np.array_equal(
            child.store.memory_gb[0], traces.store.memory_gb[2]
        )

    def test_from_traces_rejects_empty(self) -> None:
        with pytest.raises(TraceError):
            TraceStore.from_traces([])
