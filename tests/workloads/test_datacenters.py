"""Tests for the four datacenter presets (Table 2)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.datacenters import (
    ALL_DATACENTERS,
    BANKING,
    generate_datacenter,
    get_datacenter_config,
)


class TestConfigLookup:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("banking", "banking"),
            ("A", "banking"),
            ("b", "airlines"),
            ("natres", "natural-resources"),
            ("Natural-Resources", "natural-resources"),
            ("d", "beverage"),
        ],
    )
    def test_aliases(self, key, expected):
        assert get_datacenter_config(key).key == expected

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown datacenter"):
            get_datacenter_config("retail")

    def test_paper_server_counts(self):
        counts = {c.key: c.server_count for c in ALL_DATACENTERS}
        assert counts == {
            "banking": 816,
            "airlines": 445,
            "natural-resources": 1390,
            "beverage": 722,
        }

    def test_web_fraction_ordering(self):
        # Paper §3.2: A has the highest web fraction, then D, B, C.
        fractions = {c.key: c.web_fraction for c in ALL_DATACENTERS}
        assert (
            fractions["banking"]
            > fractions["beverage"]
            > fractions["airlines"]
            > fractions["natural-resources"]
        )

    def test_group_weights_sum_to_one(self):
        for config in ALL_DATACENTERS:
            assert sum(g.weight for g in config.groups) == pytest.approx(1.0)


class TestGeneration:
    def test_full_scale_counts(self):
        # Do not generate full-scale traces here (slow); check the
        # apportionment arithmetic via a small scale instead.
        ts = generate_datacenter("banking", scale=0.1, days=2)
        assert len(ts) == round(816 * 0.1)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            generate_datacenter("banking", scale=0.0)
        with pytest.raises(ConfigurationError):
            generate_datacenter("banking", days=0)

    def test_deterministic_per_preset_seed(self):
        a = generate_datacenter("airlines", scale=0.05, days=3)
        b = generate_datacenter("airlines", scale=0.05, days=3)
        assert np.array_equal(
            a.cpu_rpe2_matrix(), b.cpu_rpe2_matrix()
        )

    def test_seed_override_changes_traces(self):
        a = generate_datacenter("airlines", scale=0.05, days=3)
        b = generate_datacenter("airlines", scale=0.05, days=3, seed=999)
        assert not np.array_equal(a.cpu_rpe2_matrix(), b.cpu_rpe2_matrix())

    def test_trace_length_matches_days(self):
        ts = generate_datacenter("beverage", scale=0.05, days=4)
        assert ts.n_points == 4 * 24

    def test_minimum_one_server_per_group(self):
        ts = generate_datacenter("banking", scale=0.001, days=1)
        assert len(ts) >= len(BANKING.groups)
