"""Vectorized flash-event ramp == per-offset reference, RNG stream too.

``_event_multiplier`` writes each event's decaying ramp as one
elementwise maximum over a slice.  Within one event the hit timestamps
are distinct, so the slice-maximum must reproduce the historical
per-offset ``max`` writes exactly — same participation draws, same
severities (RNG draw order unchanged), same multiplier bytes.
"""

from __future__ import annotations

import random

import numpy as np

from repro.workloads.generator import _event_multiplier


def _reference(events, n_hours, participation, rng):
    """The historical per-offset loop, retained verbatim as the oracle."""
    if not events or participation <= 0:
        return None
    multiplier = np.ones(n_hours)
    hit_any = False
    for start, duration, magnitude in events:
        if rng.random() >= participation:
            continue
        hit_any = True
        severity = magnitude * float(rng.uniform(0.5, 1.5))
        for offset in range(duration):
            t = start + offset
            if t >= n_hours:
                break
            decay = 1.0 - offset / duration
            multiplier[t] = max(multiplier[t], 1.0 + severity * decay)
    return multiplier if hit_any else None


def test_matches_reference_across_random_instances() -> None:
    master = random.Random("event-multiplier")
    for trial in range(200):
        n_hours = master.randint(1, 150)
        events = [
            (
                master.randint(0, n_hours + 20),
                master.randint(1, 48),
                master.uniform(0.1, 4.0),
            )
            for _ in range(master.randint(0, 6))
        ]
        participation = master.uniform(-0.2, 1.0)
        seed = master.randrange(2**31)
        vectorized = _event_multiplier(
            events, n_hours, participation, np.random.default_rng(seed)
        )
        reference = _reference(
            events, n_hours, participation, np.random.default_rng(seed)
        )
        if reference is None:
            assert vectorized is None, trial
        else:
            assert vectorized.tobytes() == reference.tobytes(), trial


def test_rng_stream_position_preserved() -> None:
    """Post-call RNG state matches the reference's: later draws align."""
    events = [(5, 10, 2.0), (80, 6, 1.0), (20, 30, 0.5)]
    rng_a = np.random.default_rng(99)
    rng_b = np.random.default_rng(99)
    _event_multiplier(events, 64, 0.7, rng_a)
    _reference(events, 64, 0.7, rng_b)
    assert rng_a.random() == rng_b.random()


def test_no_events_or_zero_participation_returns_none() -> None:
    rng = np.random.default_rng(0)
    assert _event_multiplier([], 24, 0.5, rng) is None
    assert _event_multiplier([(0, 2, 1.0)], 24, 0.0, rng) is None


def test_overlapping_events_take_elementwise_max() -> None:
    events = [(0, 8, 1.0), (2, 8, 3.0)]
    out = _event_multiplier(events, 12, 1.0, np.random.default_rng(3))
    ref = _reference(events, 12, 1.0, np.random.default_rng(3))
    assert out.tobytes() == ref.tobytes()
    assert out[2] >= 1.0 and out[8:10].min() >= 1.0


def test_event_starting_past_horizon_still_draws_severity() -> None:
    """An out-of-range event consumes RNG draws and sets hit_any."""
    events = [(100, 5, 2.0)]
    out = _event_multiplier(events, 24, 1.0, np.random.default_rng(1))
    ref = _reference(events, 24, 1.0, np.random.default_rng(1))
    assert out is not None and ref is not None
    assert out.tobytes() == ref.tobytes()
    assert np.all(out == 1.0)
