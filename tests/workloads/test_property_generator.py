"""Property-based tests for trace generation (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics.catalog import get_model
from repro.workloads.generator import (
    IDLE,
    SCHEDULED_BATCH,
    STEADY_BATCH,
    WEB_BURSTY,
    WEB_MODERATE,
    generate_server_trace,
)

profiles = st.sampled_from(
    [WEB_BURSTY, WEB_MODERATE, STEADY_BATCH, SCHEDULED_BATCH, IDLE]
)
models = st.sampled_from(
    ["rack-1u-small", "rack-1u-medium", "rack-2u-large"]
)


@given(
    profile=profiles,
    model_name=models,
    seed=st.integers(0, 2**31),
    days=st.integers(2, 10),
)
@settings(max_examples=40, deadline=None)
def test_generated_trace_invariants(profile, model_name, seed, days):
    model = get_model(model_name)
    trace = generate_server_trace(
        "vm",
        profile,
        model,
        days * 24,
        np.random.default_rng(seed),
    )
    cpu = trace.cpu_util.values
    memory = trace.memory_gb.values
    # Utilization is a valid fraction of the source box.
    assert cpu.min() > 0
    assert cpu.max() <= 1.0
    # Memory never exceeds the configured RAM and never hits zero.
    assert memory.min() > 0
    assert memory.max() <= model.memory_gb
    # Absolute CPU demand is consistent with the source capacity.
    assert np.allclose(trace.cpu_rpe2, cpu * model.cpu_rpe2)
    # Both traces share the clock.
    assert len(trace.cpu_util) == len(trace.memory_gb) == days * 24


@given(profile=profiles, seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_memory_never_burstier_than_cpu_plus_noise(profile, seed):
    # Observation 2 as a generator-level property: memory CoV stays
    # below CPU CoV for every class except pathological tiny samples.
    model = get_model("rack-1u-medium")
    trace = generate_server_trace(
        "vm", profile, model, 30 * 24, np.random.default_rng(seed)
    )
    cpu = trace.cpu_util.values
    memory = trace.memory_gb.values
    cpu_cov = cpu.std() / cpu.mean()
    memory_cov = memory.std() / memory.mean()
    assert memory_cov <= cpu_cov + 0.05
