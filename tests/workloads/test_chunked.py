"""Chunked, memory-mapped trace storage semantics.

The contract under test: a store written block by block and opened via
``np.memmap`` is *bit-identical* to the in-memory store built from the
same traces — across whole-matrix reads, column windows, row slices,
and subsets — while staying file-backed (nothing resident up front) and
read-only.  Plus the writer's safety rails: ordered complete writes or
no manifest at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.workloads.chunked import (
    ChunkedManifest,
    ChunkedTraceWriter,
    load_manifest,
    open_chunked_store,
    open_chunked_trace_set,
    vm_record,
    write_trace_set,
)
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

N_HOURS = 72


def _trace(vm_id: str, seed: int) -> ServerTrace:
    rng = np.random.default_rng(seed)
    return ServerTrace(
        vm=VirtualMachine(
            vm_id=vm_id,
            memory_config_gb=24.0,
            workload_class="web",
            labels={"tier": "gold"},
        ),
        source_spec=ServerSpec(cpu_rpe2=2400.0, memory_gb=32.0),
        cpu_util=ResourceTrace(
            values=rng.uniform(0.0, 1.0, size=N_HOURS), unit="fraction"
        ),
        memory_gb=ResourceTrace(
            values=rng.uniform(1.0, 24.0, size=N_HOURS), unit="GB"
        ),
    )


@pytest.fixture(scope="module")
def traces() -> TraceSet:
    trace_set = TraceSet(name="chunk-test")
    for index in range(13):
        trace_set.add(_trace(f"vm{index:02d}", seed=index))
    return trace_set


@pytest.fixture(scope="module")
def store_dir(traces, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chunk-store")
    # Odd block size so writes straddle block boundaries.
    write_trace_set(traces, directory, block_rows=5)
    return directory


class TestRoundTrip:
    def test_matrices_bit_identical(self, traces, store_dir) -> None:
        opened = open_chunked_store(store_dir)
        expected = traces.store
        assert opened.vm_ids == expected.vm_ids
        np.testing.assert_array_equal(opened.cpu_util, expected.cpu_util)
        np.testing.assert_array_equal(opened.cpu_rpe2, expected.cpu_rpe2)
        np.testing.assert_array_equal(opened.memory_gb, expected.memory_gb)

    def test_matrices_are_readonly_memmaps(self, store_dir) -> None:
        opened = open_chunked_store(store_dir)
        assert isinstance(opened.cpu_rpe2, np.memmap)
        assert not opened.cpu_rpe2.flags.writeable
        with pytest.raises(ValueError):
            opened.cpu_util[0, 0] = 1.0

    def test_window_equals_in_memory_window(self, traces, store_dir) -> None:
        opened = open_chunked_store(store_dir)
        expected = traces.store.window(24, 60)
        got = opened.window(24, 60)
        np.testing.assert_array_equal(got.cpu_rpe2, expected.cpu_rpe2)
        np.testing.assert_array_equal(got.memory_gb, expected.memory_gb)
        # Still a view of the file-backed buffer, not a copy.
        assert np.shares_memory(got.cpu_rpe2, opened.cpu_rpe2)

    def test_take_equals_in_memory_take(self, traces, store_dir) -> None:
        opened = open_chunked_store(store_dir)
        chosen = traces.vm_ids[3:9]
        expected = traces.store.take(chosen)
        got = opened.take(chosen)
        assert got.vm_ids == expected.vm_ids
        np.testing.assert_array_equal(got.cpu_rpe2, expected.cpu_rpe2)
        np.testing.assert_array_equal(got.cpu_util, expected.cpu_util)

    def test_rows_equals_in_memory_rows(self, traces, store_dir) -> None:
        opened = open_chunked_store(store_dir)
        expected = traces.store.rows(4, 11)
        got = opened.rows(4, 11)
        assert got.vm_ids == expected.vm_ids
        np.testing.assert_array_equal(got.memory_gb, expected.memory_gb)
        assert np.shares_memory(got.memory_gb, opened.memory_gb)


class TestTraceSetReconstruction:
    def test_full_set_matches_original(self, traces, store_dir) -> None:
        opened = open_chunked_trace_set(store_dir)
        assert opened.vm_ids == traces.vm_ids
        np.testing.assert_array_equal(
            opened.store.cpu_rpe2, traces.store.cpu_rpe2
        )
        for got, original in zip(opened, traces):
            assert got.vm == original.vm
            assert got.source_spec == original.source_spec

    def test_row_range_matches_subset(self, traces, store_dir) -> None:
        opened = open_chunked_trace_set(store_dir, start=2, stop=8)
        expected = traces.subset(traces.vm_ids[2:8])
        assert opened.vm_ids == expected.vm_ids
        np.testing.assert_array_equal(
            opened.store.cpu_rpe2, expected.store.cpu_rpe2
        )

    def test_vm_metadata_survives(self, store_dir) -> None:
        manifest = load_manifest(store_dir)
        assert isinstance(manifest, ChunkedManifest)
        assert manifest.n_servers == 13
        assert manifest.virtual_machine(0).workload_class == "web"
        assert manifest.source_spec(0).memory_gb == 32.0
        opened = open_chunked_trace_set(store_dir, start=0, stop=1)
        (trace,) = list(opened)
        assert trace.vm.workload_class == "web"
        assert trace.vm.labels == {"tier": "gold"}
        assert trace.source_spec.cpu_rpe2 == 2400.0

    def test_derived_cpu_rpe2_matches_write_time_product(
        self, store_dir
    ) -> None:
        opened = open_chunked_trace_set(store_dir)
        np.testing.assert_array_equal(
            opened.store.cpu_rpe2,
            np.asarray(opened.store.cpu_util) * 2400.0,
        )


class TestWriterSafety:
    def _writer(self, directory, n_servers=3, n_points=8):
        return ChunkedTraceWriter(
            directory, name="w", n_servers=n_servers, n_points=n_points
        )

    def _block(self, k, n_points=8):
        records = [
            vm_record(
                VirtualMachine(vm_id=f"b{i}", memory_config_gb=8.0),
                ServerSpec(cpu_rpe2=1000.0, memory_gb=16.0),
            )
            for i in range(k)
        ]
        return records, np.ones((k, n_points)), np.ones((k, n_points))

    def test_incomplete_store_refuses_to_close(self, tmp_path) -> None:
        writer = self._writer(tmp_path)
        writer.append_block(*self._block(2))
        with pytest.raises(TraceError, match="incomplete"):
            writer.close()

    def test_no_manifest_until_closed(self, tmp_path) -> None:
        writer = self._writer(tmp_path)
        with pytest.raises(TraceError, match="no chunked store"):
            load_manifest(tmp_path)
        writer.append_block(*self._block(3))
        writer.close()
        assert load_manifest(tmp_path).n_servers == 3

    def test_rejects_shape_mismatch(self, tmp_path) -> None:
        writer = self._writer(tmp_path)
        records, cpu, memory = self._block(2, n_points=5)
        with pytest.raises(TraceError, match="shape mismatch"):
            writer.append_block(records, cpu, memory)

    def test_rejects_overflow(self, tmp_path) -> None:
        writer = self._writer(tmp_path, n_servers=2)
        with pytest.raises(TraceError, match="overflows"):
            writer.append_block(*self._block(3))

    def test_rejects_append_after_close(self, tmp_path) -> None:
        writer = self._writer(tmp_path, n_servers=1)
        writer.append_block(*self._block(1))
        writer.close()
        with pytest.raises(TraceError, match="closed"):
            writer.append_block(*self._block(1))

    def test_rejects_bad_geometry(self, tmp_path) -> None:
        with pytest.raises(TraceError, match="positive dimensions"):
            self._writer(tmp_path, n_servers=0)
        with pytest.raises(TraceError, match="interval_hours"):
            ChunkedTraceWriter(
                tmp_path, name="w", n_servers=1, n_points=1, interval_hours=0.0
            )


class TestOpenValidation:
    def test_missing_matrix_file_detected(self, traces, tmp_path) -> None:
        write_trace_set(traces, tmp_path)
        (tmp_path / "memory_gb.npy").unlink()
        with pytest.raises(TraceError, match="missing matrix file"):
            open_chunked_store(tmp_path)

    def test_unsupported_format_version(self, traces, tmp_path) -> None:
        write_trace_set(traces, tmp_path)
        manifest = tmp_path / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"format": 1', '"format": 99'))
        with pytest.raises(TraceError, match="format"):
            load_manifest(tmp_path)


class TestGeneratedChunkedStore:
    """Streaming generation straight to disk (array engine blocks)."""

    def test_preset_streamed_store_matches_in_memory(self, tmp_path) -> None:
        from repro.workloads.datacenters import (
            generate_datacenter,
            generate_datacenter_chunked,
        )

        directory = generate_datacenter_chunked(
            "banking", tmp_path / "dc", scale=0.04, days=2, block_rows=6
        )
        disk = open_chunked_store(directory)
        memory = generate_datacenter("banking", scale=0.04, days=2).store
        assert disk.vm_ids == memory.vm_ids
        np.testing.assert_array_equal(
            np.asarray(disk.cpu_util), memory.cpu_util
        )
        np.testing.assert_array_equal(
            np.asarray(disk.cpu_rpe2), memory.cpu_rpe2
        )
        np.testing.assert_array_equal(
            np.asarray(disk.memory_gb), memory.memory_gb
        )

    def test_opened_rows_rebuild_vms(self, tmp_path) -> None:
        from repro.workloads.datacenters import generate_datacenter_chunked

        directory = generate_datacenter_chunked(
            "banking", tmp_path / "dc", scale=0.04, days=2
        )
        shard = open_chunked_trace_set(directory, start=3, stop=9)
        assert len(shard.traces) == 6
        for trace in shard.traces:
            assert trace.vm.memory_config_gb > 0
            assert trace.source_spec.cpu_rpe2 > 0
