"""Tests for trace data structures."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.trace import ResourceTrace, TraceSet
from tests.conftest import make_server_trace


class TestResourceTrace:
    def test_basic_statistics(self):
        trace = ResourceTrace(np.array([1.0, 3.0, 2.0]))
        assert trace.mean() == 2.0
        assert trace.peak() == 3.0
        assert len(trace) == 3
        assert trace.duration_hours == 3.0

    def test_values_are_immutable(self):
        trace = ResourceTrace(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            trace.values[0] = 5.0

    def test_window_slicing(self):
        trace = ResourceTrace(np.arange(10, dtype=float))
        window = trace.window(2, 5)
        assert list(window.values) == [2.0, 3.0, 4.0]
        assert window.interval_hours == trace.interval_hours

    def test_window_respects_interval(self):
        trace = ResourceTrace(np.arange(4, dtype=float), interval_hours=2.0)
        window = trace.window(2, 6)
        assert list(window.values) == [1.0, 2.0]

    def test_misaligned_window_rejected(self):
        trace = ResourceTrace(np.arange(4, dtype=float), interval_hours=2.0)
        with pytest.raises(TraceError, match="align"):
            trace.window(1, 3)

    def test_out_of_range_window_rejected(self):
        trace = ResourceTrace(np.arange(4, dtype=float))
        with pytest.raises(TraceError):
            trace.window(0, 5)
        with pytest.raises(TraceError):
            trace.window(3, 3)

    @pytest.mark.parametrize(
        "values",
        [[], [1.0, float("nan")], [1.0, float("inf")], [1.0, -0.5]],
    )
    def test_invalid_values_rejected(self, values):
        with pytest.raises(TraceError):
            ResourceTrace(np.array(values, dtype=float))

    def test_2d_rejected(self):
        with pytest.raises(TraceError):
            ResourceTrace(np.ones((2, 2)))

    def test_percentile(self):
        trace = ResourceTrace(np.arange(101, dtype=float))
        assert trace.percentile(90) == pytest.approx(90.0)
        with pytest.raises(TraceError):
            trace.percentile(101)


class TestServerTrace:
    def test_cpu_rpe2_uses_source_capacity(self):
        trace = make_server_trace(
            "vm", [0.5, 0.25], [1.0, 1.0], cpu_rpe2=2000.0
        )
        assert list(trace.cpu_rpe2) == [1000.0, 500.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError, match="points"):
            make_server_trace("vm", [0.5, 0.25], [1.0])

    def test_window_slices_both_resources(self):
        trace = make_server_trace("vm", [0.1, 0.2, 0.3], [1.0, 2.0, 3.0])
        window = trace.window(1, 3)
        assert list(window.cpu_util.values) == [0.2, 0.3]
        assert list(window.memory_gb.values) == [2.0, 3.0]


class TestTraceSet:
    def test_duplicate_vm_rejected(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("vm", [0.1], [1.0]))
        with pytest.raises(TraceError, match="duplicate"):
            ts.add(make_server_trace("vm", [0.2], [2.0]))

    def test_length_mismatch_rejected(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("a", [0.1, 0.2], [1.0, 1.0]))
        with pytest.raises(TraceError, match="length"):
            ts.add(make_server_trace("b", [0.1], [1.0]))

    def test_aggregates(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("a", [0.1, 0.2], [1.0, 2.0], cpu_rpe2=1000))
        ts.add(make_server_trace("b", [0.3, 0.4], [3.0, 4.0], cpu_rpe2=1000))
        assert list(ts.aggregate_cpu_rpe2()) == [400.0, 600.0]
        assert list(ts.aggregate_memory_gb()) == [4.0, 6.0]
        assert ts.cpu_rpe2_matrix().shape == (2, 2)

    def test_window_and_subset(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("a", [0.1, 0.2, 0.3], [1.0, 1.0, 1.0]))
        ts.add(make_server_trace("b", [0.2, 0.3, 0.4], [2.0, 2.0, 2.0]))
        window = ts.window(1, 3)
        assert window.n_points == 2
        subset = ts.subset(["b"])
        assert subset.vm_ids == ("b",)

    def test_unknown_vm_lookup(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("a", [0.1], [1.0]))
        with pytest.raises(TraceError, match="unknown"):
            ts.trace("zz")

    def test_empty_set_properties_raise(self):
        ts = TraceSet(name="t")
        with pytest.raises(TraceError, match="empty"):
            _ = ts.n_points

    def test_mean_cpu_utilization(self):
        ts = TraceSet(name="t")
        ts.add(make_server_trace("a", [0.1, 0.3], [1.0, 1.0]))
        ts.add(make_server_trace("b", [0.2, 0.4], [1.0, 1.0]))
        assert ts.mean_cpu_utilization() == pytest.approx(0.25)
