"""Tests for the Olio application scaling model (§4.1 aside)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.appmodel import OLIO_MODEL, AppResourceModel


class TestOlioReproduction:
    def test_paper_numbers(self):
        throughput, cpu, memory = OLIO_MODEL.scaling_factors(10, 60)
        assert throughput == pytest.approx(6.0)
        # "CPU demand increased from 0.18 core to 1.42 cores (7.9X)"
        assert cpu == pytest.approx(1.42 / 0.18, rel=1e-6)
        # "the memory demand only increased by 3X"
        assert memory == pytest.approx(3.0, rel=1e-6)

    def test_absolute_cpu_anchors(self):
        assert OLIO_MODEL.cpu_cores(10) == pytest.approx(0.18)
        assert OLIO_MODEL.cpu_cores(60) == pytest.approx(1.42, rel=1e-3)

    def test_cpu_superlinear_memory_sublinear(self):
        assert OLIO_MODEL.cpu_exponent > 1.0
        assert OLIO_MODEL.memory_exponent < 1.0

    def test_sweep_rows(self):
        rows = OLIO_MODEL.sweep([10, 20, 30])
        assert len(rows) == 3
        throughputs = [r[0] for r in rows]
        cpus = [r[1] for r in rows]
        memories = [r[2] for r in rows]
        assert throughputs == [10, 20, 30]
        assert cpus == sorted(cpus)
        assert memories == sorted(memories)


class TestValidation:
    def test_nonpositive_throughput(self):
        with pytest.raises(ConfigurationError):
            OLIO_MODEL.cpu_cores(0.0)
        with pytest.raises(ConfigurationError):
            OLIO_MODEL.memory_gb(-5.0)

    def test_reversed_range(self):
        with pytest.raises(ConfigurationError):
            OLIO_MODEL.scaling_factors(60, 10)

    def test_bad_model_parameters(self):
        with pytest.raises(ConfigurationError):
            AppResourceModel(
                name="bad",
                reference_throughput=0.0,
                cpu_cores_at_reference=1.0,
                memory_gb_at_reference=1.0,
                cpu_exponent=1.0,
                memory_exponent=1.0,
            )
