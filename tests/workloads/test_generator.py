"""Tests for the server trace generator."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import WorkloadClass
from repro.metrics.catalog import get_model
from repro.workloads.generator import (
    IDLE,
    STEADY_BATCH,
    WEB_BURSTY,
    CorrelationModel,
    MemoryModel,
    generate_server_trace,
    generate_trace_set,
)


@pytest.fixture
def model():
    return get_model("rack-1u-medium")


def _gen(profile, model, seed=5, n_hours=240, **kwargs):
    return generate_server_trace(
        "vm0", profile, model, n_hours, np.random.default_rng(seed), **kwargs
    )


class TestGenerateServerTrace:
    def test_deterministic_given_seed(self, model):
        a = _gen(WEB_BURSTY, model, seed=9)
        b = _gen(WEB_BURSTY, model, seed=9)
        assert np.array_equal(a.cpu_util.values, b.cpu_util.values)
        assert np.array_equal(a.memory_gb.values, b.memory_gb.values)

    def test_different_seeds_differ(self, model):
        a = _gen(WEB_BURSTY, model, seed=1)
        b = _gen(WEB_BURSTY, model, seed=2)
        assert not np.array_equal(a.cpu_util.values, b.cpu_util.values)

    def test_mean_util_approximates_target(self, model):
        trace = _gen(STEADY_BATCH, model, n_hours=720, mean_util=0.15)
        assert trace.cpu_util.mean() == pytest.approx(0.15, rel=0.25)

    def test_util_bounded(self, model):
        trace = _gen(WEB_BURSTY, model, n_hours=720)
        assert trace.cpu_util.values.max() <= 1.0
        assert trace.cpu_util.values.min() > 0.0

    def test_memory_bounded_by_configured(self, model):
        trace = _gen(WEB_BURSTY, model, n_hours=720)
        assert trace.memory_gb.values.max() <= model.memory_gb
        assert trace.memory_gb.values.min() > 0.0

    def test_memory_less_bursty_than_cpu(self, model):
        # Observation 2's mechanism must hold per server.
        trace = _gen(WEB_BURSTY, model, n_hours=720)
        cpu_cov = trace.cpu_util.values.std() / trace.cpu_util.values.mean()
        memory = trace.memory_gb.values
        memory_cov = memory.std() / memory.mean()
        assert memory_cov < cpu_cov

    def test_vm_metadata(self, model):
        trace = _gen(WEB_BURSTY, model, labels={"app": "teller"})
        assert trace.vm.workload_class == WorkloadClass.WEB_INTERACTIVE
        assert trace.vm.labels["app"] == "teller"
        assert trace.vm.labels["profile"] == "web-bursty"
        assert trace.vm.memory_config_gb == model.memory_gb

    def test_invalid_mean_util(self, model):
        with pytest.raises(ConfigurationError):
            _gen(WEB_BURSTY, model, mean_util=1.5)

    def test_invalid_hours(self, model):
        with pytest.raises(ConfigurationError):
            generate_server_trace(
                "v", WEB_BURSTY, model, 0, np.random.default_rng(0)
            )


class TestMemoryModelValidation:
    def test_fracs_must_fit_in_configured(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(base_frac=0.8, dynamic_frac=0.3)

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(smoothing_alpha=0.0)


class TestGenerateTraceSet:
    def test_counts_and_naming(self, model):
        ts = generate_trace_set(
            "dc", [(IDLE, model, 3), (STEADY_BATCH, model, 2)], 48, seed=1
        )
        assert len(ts) == 5
        assert ts.vm_ids[0] == "dc-vm0000"
        assert ts.vm_ids[-1] == "dc-vm0004"

    def test_mean_util_spread(self, model):
        ts = generate_trace_set(
            "dc", [(STEADY_BATCH, model, 40)], 240, seed=2,
            mean_util_spread_sigma=0.7,
        )
        means = [t.cpu_util.mean() for t in ts]
        assert max(means) / min(means) > 2.0  # real spread across servers

    def test_zero_spread_concentrates(self, model):
        ts = generate_trace_set(
            "dc", [(STEADY_BATCH, model, 10)], 240, seed=2,
            mean_util_spread_sigma=0.0,
        )
        means = np.array([t.cpu_util.mean() for t in ts])
        assert means.std() / means.mean() < 0.2

    def test_deterministic(self, model):
        a = generate_trace_set("dc", [(IDLE, model, 4)], 48, seed=11)
        b = generate_trace_set("dc", [(IDLE, model, 4)], 48, seed=11)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.cpu_util.values, tb.cpu_util.values)


class TestCorrelation:
    def test_correlation_raises_pairwise_correlation(self, model):
        spec = [(WEB_BURSTY, model, 30)]
        independent = generate_trace_set("i", spec, 720, seed=3)
        correlated = generate_trace_set(
            "c", spec, 720, seed=3,
            correlation=CorrelationModel(
                ar1_sigma=0.3, event_rate_per_day=1.0,
                event_participation=0.6, event_magnitude_scale=2.0,
            ),
        )

        def mean_pairwise_corr(ts):
            matrix = ts.cpu_rpe2_matrix()
            corr = np.corrcoef(matrix)
            upper = corr[np.triu_indices_from(corr, k=1)]
            return float(np.nanmean(upper))

        assert mean_pairwise_corr(correlated) > mean_pairwise_corr(
            independent
        ) + 0.05

    def test_events_create_coincident_peaks(self, model):
        correlated = generate_trace_set(
            "c", [(WEB_BURSTY, model, 20)], 720, seed=4,
            correlation=CorrelationModel(
                event_rate_per_day=1.0,
                event_participation=0.8,
                event_magnitude_scale=2.5,
            ),
        )
        aggregate = correlated.aggregate_cpu_rpe2()
        # Correlated flash events push the aggregate peak well above the
        # independent-sum level (mean + a few sigma).
        z = (aggregate.max() - aggregate.mean()) / aggregate.std()
        assert z > 3.0

    def test_correlation_model_validation(self):
        with pytest.raises(ConfigurationError):
            CorrelationModel(event_participation=1.5)
        with pytest.raises(ConfigurationError):
            CorrelationModel(ar1_phi=1.0)
        with pytest.raises(ConfigurationError):
            CorrelationModel(event_max_multiplier=0.5)
