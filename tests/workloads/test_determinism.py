"""End-to-end determinism: same seed, same traces — bit for bit.

Model- and generator-level determinism are covered next to their units;
this locks the contract at the public API the experiments consume
(:func:`repro.workloads.generate_datacenter`), which is what the
REPRO101 lint rule exists to protect: no global or unseeded RNG means
two same-seed runs can never diverge.
"""

import numpy as np

from repro.workloads import generate_datacenter


def _generate(seed: int):
    return generate_datacenter("banking", scale=0.02, days=2, seed=seed)


def test_same_seed_runs_produce_identical_traces():
    first = _generate(seed=1234)
    second = _generate(seed=1234)

    assert [t.vm_id for t in first] == [t.vm_id for t in second]
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.cpu_util.values, b.cpu_util.values)
        np.testing.assert_array_equal(a.memory_gb.values, b.memory_gb.values)
        assert a.vm.workload_class == b.vm.workload_class
        assert a.vm.memory_config_gb == b.vm.memory_config_gb


def test_different_seeds_produce_different_traces():
    first = _generate(seed=1234)
    second = _generate(seed=5678)

    assert any(
        not np.array_equal(a.cpu_util.values, b.cpu_util.values)
        for a, b in zip(first, second)
    )
