"""The array engine's contract: bit-identical to the scalar reference.

The batched store-first engine (PR: columnar store-first generation)
replays the exact per-VM draw choreography of the pinned scalar pipeline
on ``(n_vms, n_hours)`` matrices, optionally through a compiled kernel
that links numpy's own distribution code.  Every test here compares
*bits*, not tolerances: the engines must agree on every float across
profiles, correlation models, flash events, row subsets, column windows,
chunked round-trips, and the python fallback with the kernel disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.catalog import get_model
from repro.workloads import generator
from repro.workloads.chunked import (
    generate_chunked_store,
    open_chunked_store,
)
from repro.workloads.datacenters import datacenter_specs
from repro.workloads.generator import (
    IDLE,
    SCHEDULED_BATCH,
    STEADY_BATCH,
    WEB_BURSTY,
    WEB_MODERATE,
    CorrelationModel,
    generate_trace_blocks,
    generate_trace_matrix,
    generate_trace_set,
)
from repro.workloads import models

ALL_PROFILES = (WEB_BURSTY, WEB_MODERATE, STEADY_BATCH, SCHEDULED_BATCH, IDLE)

#: Aggressive event pressure so flash hits, severity draws, and the
#: spike overflow/retry protocol all actually exercise.
BUSY_CORRELATION = CorrelationModel(
    event_rate_per_day=4.0,
    event_participation=0.6,
)

_HOURS = 72
_SEED = 97


def _hardware():
    return get_model("rack-1u-medium")


def _stores(specs, *, correlation=None, seed=_SEED, n_hours=_HOURS):
    array = generate_trace_set(
        "eq", specs, n_hours, seed, correlation=correlation, engine="array"
    ).store
    scalar = generate_trace_set(
        "eq", specs, n_hours, seed, correlation=correlation, engine="scalar"
    ).store
    return array, scalar


def _assert_stores_equal(array, scalar):
    assert array.vm_ids == scalar.vm_ids
    np.testing.assert_array_equal(array.cpu_util, scalar.cpu_util)
    np.testing.assert_array_equal(array.cpu_rpe2, scalar.cpu_rpe2)
    np.testing.assert_array_equal(array.memory_gb, scalar.memory_gb)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize(
        "profile", ALL_PROFILES, ids=lambda p: p.name
    )
    def test_each_profile_plain(self, profile):
        array, scalar = _stores([(profile, _hardware(), 9)])
        _assert_stores_equal(array, scalar)

    @pytest.mark.parametrize(
        "profile", ALL_PROFILES, ids=lambda p: p.name
    )
    def test_each_profile_with_correlation_and_events(self, profile):
        array, scalar = _stores(
            [(profile, _hardware(), 9)], correlation=BUSY_CORRELATION
        )
        _assert_stores_equal(array, scalar)

    def test_mixed_fleet_multiple_hardware(self):
        specs = [
            (WEB_BURSTY, get_model("rack-1u-medium"), 7),
            (SCHEDULED_BATCH, get_model("rack-2u-large"), 5),
            (IDLE, get_model("rack-1u-medium"), 4),
        ]
        array, scalar = _stores(specs, correlation=BUSY_CORRELATION)
        _assert_stores_equal(array, scalar)

    def test_python_fallback_matches_kernel(self, monkeypatch):
        """With the compiled kernel disabled the engine must not move."""
        specs = [(WEB_BURSTY, _hardware(), 6)]
        with_kernel, _ = _stores(specs, correlation=BUSY_CORRELATION)
        monkeypatch.setattr(generator, "_checked_drawer", lambda fast: None)
        without_kernel, scalar = _stores(
            specs, correlation=BUSY_CORRELATION
        )
        _assert_stores_equal(without_kernel, scalar)
        np.testing.assert_array_equal(
            with_kernel.cpu_util, without_kernel.cpu_util
        )
        np.testing.assert_array_equal(
            with_kernel.memory_gb, without_kernel.memory_gb
        )


class TestDeterminismProperties:
    def test_same_seed_is_bitwise_stable(self):
        specs = [(WEB_MODERATE, _hardware(), 8)]
        first, _ = _stores(specs, correlation=BUSY_CORRELATION)
        second, _ = _stores(specs, correlation=BUSY_CORRELATION)
        _assert_stores_equal(first, second)

    @pytest.mark.parametrize("seed", [0, 11, 2**40 + 3])
    def test_seeds_are_honored(self, seed):
        specs = [(STEADY_BATCH, _hardware(), 5)]
        array, scalar = _stores(specs, seed=seed)
        _assert_stores_equal(array, scalar)

    def test_different_seeds_differ(self):
        specs = [(WEB_BURSTY, _hardware(), 5)]
        a, _ = _stores(specs, seed=1)
        b, _ = _stores(specs, seed=2)
        assert not np.array_equal(a.cpu_util, b.cpu_util)

    def test_vm_range_rows_match_full_fleet(self):
        specs = [
            (WEB_BURSTY, _hardware(), 10),
            (IDLE, _hardware(), 6),
        ]
        full, _blocks = generate_trace_matrix(
            "eq", specs, _HOURS, _SEED, correlation=BUSY_CORRELATION
        )
        window, _blocks = generate_trace_matrix(
            "eq",
            specs,
            _HOURS,
            _SEED,
            correlation=BUSY_CORRELATION,
            vm_range=(7, 13),
        )
        assert window.vm_ids == full.vm_ids[7:13]
        np.testing.assert_array_equal(window.cpu_util, full.cpu_util[7:13])
        np.testing.assert_array_equal(window.memory_gb, full.memory_gb[7:13])

    def test_block_rows_do_not_change_bits(self):
        specs = [(SCHEDULED_BATCH, _hardware(), 11)]
        whole = np.concatenate(
            [
                b.cpu_util
                for b in generate_trace_blocks(
                    "eq", specs, _HOURS, _SEED, correlation=BUSY_CORRELATION
                )
            ]
        )
        chunked = np.concatenate(
            [
                b.cpu_util
                for b in generate_trace_blocks(
                    "eq",
                    specs,
                    _HOURS,
                    _SEED,
                    correlation=BUSY_CORRELATION,
                    block_rows=3,
                )
            ]
        )
        np.testing.assert_array_equal(whole, chunked)

    def test_store_window_is_column_slice(self):
        array, _ = _stores([(WEB_BURSTY, _hardware(), 6)])
        window = array.window(10, 40)
        np.testing.assert_array_equal(
            window.cpu_util, array.cpu_util[:, 10:40]
        )


class TestLazyTraceSet:
    def test_array_engine_traces_view_store_rows(self):
        specs = [(WEB_BURSTY, _hardware(), 5)]
        trace_set = generate_trace_set(
            "eq", specs, _HOURS, _SEED, engine="array"
        )
        store = trace_set.store
        for row, trace in enumerate(trace_set.traces):
            assert trace.vm_id == store.vm_ids[row]
            np.testing.assert_array_equal(
                trace.cpu_util.values, store.cpu_util[row]
            )
            np.testing.assert_array_equal(
                trace.memory_gb.values, store.memory_gb[row]
            )

    def test_array_engine_vm_metadata_matches_scalar(self):
        specs = [(SCHEDULED_BATCH, get_model("rack-2u-large"), 4)]
        array_set = generate_trace_set(
            "eq", specs, _HOURS, _SEED, engine="array"
        )
        scalar_set = generate_trace_set(
            "eq", specs, _HOURS, _SEED, engine="scalar"
        )
        for a, s in zip(array_set.traces, scalar_set.traces):
            assert a.vm.vm_id == s.vm.vm_id
            assert a.vm.workload_class == s.vm.workload_class
            assert a.vm.memory_config_gb == s.vm.memory_config_gb
            assert a.source_spec == s.source_spec


class TestChunkedRoundTrip:
    def test_streamed_store_is_bit_identical(self, tmp_path):
        specs = datacenter_specs("banking", scale=0.04)
        correlation = None
        generate_chunked_store(
            tmp_path / "fleet",
            "banking",
            specs,
            48,
            11,
            correlation=correlation,
            block_rows=5,
        )
        disk = open_chunked_store(tmp_path / "fleet")
        memory = generate_trace_set(
            "banking", specs, 48, 11, correlation=correlation
        ).store
        assert disk.vm_ids == memory.vm_ids
        np.testing.assert_array_equal(
            np.asarray(disk.cpu_util), memory.cpu_util
        )
        np.testing.assert_array_equal(
            np.asarray(disk.cpu_rpe2), memory.cpu_rpe2
        )
        np.testing.assert_array_equal(
            np.asarray(disk.memory_gb), memory.memory_gb
        )


class TestModelReferences:
    """The matrix models the engine fuses stay pinned to their numpy
    references — the same functions the scalar pipeline calls row-wise."""

    def test_pareto_spike_matrix_reference(self):
        rng = np.random.default_rng(5)
        rows = np.repeat(np.arange(4), 3)
        starts = rng.integers(0, 60, rows.size)
        magnitudes = rng.pareto(1.8, rows.size) + 1.0
        durations = rng.integers(1, 3, rows.size)
        overlay = models.pareto_spike_matrix(
            4,
            64,
            rows=rows,
            starts=starts,
            magnitudes=magnitudes,
            durations=durations,
        )
        util = np.zeros((4, 64))
        generator._add_spikes_inplace(
            util,
            rows=rows,
            starts=starts,
            magnitudes=magnitudes,
            durations=durations,
            n_hours=64,
        )
        np.testing.assert_array_equal(util, overlay)
