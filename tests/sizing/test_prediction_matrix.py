"""Batched predictor kernels == scalar ``predict_peak``, bit for bit.

``predict_peak_matrix`` / ``predict_peak_table`` are the planner's
batched prediction layer; the equivalence contract is exact equality
against the scalar reference on every row and interval, not closeness.
Driven by hypothesis when available, with a seeded stdlib sweep that
always runs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.sizing.prediction import (
    EwmaPredictor,
    LastIntervalPredictor,
    OraclePredictor,
    PeriodicPeakPredictor,
    build_peak_table,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

PREDICTORS = [
    LastIntervalPredictor(),
    EwmaPredictor(),
    EwmaPredictor(alpha=1.0),
    PeriodicPeakPredictor(period=12, lookback_days=3),
]


def _random_matrix(rng: random.Random, n_rows: int, n_points: int):
    base = np.array(
        [[rng.uniform(0.0, 500.0) for _ in range(n_points)] for _ in range(n_rows)]
    )
    return base


def _assert_matrix_matches_scalar(predictor, history, horizon, future=None):
    batched = predictor.predict_peak_matrix(
        history, horizon, actual_future=future
    )
    for row in range(history.shape[0]):
        scalar = predictor.predict_peak(
            history[row],
            horizon,
            actual_future=None if future is None else future[row],
        )
        assert batched[row] == scalar, (type(predictor).__name__, row)


@pytest.mark.parametrize("predictor", PREDICTORS, ids=lambda p: repr(p))
def test_matrix_matches_scalar_random(predictor) -> None:
    rng = random.Random(repr(predictor))
    for _ in range(20):
        n_rows = rng.randint(1, 12)
        n_points = rng.randint(2, 80)
        horizon = rng.randint(1, n_points)
        history = _random_matrix(rng, n_rows, n_points)
        _assert_matrix_matches_scalar(predictor, history, horizon)


def test_oracle_matrix_matches_scalar() -> None:
    rng = random.Random("oracle")
    predictor = OraclePredictor()
    for _ in range(20):
        n_rows = rng.randint(1, 12)
        horizon = rng.randint(1, 24)
        history = _random_matrix(rng, n_rows, rng.randint(2, 40))
        future = _random_matrix(rng, n_rows, horizon + rng.randint(0, 10))
        _assert_matrix_matches_scalar(
            predictor, history, horizon, future=future
        )


@pytest.mark.parametrize(
    "predictor",
    PREDICTORS + [OraclePredictor()],
    ids=lambda p: repr(p),
)
def test_peak_table_matches_per_interval_loop(predictor) -> None:
    """The full table equals interval-by-interval scalar prediction."""
    rng = random.Random(f"table-{predictor!r}")
    for _ in range(10):
        n_rows = rng.randint(1, 8)
        horizon = rng.randint(1, 12)
        history_points = horizon * rng.randint(1, 4)
        n_intervals = rng.randint(1, 6)
        n_points = history_points + horizon * n_intervals
        full = _random_matrix(rng, n_rows, n_points)
        starts = [history_points + i * horizon for i in range(n_intervals)]
        table = build_peak_table(predictor, full, horizon, starts)
        assert table.shape == (n_rows, n_intervals)
        for column, start in enumerate(starts):
            for row in range(n_rows):
                scalar = predictor.predict_peak(
                    full[row, :start],
                    horizon,
                    actual_future=full[row, start:],
                )
                assert table[row, column] == scalar, (row, column)


def test_flat_history_predicts_flat() -> None:
    history = np.full((3, 48), 0.25)
    for predictor in PREDICTORS:
        batched = predictor.predict_peak_matrix(history, 12)
        assert np.all(batched == predictor.predict_peak(history[0], 12))


if HAVE_HYPOTHESIS:

    @given(
        data=st.data(),
        n_rows=st.integers(1, 6),
        n_points=st.integers(2, 60),
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_matrix_matches_scalar(data, n_rows, n_points):
        history = np.array(
            data.draw(
                st.lists(
                    st.lists(
                        st.floats(0.0, 1e4, allow_nan=False),
                        min_size=n_points,
                        max_size=n_points,
                    ),
                    min_size=n_rows,
                    max_size=n_rows,
                )
            )
        )
        horizon = data.draw(st.integers(1, n_points))
        predictor = data.draw(st.sampled_from(PREDICTORS))
        _assert_matrix_matches_scalar(predictor, history, horizon)
