"""Tests for sizing functions."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.sizing.functions import (
    BodyTailSizing,
    MaxSizing,
    MeanSizing,
    PercentileSizing,
    SizingFunction,
)


@pytest.fixture
def window():
    return np.array([1.0, 2.0, 3.0, 4.0, 10.0])


class TestScalarSizings:
    def test_max(self, window):
        assert MaxSizing().size(window) == 10.0

    def test_mean(self, window):
        assert MeanSizing().size(window) == 4.0

    def test_percentile(self, window):
        assert PercentileSizing(50).size(window) == 3.0
        assert PercentileSizing(100).size(window) == 10.0

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            PercentileSizing(101)

    def test_protocol_conformance(self):
        for sizing in (MaxSizing(), MeanSizing(), PercentileSizing(90),
                       BodyTailSizing()):
            assert isinstance(sizing, SizingFunction)

    def test_empty_window_rejected(self):
        with pytest.raises(TraceError):
            MaxSizing().size(np.array([]))


class TestBodyTailSizing:
    def test_split_sums_to_max(self, window):
        body, tail = BodyTailSizing(90).split(window)
        assert body + tail == pytest.approx(10.0)
        assert body == pytest.approx(np.percentile(window, 90))

    def test_size_returns_body(self, window):
        sizing = BodyTailSizing(90)
        assert sizing.size(window) == sizing.split(window)[0]

    def test_flat_window_has_zero_tail(self):
        body, tail = BodyTailSizing(90).split(np.full(10, 2.0))
        assert body == 2.0
        assert tail == 0.0

    def test_tail_never_negative(self):
        # percentile 100 makes body == max.
        body, tail = BodyTailSizing(100).split(np.array([1.0, 5.0]))
        assert tail == 0.0

    def test_ordering_vs_max_sizing(self, window):
        body, tail = BodyTailSizing(90).split(window)
        assert body <= MaxSizing().size(window)
        assert body >= MeanSizing().size(window)
