"""Tests for the size estimator and virtualization overhead."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sizing.estimator import SizeEstimator, VirtualizationOverhead
from repro.sizing.functions import BodyTailSizing, MaxSizing, PercentileSizing
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def trace():
    return make_server_trace(
        "vm",
        [0.1, 0.2, 0.5, 0.3],
        [1.0, 1.2, 2.0, 1.5],
        cpu_rpe2=1000.0,
    )


class TestVirtualizationOverhead:
    def test_cpu_inflation(self):
        overhead = VirtualizationOverhead(cpu_overhead_frac=0.1)
        assert overhead.adjust_cpu(100.0) == pytest.approx(110.0)

    def test_memory_dedup_then_fixed_overhead(self):
        overhead = VirtualizationOverhead(
            memory_overhead_gb=0.25, dedup_savings_frac=0.2
        )
        assert overhead.adjust_memory(10.0) == pytest.approx(8.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualizationOverhead(cpu_overhead_frac=-0.1)
        with pytest.raises(ConfigurationError):
            VirtualizationOverhead(dedup_savings_frac=1.0)


class TestEstimateScalarSizing:
    def test_max_sizing_with_overhead(self, trace):
        estimator = SizeEstimator(
            sizing=MaxSizing(),
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.1, memory_overhead_gb=0.5
            ),
        )
        demand = estimator.estimate(trace)
        assert demand.cpu_rpe2 == pytest.approx(0.5 * 1000 * 1.1)
        assert demand.memory_gb == pytest.approx(2.0 + 0.5)
        assert demand.tail_cpu_rpe2 == 0.0

    def test_percentile_sizing_smaller_than_max(self, trace):
        max_demand = SizeEstimator(sizing=MaxSizing()).estimate(trace)
        p50_demand = SizeEstimator(sizing=PercentileSizing(50)).estimate(trace)
        assert p50_demand.cpu_rpe2 < max_demand.cpu_rpe2
        assert p50_demand.memory_gb < max_demand.memory_gb

    def test_estimate_all_preserves_order(self, trace):
        ts = TraceSet(name="s")
        ts.add(trace)
        ts.add(make_server_trace("vm2", [0.1, 0.1, 0.1, 0.1], [1.0] * 4))
        demands = SizeEstimator().estimate_all(ts)
        assert [d.vm_id for d in demands] == ["vm", "vm2"]


class TestEstimateBodyTail:
    def test_body_plus_tail_covers_peak(self, trace):
        estimator = SizeEstimator(
            sizing=BodyTailSizing(50),
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.0, memory_overhead_gb=0.0
            ),
        )
        demand = estimator.estimate(trace)
        assert demand.cpu_rpe2 + demand.tail_cpu_rpe2 == pytest.approx(500.0)
        assert demand.memory_gb + demand.tail_memory_gb == pytest.approx(2.0)

    def test_memory_overhead_only_in_body(self, trace):
        estimator = SizeEstimator(
            sizing=BodyTailSizing(50),
            overhead=VirtualizationOverhead(memory_overhead_gb=0.5),
        )
        demand = estimator.estimate(trace)
        flat = SizeEstimator(
            sizing=BodyTailSizing(50),
            overhead=VirtualizationOverhead(memory_overhead_gb=0.0),
        ).estimate(trace)
        assert demand.memory_gb == pytest.approx(flat.memory_gb + 0.5)
        assert demand.tail_memory_gb == pytest.approx(flat.tail_memory_gb)


class TestEstimateFromValues:
    def test_applies_overhead(self):
        estimator = SizeEstimator(
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.2, memory_overhead_gb=0.25
            )
        )
        demand = estimator.estimate_from_values("vm", 100.0, 4.0)
        assert demand.cpu_rpe2 == pytest.approx(120.0)
        assert demand.memory_gb == pytest.approx(4.25)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SizeEstimator().estimate_from_values("vm", -1.0, 4.0)
