"""Matrix sizing paths == scalar estimator reference, bit for bit.

``estimate_all(engine="matrix")`` and ``estimate_matrix`` are the
planner's batched sizing layer; every produced demand must equal the
retained per-trace / per-value scalar calls exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sizing.estimator import SizeEstimator, VirtualizationOverhead
from repro.sizing.functions import BodyTailSizing, MaxSizing, MeanSizing
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

ESTIMATOR_VARIANTS = [
    SizeEstimator(),
    SizeEstimator(sizing=BodyTailSizing()),
    SizeEstimator(
        sizing=MaxSizing(),
        overhead=VirtualizationOverhead(
            cpu_overhead_frac=0.12,
            memory_overhead_gb=0.3,
            dedup_savings_frac=0.2,
        ),
        network=NetworkDemandModel(),
        disk=DiskDemandModel(),
    ),
    SizeEstimator(
        sizing=BodyTailSizing(body_percentile=95.0),
        network=NetworkDemandModel(),
        disk=DiskDemandModel(),
    ),
]


def _random_trace_set(rng: random.Random, n_vms: int, hours: int) -> TraceSet:
    traces = TraceSet(name="estmatrix")
    classes = [None, "web-interactive", "steady-batch", "scheduled-batch"]
    for i in range(n_vms):
        trace = make_server_trace(
            f"vm{i:03d}",
            [rng.uniform(0.0, 0.9) for _ in range(hours)],
            [rng.uniform(0.1, 6.0) for _ in range(hours)],
            cpu_rpe2=3000.0,
        )
        workload_class = rng.choice(classes)
        if workload_class is not None:
            object.__setattr__(trace.vm, "workload_class", workload_class)
        traces.add(trace)
    return traces


def _assert_same_demands(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a == b, (a, b)


@pytest.mark.parametrize(
    "estimator", ESTIMATOR_VARIANTS, ids=lambda e: type(e.sizing).__name__
)
def test_estimate_all_matrix_matches_scalar(estimator) -> None:
    rng = random.Random(repr(estimator.sizing))
    for _ in range(8):
        traces = _random_trace_set(
            rng, n_vms=rng.randint(1, 16), hours=rng.randint(1, 72)
        )
        scalar = estimator.estimate_all(traces, engine="scalar")
        matrix = estimator.estimate_all(traces, engine="matrix")
        auto = estimator.estimate_all(traces)
        _assert_same_demands(scalar, matrix)
        _assert_same_demands(scalar, auto)


def test_auto_falls_back_for_uncovered_sizing() -> None:
    rng = random.Random("fallback")
    traces = _random_trace_set(rng, n_vms=6, hours=24)
    estimator = SizeEstimator(sizing=MeanSizing())
    _assert_same_demands(
        estimator.estimate_all(traces),
        estimator.estimate_all(traces, engine="scalar"),
    )


def test_unknown_engine_rejected(flat_trace_set) -> None:
    with pytest.raises(ConfigurationError):
        SizeEstimator().estimate_all(flat_trace_set, engine="gpu")


@pytest.mark.parametrize(
    "estimator", ESTIMATOR_VARIANTS, ids=lambda e: type(e.sizing).__name__
)
def test_estimate_matrix_matches_estimate_from_values(estimator) -> None:
    rng = random.Random(f"table-{estimator.sizing!r}")
    for _ in range(8):
        n_vms = rng.randint(1, 12)
        n_intervals = rng.randint(1, 10)
        vm_ids = [f"vm{i:03d}" for i in range(n_vms)]
        classes = [
            rng.choice([None, "web-interactive", "steady-batch"])
            for _ in range(n_vms)
        ]
        cpu = np.array(
            [[rng.uniform(0.0, 2500.0) for _ in range(n_intervals)]
             for _ in range(n_vms)]
        )
        memory = np.array(
            [[rng.uniform(0.0, 8.0) for _ in range(n_intervals)]
             for _ in range(n_vms)]
        )
        table = estimator.estimate_matrix(vm_ids, cpu, memory, classes)
        assert table.n_vms == n_vms and table.n_columns == n_intervals
        for column in range(n_intervals):
            for row in range(n_vms):
                batched = table.demand(row, column)
                scalar = estimator.estimate_from_values(
                    vm_ids[row],
                    float(cpu[row, column]),
                    float(memory[row, column]),
                    workload_class=classes[row],
                )
                assert batched == scalar, (row, column)


def test_estimate_matrix_rejects_negative_with_scalar_message() -> None:
    estimator = SizeEstimator()
    cpu = np.array([[10.0, 20.0], [5.0, -1.0]])
    memory = np.ones_like(cpu)
    with pytest.raises(ConfigurationError) as batched_error:
        estimator.estimate_matrix(["a", "b"], cpu, memory)
    with pytest.raises(ConfigurationError) as scalar_error:
        estimator.estimate_from_values("b", -1.0, 1.0)
    assert str(batched_error.value) == str(scalar_error.value)


def test_estimate_matrix_shape_validation() -> None:
    estimator = SizeEstimator()
    with pytest.raises(ConfigurationError):
        estimator.estimate_matrix(["a"], np.ones((1, 2)), np.ones((2, 2)))
    with pytest.raises(ConfigurationError):
        estimator.estimate_matrix(["a", "b"], np.ones((1, 2)), np.ones((1, 2)))


if HAVE_HYPOTHESIS:

    @given(
        data=st.data(),
        n_vms=st.integers(1, 8),
        n_intervals=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_estimate_matrix_matches(data, n_vms, n_intervals):
        values = st.floats(0.0, 1e5, allow_nan=False)
        cpu = np.array(
            data.draw(
                st.lists(
                    st.lists(values, min_size=n_intervals, max_size=n_intervals),
                    min_size=n_vms,
                    max_size=n_vms,
                )
            )
        )
        memory = np.array(
            data.draw(
                st.lists(
                    st.lists(values, min_size=n_intervals, max_size=n_intervals),
                    min_size=n_vms,
                    max_size=n_vms,
                )
            )
        )
        estimator = data.draw(st.sampled_from(ESTIMATOR_VARIANTS))
        vm_ids = [f"vm{i}" for i in range(n_vms)]
        classes = data.draw(
            st.lists(
                st.sampled_from([None, "web-interactive", "steady-batch"]),
                min_size=n_vms,
                max_size=n_vms,
            )
        )
        table = estimator.estimate_matrix(vm_ids, cpu, memory, classes)
        for row in range(n_vms):
            for column in range(n_intervals):
                assert table.demand(row, column) == (
                    estimator.estimate_from_values(
                        vm_ids[row],
                        float(cpu[row, column]),
                        float(memory[row, column]),
                        workload_class=classes[row],
                    )
                )
