"""Tests for demand predictors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.sizing.prediction import (
    EwmaPredictor,
    LastIntervalPredictor,
    OraclePredictor,
    PeriodicPeakPredictor,
    Predictor,
)


class TestOraclePredictor:
    def test_returns_future_peak(self):
        oracle = OraclePredictor()
        history = np.ones(10)
        future = np.array([0.5, 3.0, 0.2])
        assert oracle.predict_peak(history, 2, future) == 3.0

    def test_requires_future(self):
        with pytest.raises(ConfigurationError):
            OraclePredictor().predict_peak(np.ones(5), 2)

    def test_short_future_rejected(self):
        with pytest.raises(TraceError):
            OraclePredictor().predict_peak(np.ones(5), 4, np.ones(2))


class TestLastIntervalPredictor:
    def test_uses_recent_window(self):
        predictor = LastIntervalPredictor()
        history = np.array([9.0, 1.0, 2.0, 3.0])
        assert predictor.predict_peak(history, 2) == 3.0

    def test_short_history_uses_all(self):
        predictor = LastIntervalPredictor()
        assert predictor.predict_peak(np.array([4.0]), 10) == 4.0

    def test_ignores_future(self):
        predictor = LastIntervalPredictor()
        value = predictor.predict_peak(
            np.array([1.0, 2.0]), 2, np.array([100.0, 100.0])
        )
        assert value == 2.0


class TestEwmaPredictor:
    def test_flat_history(self):
        predictor = EwmaPredictor(alpha=0.5)
        assert predictor.predict_peak(np.full(12, 2.0), 3) == 2.0

    def test_weights_recent_peaks(self):
        # Interval peaks: 1, 1, 10 -> estimate leans toward 10.
        history = np.array([1.0, 1.0, 1.0, 1.0, 10.0, 10.0])
        low_alpha = EwmaPredictor(alpha=0.1).predict_peak(history, 2)
        high_alpha = EwmaPredictor(alpha=0.9).predict_peak(history, 2)
        assert high_alpha > low_alpha
        assert high_alpha <= 10.0

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaPredictor(alpha=0.0)

    def test_history_shorter_than_interval(self):
        predictor = EwmaPredictor()
        assert predictor.predict_peak(np.array([3.0]), 4) == 3.0


class TestPeriodicPeakPredictor:
    def test_learns_diurnal_pattern(self):
        # Demand is 1.0 except a spike to 5.0 at hour 12 of every day.
        days = 5
        history = np.ones(days * 24)
        for day in range(days):
            history[day * 24 + 12] = 5.0
        predictor = PeriodicPeakPredictor(
            period=24, lookback_days=3, safety_margin=0.0
        )
        # Prediction for the slot that covers hour 12.
        prediction = predictor.predict_peak(history[: 4 * 24 + 12], 2)
        assert prediction == 5.0

    def test_recency_floor(self):
        # A workload that just jumped to a new level must not be sized
        # at last week's low value.
        history = np.concatenate([np.ones(72), np.full(4, 8.0)])
        predictor = PeriodicPeakPredictor(
            period=24, lookback_days=3, safety_margin=0.0
        )
        assert predictor.predict_peak(history, 4) >= 8.0

    def test_safety_margin_inflates(self):
        history = np.ones(72)
        base = PeriodicPeakPredictor(safety_margin=0.0).predict_peak(history, 2)
        inflated = PeriodicPeakPredictor(safety_margin=0.25).predict_peak(
            history, 2
        )
        assert inflated == pytest.approx(base * 1.25)

    def test_misses_unprecedented_spike(self):
        # The contention mechanism: an event the history never showed
        # is under-predicted.
        history = np.ones(96)
        future = np.array([6.0, 1.0])
        prediction = PeriodicPeakPredictor(safety_margin=0.1).predict_peak(
            history, 2, future
        )
        assert prediction < 6.0

    def test_protocol_conformance(self):
        for predictor in (
            OraclePredictor(),
            LastIntervalPredictor(),
            EwmaPredictor(),
            PeriodicPeakPredictor(),
        ):
            assert isinstance(predictor, Predictor)

    def test_matrix_path_matches_scalar(self):
        # The vectorized fast path must be semantically identical to the
        # per-row scalar path (dynamic consolidation relies on it).
        rng = np.random.default_rng(8)
        history = rng.random((25, 30 * 24))
        for lookback in (1, 2, 7):
            predictor = PeriodicPeakPredictor(lookback_days=lookback)
            vector = predictor.predict_peak_matrix(history, 2)
            scalar = np.array(
                [predictor.predict_peak(row, 2) for row in history]
            )
            assert np.allclose(vector, scalar)

    def test_matrix_path_short_history(self):
        predictor = PeriodicPeakPredictor(lookback_days=7)
        history = np.random.default_rng(0).random((4, 10))
        vector = predictor.predict_peak_matrix(history, 2)
        scalar = np.array(
            [predictor.predict_peak(row, 2) for row in history]
        )
        assert np.allclose(vector, scalar)

    def test_matrix_path_validation(self):
        predictor = PeriodicPeakPredictor()
        with pytest.raises(Exception):
            predictor.predict_peak_matrix(np.ones(5), 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicPeakPredictor(period=0)
        with pytest.raises(ConfigurationError):
            PeriodicPeakPredictor(lookback_days=0)
        with pytest.raises(ConfigurationError):
            PeriodicPeakPredictor(safety_margin=-0.1)
        with pytest.raises(ConfigurationError):
            PeriodicPeakPredictor().predict_peak(np.ones(5), 0)
