"""Tests for the disk-throughput demand model (§3.1's second constraint)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sizing.estimator import SizeEstimator, VirtualizationOverhead
from repro.sizing.network import DiskDemandModel
from tests.conftest import make_server_trace


class TestDiskDemandModel:
    def test_batch_heavier_than_web(self):
        # The skew flips relative to network: batch streams data.
        model = DiskDemandModel()
        web = model.demand_mbps("web-interactive", 1000.0)
        batch = model.demand_mbps("steady-batch", 1000.0)
        assert batch > web

    def test_base_churn_at_zero_cpu(self):
        model = DiskDemandModel(base_mbps=2.0)
        assert model.demand_mbps("batch", 0.0) == 2.0

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskDemandModel().demand_mbps("gpu", 10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiskDemandModel(batch_mbps_per_rpe2=-0.1)


class TestEstimatorIntegration:
    def test_no_model_means_zero_disk(self):
        trace = make_server_trace("vm", [0.5] * 4, [1.0] * 4)
        assert SizeEstimator().estimate(trace).disk_mbps == 0.0

    def test_model_fills_disk_demand(self):
        trace = make_server_trace("vm", [0.5] * 4, [1.0] * 4, cpu_rpe2=1000)
        estimator = SizeEstimator(
            overhead=VirtualizationOverhead(cpu_overhead_frac=0.0),
            disk=DiskDemandModel(base_mbps=1.0, web_mbps_per_rpe2=0.02),
        )
        demand = estimator.estimate(trace)
        # Sized CPU 500 RPE2, web intensity 0.02 -> 1 + 10 = 11 Mbps.
        assert demand.disk_mbps == pytest.approx(11.0)

    def test_both_io_models_together(self):
        from repro.sizing.network import NetworkDemandModel

        trace = make_server_trace("vm", [0.5] * 4, [1.0] * 4, cpu_rpe2=1000)
        estimator = SizeEstimator(
            network=NetworkDemandModel(),
            disk=DiskDemandModel(),
        )
        demand = estimator.estimate(trace)
        assert demand.network_mbps > 0
        assert demand.disk_mbps > 0
