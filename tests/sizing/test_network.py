"""Tests for the link-bandwidth demand model and its sizing integration."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sizing.estimator import SizeEstimator, VirtualizationOverhead
from repro.sizing.network import NetworkDemandModel
from tests.conftest import make_server_trace


class TestNetworkDemandModel:
    def test_web_heavier_than_batch(self):
        model = NetworkDemandModel()
        web = model.demand_mbps("web-interactive", 1000.0)
        batch = model.demand_mbps("steady-batch", 1000.0)
        assert web > batch

    def test_base_chatter_at_zero_cpu(self):
        model = NetworkDemandModel(base_mbps=3.0)
        assert model.demand_mbps("web", 0.0) == 3.0

    def test_linear_in_cpu(self):
        model = NetworkDemandModel(base_mbps=0.0, web_mbps_per_rpe2=0.5)
        assert model.demand_mbps("web", 100.0) == pytest.approx(50.0)
        assert model.demand_mbps("web", 200.0) == pytest.approx(100.0)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDemandModel().demand_mbps("quantum", 10.0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkDemandModel().demand_mbps("web", -1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkDemandModel(web_mbps_per_rpe2=-0.1)
        with pytest.raises(ConfigurationError):
            NetworkDemandModel(base_mbps=-1.0)


class TestEstimatorIntegration:
    def test_no_model_means_zero_network(self):
        trace = make_server_trace("vm", [0.5] * 4, [1.0] * 4)
        demand = SizeEstimator().estimate(trace)
        assert demand.network_mbps == 0.0

    def test_model_fills_network_demand(self):
        trace = make_server_trace("vm", [0.5] * 4, [1.0] * 4, cpu_rpe2=1000)
        estimator = SizeEstimator(
            overhead=VirtualizationOverhead(cpu_overhead_frac=0.0),
            network=NetworkDemandModel(
                base_mbps=1.0, web_mbps_per_rpe2=0.1
            ),
        )
        demand = estimator.estimate(trace)
        # Sized CPU = 500 RPE2 -> 1 + 0.1 * 500 = 51 Mbps.
        assert demand.network_mbps == pytest.approx(51.0)

    def test_estimate_from_values_needs_class(self):
        estimator = SizeEstimator(network=NetworkDemandModel())
        anonymous = estimator.estimate_from_values("vm", 100.0, 1.0)
        classified = estimator.estimate_from_values(
            "vm", 100.0, 1.0, "web-interactive"
        )
        assert anonymous.network_mbps == 0.0
        assert classified.network_mbps > 0.0
