"""Tests for rack/subnet topology constraints."""

import pytest

from repro.constraints.base import PlacementContext
from repro.constraints.topology import (
    PinToRack,
    PinToSubnet,
    SameRack,
    SameSubnet,
)
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec


@pytest.fixture
def topo_pool():
    dc = Datacenter(name="topo")
    spec = ServerSpec(cpu_rpe2=100.0, memory_gb=1.0)
    dc.add_host(PhysicalServer("h0", spec, rack="r0", subnet="n0"))
    dc.add_host(PhysicalServer("h1", spec, rack="r0", subnet="n1"))
    dc.add_host(PhysicalServer("h2", spec, rack="r1", subnet="n1"))
    dc.add_host(PhysicalServer("h3", spec))  # no topology labels
    return dc


class TestSameRack:
    def test_partner_fixes_rack(self, topo_pool):
        constraint = SameRack("a", "b")
        context = PlacementContext({"a": "h0"}, topo_pool)
        assert constraint.allows("b", topo_pool.host("h1"), context)
        assert not constraint.allows("b", topo_pool.host("h2"), context)

    def test_unknown_topology_fails_closed(self, topo_pool):
        constraint = SameRack("a", "b")
        context = PlacementContext({}, topo_pool)
        assert not constraint.allows("a", topo_pool.host("h3"), context)

    def test_unplaced_partners_allow(self, topo_pool):
        constraint = SameRack("a", "b")
        context = PlacementContext({}, topo_pool)
        assert constraint.allows("a", topo_pool.host("h0"), context)

    def test_needs_two_vms(self):
        with pytest.raises(ConfigurationError):
            SameRack("a")


class TestSameSubnet:
    def test_subnet_grouping(self, topo_pool):
        constraint = SameSubnet("a", "b")
        context = PlacementContext({"a": "h1"}, topo_pool)
        # h2 shares subnet n1 even though it's in another rack.
        assert constraint.allows("b", topo_pool.host("h2"), context)
        assert not constraint.allows("b", topo_pool.host("h0"), context)


class TestPinToZone:
    def test_pin_to_rack(self, topo_pool):
        constraint = PinToRack("a", "r1")
        context = PlacementContext({}, topo_pool)
        assert constraint.allows("a", topo_pool.host("h2"), context)
        assert not constraint.allows("a", topo_pool.host("h0"), context)
        assert not constraint.allows("a", topo_pool.host("h3"), context)

    def test_pin_to_subnet(self, topo_pool):
        constraint = PinToSubnet("a", "n0")
        context = PlacementContext({}, topo_pool)
        assert constraint.allows("a", topo_pool.host("h0"), context)
        assert not constraint.allows("a", topo_pool.host("h1"), context)

    def test_empty_zone_rejected(self):
        with pytest.raises(ConfigurationError):
            PinToRack("a", "")

    def test_describe(self):
        assert "r1" in PinToRack("a", "r1").describe()
        assert "subnet" in PinToSubnet("a", "n0").describe()
