"""Property-based tests for the constraint framework (hypothesis).

The load-bearing consistency: for any assignment, ``violations()`` is
empty exactly when every placed VM's constraints ``allow`` its host in
the final context — the greedy check and the validation pass must agree
on completed placements.
"""

from hypothesis import given, settings, strategies as st

from repro.constraints.affinity import (
    AntiColocate,
    Colocate,
    ExcludeHosts,
    PinToHost,
)
from repro.constraints.base import PlacementContext
from repro.constraints.manager import ConstraintSet
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec

N_VMS = 5
N_HOSTS = 3
VM_IDS = [f"vm{i}" for i in range(N_VMS)]
HOST_IDS = [f"h{i}" for i in range(N_HOSTS)]


def _pool() -> Datacenter:
    dc = Datacenter(name="prop")
    spec = ServerSpec(cpu_rpe2=100.0, memory_gb=1.0)
    for index, host_id in enumerate(HOST_IDS):
        dc.add_host(
            PhysicalServer(
                host_id=host_id, spec=spec, rack=f"r{index % 2}"
            )
        )
    return dc


POOL = _pool()

vm_pair = st.tuples(
    st.sampled_from(VM_IDS), st.sampled_from(VM_IDS)
).filter(lambda pair: pair[0] != pair[1])

constraint_strategy = st.one_of(
    vm_pair.map(lambda p: Colocate(*p)),
    vm_pair.map(lambda p: AntiColocate(*p)),
    st.tuples(st.sampled_from(VM_IDS), st.sampled_from(HOST_IDS)).map(
        lambda p: PinToHost(*p)
    ),
    st.tuples(st.sampled_from(VM_IDS), st.sampled_from(HOST_IDS)).map(
        lambda p: ExcludeHosts(p[0], [p[1]])
    ),
)

assignment_strategy = st.fixed_dictionaries(
    {vm: st.sampled_from(HOST_IDS) for vm in VM_IDS}
)


@given(
    constraints=st.lists(constraint_strategy, max_size=6),
    assignment=assignment_strategy,
)
@settings(max_examples=150, deadline=None)
def test_violations_consistent_with_allows(constraints, assignment):
    constraint_set = ConstraintSet(constraints)
    violations = constraint_set.violations(assignment, POOL)
    context = PlacementContext(assignment, POOL)
    all_allowed = all(
        constraint.allows(vm_id, POOL.host(assignment[vm_id]), context)
        for constraint in constraints
        for vm_id in constraint.vm_ids
    )
    assert (len(violations) == 0) == all_allowed


@given(
    constraints=st.lists(constraint_strategy, max_size=6),
    assignment=assignment_strategy,
    vm=st.sampled_from(VM_IDS),
)
@settings(max_examples=100, deadline=None)
def test_feasible_matches_relevant_allows(constraints, assignment, vm):
    constraint_set = ConstraintSet(constraints)
    host = POOL.host(assignment[vm])
    others = {k: v for k, v in assignment.items() if k != vm}
    feasible = constraint_set.feasible(vm, host, others, POOL)
    context = PlacementContext(others, POOL)
    expected = all(
        c.allows(vm, host, context)
        for c in constraint_set.constraints_for(vm)
    )
    assert feasible == expected


@given(constraints=st.lists(constraint_strategy, max_size=6))
@settings(max_examples=60, deadline=None)
def test_empty_assignment_never_violates(constraints):
    constraint_set = ConstraintSet(constraints)
    assert constraint_set.violations({}, POOL) == []
