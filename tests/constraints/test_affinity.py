"""Tests for host-level affinity constraints."""

import pytest

from repro.constraints.affinity import (
    AntiColocate,
    Colocate,
    ExcludeHosts,
    PinToHost,
)
from repro.constraints.base import PlacementContext
from repro.exceptions import ConfigurationError


@pytest.fixture
def context_factory(tiny_pool):
    def factory(assignment):
        return PlacementContext(assignment, tiny_pool)

    return factory


class TestColocate:
    def test_unplaced_partner_allows_anything(self, tiny_pool, context_factory):
        constraint = Colocate("a", "b")
        host = tiny_pool.host("tiny-h0")
        assert constraint.allows("a", host, context_factory({}))

    def test_follows_placed_partner(self, tiny_pool, context_factory):
        constraint = Colocate("a", "b")
        h0, h1 = tiny_pool.host("tiny-h0"), tiny_pool.host("tiny-h1")
        context = context_factory({"a": "tiny-h0"})
        assert constraint.allows("b", h0, context)
        assert not constraint.allows("b", h1, context)

    def test_needs_two_vms(self):
        with pytest.raises(ConfigurationError):
            Colocate("a")

    def test_describe_mentions_vms(self):
        assert "a" in Colocate("a", "b").describe()


class TestAntiColocate:
    def test_blocks_shared_host(self, tiny_pool, context_factory):
        constraint = AntiColocate("a", "b", "c")
        h0 = tiny_pool.host("tiny-h0")
        context = context_factory({"a": "tiny-h0"})
        assert not constraint.allows("b", h0, context)
        assert constraint.allows(
            "b", tiny_pool.host("tiny-h1"), context
        )

    def test_non_member_unaffected(self, tiny_pool, context_factory):
        constraint = AntiColocate("a", "b")
        assert not constraint.applies_to("z")


class TestPinToHost:
    def test_only_pinned_host_allowed(self, tiny_pool, context_factory):
        constraint = PinToHost("a", "tiny-h1")
        context = context_factory({})
        assert not constraint.allows("a", tiny_pool.host("tiny-h0"), context)
        assert constraint.allows("a", tiny_pool.host("tiny-h1"), context)

    def test_empty_host_rejected(self):
        with pytest.raises(ConfigurationError):
            PinToHost("a", "")


class TestExcludeHosts:
    def test_excluded_host_blocked(self, tiny_pool, context_factory):
        constraint = ExcludeHosts("a", ["tiny-h0"])
        context = context_factory({})
        assert not constraint.allows("a", tiny_pool.host("tiny-h0"), context)
        assert constraint.allows("a", tiny_pool.host("tiny-h1"), context)

    def test_needs_hosts(self):
        with pytest.raises(ConfigurationError):
            ExcludeHosts("a", [])
