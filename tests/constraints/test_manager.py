"""Tests for the constraint set manager."""

import pytest

from repro.constraints.affinity import AntiColocate, Colocate, PinToHost
from repro.constraints.manager import ConstraintSet
from repro.exceptions import ConstraintViolation


class TestFeasibility:
    def test_empty_set_always_feasible(self, tiny_pool):
        constraints = ConstraintSet()
        assert constraints.feasible(
            "any", tiny_pool.host("tiny-h0"), {}, tiny_pool
        )
        assert not constraints  # falsy when empty

    def test_indexing_only_consults_relevant(self, tiny_pool):
        constraints = ConstraintSet([AntiColocate("a", "b")])
        # VM "z" is untouched by the constraint even on the same host.
        assert constraints.feasible(
            "z", tiny_pool.host("tiny-h0"), {"a": "tiny-h0"}, tiny_pool
        )
        assert not constraints.feasible(
            "b", tiny_pool.host("tiny-h0"), {"a": "tiny-h0"}, tiny_pool
        )

    def test_multiple_constraints_all_must_pass(self, tiny_pool):
        constraints = ConstraintSet(
            [PinToHost("a", "tiny-h0"), AntiColocate("a", "b")]
        )
        assert not constraints.feasible(
            "a", tiny_pool.host("tiny-h0"), {"b": "tiny-h0"}, tiny_pool
        )
        assert constraints.feasible(
            "a", tiny_pool.host("tiny-h0"), {"b": "tiny-h1"}, tiny_pool
        )

    def test_constraints_for(self, tiny_pool):
        anti = AntiColocate("a", "b")
        constraints = ConstraintSet([anti])
        assert constraints.constraints_for("a") == (anti,)
        assert constraints.constraints_for("z") == ()


class TestValidation:
    def test_violations_reported(self, tiny_pool):
        constraints = ConstraintSet([Colocate("a", "b")])
        violations = constraints.violations(
            {"a": "tiny-h0", "b": "tiny-h1"}, tiny_pool
        )
        assert len(violations) == 1
        assert "colocate" in violations[0]

    def test_validate_raises_with_description(self, tiny_pool):
        constraints = ConstraintSet([AntiColocate("a", "b")])
        with pytest.raises(ConstraintViolation, match="anti-colocate"):
            constraints.validate(
                {"a": "tiny-h0", "b": "tiny-h0"}, tiny_pool
            )

    def test_valid_assignment_passes(self, tiny_pool):
        constraints = ConstraintSet(
            [AntiColocate("a", "b"), PinToHost("a", "tiny-h0")]
        )
        constraints.validate({"a": "tiny-h0", "b": "tiny-h1"}, tiny_pool)

    def test_unplaced_vms_skipped(self, tiny_pool):
        constraints = ConstraintSet([Colocate("a", "b")])
        assert constraints.violations({"a": "tiny-h0"}, tiny_pool) == []
