"""CLI contract: output format, exit codes, rule selection."""

import json
import re
import subprocess
from pathlib import Path

from repro.devtools import all_rules
from repro.devtools.cli import changed_paths, main

_REPORT_LINE = re.compile(r"^.+:\d+:\d+ REPRO\d{3} .+$")


def test_findings_use_path_line_col_rule_message_format(
    fixtures_dir: Path, capsys
):
    exit_code = main([str(fixtures_dir / "r102_mutable_default.py")])
    out = capsys.readouterr().out
    assert exit_code == 1
    lines = out.strip().splitlines()
    assert lines
    for line in lines:
        assert _REPORT_LINE.match(line), line


def test_clean_tree_exits_zero(fixtures_dir: Path, capsys):
    assert main([str(fixtures_dir / "r102_clean.py")]) == 0
    assert capsys.readouterr().out == ""


def test_select_and_ignore_by_id_and_name(fixtures_dir: Path, capsys):
    bad = str(fixtures_dir / "r102_mutable_default.py")
    assert main([bad, "--select", "REPRO102"]) == 1
    assert main([bad, "--select", "mutable-default"]) == 1
    assert main([bad, "--select", "REPRO103"]) == 0
    assert main([bad, "--ignore", "mutable-default"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_a_usage_error(fixtures_dir: Path, capsys):
    assert main([str(fixtures_dir), "--select", "REPRO999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path: Path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unparseable_file_reports_repro100(tmp_path: Path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n")
    assert main([str(broken)]) == 1
    assert "REPRO100" in capsys.readouterr().out


def test_list_rules_covers_the_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_rules():
        assert cls.rule_id in out and cls.name in out


def test_statistics_prints_per_rule_counts(fixtures_dir: Path, capsys):
    exit_code = main(
        [str(fixtures_dir / "r102_mutable_default.py"), "--statistics"]
    )
    assert exit_code == 1
    assert re.search(r"^\s+4 REPRO102$", capsys.readouterr().out, re.M)


def test_json_format_carries_the_finding_fields(fixtures_dir: Path, capsys):
    bad = fixtures_dir / "r102_mutable_default.py"
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 4
    for entry in payload:
        assert entry["rule_id"] == "REPRO102"
        assert entry["line"] > 0 and entry["col"] >= 0
        assert entry["message"]


def test_sarif_format_is_valid_and_indexes_rules(fixtures_dir: Path, capsys):
    bad = fixtures_dir / "r102_mutable_default.py"
    assert main([str(bad), "--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {cls.rule_id for cls in all_rules()} <= rule_ids
    assert len(run["results"]) == 4
    for result in run["results"]:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 0 and region["startColumn"] > 0


def test_output_writes_the_report_to_a_file(
    fixtures_dir: Path, tmp_path: Path, capsys
):
    report = tmp_path / "report.json"
    bad = fixtures_dir / "r102_mutable_default.py"
    assert main([str(bad), "--format", "json", "--output", str(report)]) == 1
    assert capsys.readouterr().out == ""
    assert len(json.loads(report.read_text())) == 4


def test_changed_outside_git_reports_everything(
    fixtures_dir: Path, tmp_path: Path, capsys, monkeypatch
):
    """Without a merge base the filter must fail open, not silent."""
    monkeypatch.chdir(tmp_path)  # tmp_path is not a git checkout
    bad = tmp_path / "module.py"
    bad.write_text(
        (fixtures_dir / "r102_mutable_default.py").read_text()
    )
    assert main([str(bad), "--changed"]) == 1
    captured = capsys.readouterr()
    assert "could not determine a merge base" in captured.err
    assert "REPRO102" in captured.out


def test_changed_paths_sees_new_files_in_a_fresh_repo(
    tmp_path: Path, monkeypatch
):
    def git(*args):
        subprocess.run(
            ["git", *args], cwd=tmp_path, check=True, capture_output=True
        )

    git("init", "--initial-branch", "main")
    git("config", "user.email", "lint@example.invalid")
    git("config", "user.name", "lint")
    (tmp_path / "committed.py").write_text("x = 1\n")
    git("add", "committed.py")
    git("commit", "-m", "seed")
    (tmp_path / "fresh.py").write_text("y = 2\n")

    monkeypatch.chdir(tmp_path)
    changed = changed_paths()
    assert changed is not None
    assert "fresh.py" in changed and "committed.py" not in changed
