"""CLI contract: output format, exit codes, rule selection."""

import re
from pathlib import Path

from repro.devtools import all_rules
from repro.devtools.cli import main

_REPORT_LINE = re.compile(r"^.+:\d+:\d+ REPRO\d{3} .+$")


def test_findings_use_path_line_col_rule_message_format(
    fixtures_dir: Path, capsys
):
    exit_code = main([str(fixtures_dir / "r102_mutable_default.py")])
    out = capsys.readouterr().out
    assert exit_code == 1
    lines = out.strip().splitlines()
    assert lines
    for line in lines:
        assert _REPORT_LINE.match(line), line


def test_clean_tree_exits_zero(fixtures_dir: Path, capsys):
    assert main([str(fixtures_dir / "r102_clean.py")]) == 0
    assert capsys.readouterr().out == ""


def test_select_and_ignore_by_id_and_name(fixtures_dir: Path, capsys):
    bad = str(fixtures_dir / "r102_mutable_default.py")
    assert main([bad, "--select", "REPRO102"]) == 1
    assert main([bad, "--select", "mutable-default"]) == 1
    assert main([bad, "--select", "REPRO103"]) == 0
    assert main([bad, "--ignore", "mutable-default"]) == 0
    capsys.readouterr()


def test_unknown_rule_is_a_usage_error(fixtures_dir: Path, capsys):
    assert main([str(fixtures_dir), "--select", "REPRO999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path: Path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_unparseable_file_reports_repro100(tmp_path: Path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n")
    assert main([str(broken)]) == 1
    assert "REPRO100" in capsys.readouterr().out


def test_list_rules_covers_the_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for cls in all_rules():
        assert cls.rule_id in out and cls.name in out


def test_statistics_prints_per_rule_counts(fixtures_dir: Path, capsys):
    exit_code = main(
        [str(fixtures_dir / "r102_mutable_default.py"), "--statistics"]
    )
    assert exit_code == 1
    assert re.search(r"^\s+4 REPRO102$", capsys.readouterr().out, re.M)
