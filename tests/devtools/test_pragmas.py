"""Pragma suppression: line-level, file-level, by id, by name, by all."""

from pathlib import Path

from repro.devtools import lint_paths
from repro.devtools.pragmas import parse_suppressions


def test_pragma_fixture_suppresses_exactly_what_it_claims(fixtures_dir: Path):
    findings = lint_paths([fixtures_dir / "pragmas.py"])
    rendered = [f.render() for f in findings]
    # Only the two deliberately-unsuppressed violations remain: the
    # REPRO104 comparison whose pragma names another rule's finding,
    # and the REPRO101 call whose pragma names REPRO104.
    assert len(findings) == 2, rendered
    assert {f.rule_id for f in findings} == {"REPRO101", "REPRO104"}


def test_line_pragma_only_covers_its_own_line(tmp_path: Path):
    module = tmp_path / "module.py"
    module.write_text(
        "import numpy as np\n"
        "a = np.random.rand(3)  # repro-lint: disable=REPRO101\n"
        "b = np.random.rand(3)\n"
    )
    findings = lint_paths([module])
    assert [f.line for f in findings] == [3]


def test_file_pragma_covers_whole_module(tmp_path: Path):
    module = tmp_path / "module.py"
    module.write_text(
        "# repro-lint: disable-file=global-rng\n"
        "import numpy as np\n"
        "a = np.random.rand(3)\n"
        "b = np.random.seed(0)\n"
    )
    assert lint_paths([module]) == []


def test_parse_suppressions_handles_multiple_rules_per_pragma():
    line_map, file_level = parse_suppressions(
        "x = 1  # repro-lint: disable=REPRO101, float-equality\n"
        "# repro-lint: disable-file=REPRO107\n"
    )
    assert line_map[1] == frozenset({"repro101", "float-equality"})
    assert file_level == frozenset({"repro107"})
