"""Semantic model: naming, alias resolution, call-graph reachability.

Exercised against the ``fixtures/semantics_pkg`` mini-package — small
enough to reason about by hand, rich enough to cover import aliases,
re-exports, method resolution, and annotation-typed parameters.
"""

import ast
from pathlib import Path

import pytest

from repro.devtools.context import Module
from repro.devtools.semantics import (
    Resolution,
    SemanticModel,
    module_name_for,
    walk_code,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
PKG = FIXTURES / "semantics_pkg"


def _load(path: Path) -> Module:
    source = path.read_text()
    return Module(
        path=path, rel=path.name, source=source, tree=ast.parse(source)
    )


@pytest.fixture(scope="module")
def model() -> SemanticModel:
    return SemanticModel([_load(p) for p in sorted(PKG.glob("*.py"))])


class TestModuleNaming:
    def test_package_walk_builds_dotted_names(self):
        assert module_name_for(PKG / "alpha.py") == "semantics_pkg.alpha"

    def test_package_init_gets_the_package_name(self):
        assert module_name_for(PKG / "__init__.py") == "semantics_pkg"

    def test_non_package_file_gets_its_stem(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n")
        assert module_name_for(loose) == "script"


class TestResolution:
    def test_import_alias_resolves_to_project_class(self, model):
        beta = model.modules["semantics_pkg.beta"]
        resolved = model.resolve_dotted(beta, ["Eng"])
        assert resolved == Resolution("class", "semantics_pkg.alpha:Engine")

    def test_module_alias_reaches_member_assign(self, model):
        beta = model.modules["semantics_pkg.beta"]
        resolved = model.resolve_dotted(beta, ["core", "LIMIT_MB"])
        assert resolved == Resolution("assign", "semantics_pkg.alpha:LIMIT_MB")

    def test_reexport_through_package_init(self, model):
        init = model.modules["semantics_pkg"]
        resolved = model.resolve_dotted(init, ["Engine", "run"])
        assert resolved == Resolution("function", "semantics_pkg.alpha:Engine.run")

    def test_unknown_names_resolve_external(self, model):
        beta = model.modules["semantics_pkg.beta"]
        resolved = model.resolve_dotted(beta, ["numpy", "random", "rand"])
        assert resolved == Resolution("external", "numpy.random.rand")

    def test_manifest_style_lookup(self, model):
        resolved = model.lookup("semantics_pkg.alpha:Engine.prepare")
        assert resolved is not None and resolved.kind == "function"
        assert model.functions[resolved.key].class_name == "Engine"


class TestCallGraph:
    def test_reachability_spans_constructor_binding_and_methods(self, model):
        paths = model.reachable_from(["semantics_pkg.beta:build"])
        # build() instantiates Eng and calls .run(), which calls
        # self.prepare() and the free function score().
        assert "semantics_pkg.alpha:Engine.run" in paths
        assert "semantics_pkg.alpha:Engine.prepare" in paths
        assert "semantics_pkg.alpha:score" in paths

    def test_paths_reconstruct_the_route(self, model):
        paths = model.reachable_from(["semantics_pkg.beta:build"])
        assert paths["semantics_pkg.alpha:score"] == (
            "semantics_pkg.beta:build",
            "semantics_pkg.alpha:Engine.run",
            "semantics_pkg.alpha:score",
        )

    def test_annotation_typed_parameter_drives_edges(self, model):
        paths = model.reachable_from(["semantics_pkg.beta:drive"])
        assert "semantics_pkg.alpha:Engine.run" in paths

    def test_unreached_functions_stay_unreached(self, model):
        paths = model.reachable_from(["semantics_pkg.beta:limit"])
        assert "semantics_pkg.alpha:Engine.run" not in paths


class TestWalkCode:
    def test_annotations_are_not_code(self):
        tree = ast.parse("def f(x: SomeClass) -> Other:\n    return g(x)\n")
        names = {
            node.id for node in walk_code(tree) if isinstance(node, ast.Name)
        }
        assert "g" in names and "x" in names
        assert "SomeClass" not in names and "Other" not in names
