"""Each built-in rule fires on its violating fixture and stays silent
on the matching clean one.

Fixture files under ``fixtures/`` are never imported or executed — they
exist purely as AST input.  Expected counts are exact so a rule that
starts over- or under-reporting fails loudly.
"""

from pathlib import Path

import pytest

from repro.devtools import all_rules, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"

# (rule id, violating fixture, expected findings, clean fixture)
RULE_CASES = [
    ("REPRO101", "r101_global_rng.py", 6, "r101_clean.py"),
    ("REPRO102", "r102_mutable_default.py", 4, "r102_clean.py"),
    ("REPRO103", "r103_bare_except.py", 3, "r103_clean.py"),
    ("REPRO104", "r104_float_equality.py", 4, "r104_clean.py"),
    ("REPRO105", "r105_unit_suffix.py", 6, "r105_clean.py"),
    ("REPRO106", "infrastructure/r106_unvalidated.py", 1, "infrastructure/r106_clean.py"),
    ("REPRO107", "r107_stray_print.py", 2, "cli.py"),
    ("REPRO108", "core/r108_missing_annotations.py", 4, "core/r108_clean.py"),
    ("REPRO109", "emulator/r109_per_trace_loops.py", 5, "emulator/r109_clean.py"),
    # The whole-program rules take mini-package directories, not single
    # files: their findings are properties of several modules at once.
    ("REPRO110", "r110_parity", 3, "r110_parity_clean"),
    ("REPRO111", "r111_purity", 4, "r111_purity_clean"),
    ("REPRO112", "r112_units", 5, "r112_units_clean"),
    ("REPRO113", "r113_dead", 2, "r113_clean"),
]


def test_every_rule_has_a_fixture_case():
    covered = {case[0] for case in RULE_CASES}
    assert covered == {cls.rule_id for cls in all_rules()}


@pytest.mark.parametrize(
    "rule_id,bad,expected,clean", RULE_CASES, ids=[c[0] for c in RULE_CASES]
)
def test_rule_fires_on_violation(rule_id, bad, expected, clean):
    findings = lint_paths([FIXTURES / bad], select=[rule_id])
    assert len(findings) == expected, [f.render() for f in findings]
    assert {f.rule_id for f in findings} == {rule_id}
    for finding in findings:
        assert finding.line > 0 and finding.col >= 0
        assert finding.message


@pytest.mark.parametrize(
    "rule_id,bad,expected,clean", RULE_CASES, ids=[c[0] for c in RULE_CASES]
)
def test_rule_silent_on_clean_fixture(rule_id, bad, expected, clean):
    findings = lint_paths([FIXTURES / clean], select=[rule_id])
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize(
    "clean",
    sorted(
        {case[3] for case in RULE_CASES},
    ),
)
def test_clean_fixtures_clean_under_all_rules(clean):
    """Clean fixtures must not trip *any* rule, not just their own."""
    findings = lint_paths([FIXTURES / clean])
    assert findings == [], [f.render() for f in findings]


def test_scoped_rules_ignore_out_of_scope_paths(tmp_path):
    """R106/R107-style scoping: the same source outside the scoped
    package directories produces no findings."""
    source = (FIXTURES / "infrastructure" / "r106_unvalidated.py").read_text()
    out_of_scope = tmp_path / "elsewhere" / "module.py"
    out_of_scope.parent.mkdir()
    out_of_scope.write_text(source)
    assert lint_paths([out_of_scope], select=["REPRO106"]) == []

    source = (FIXTURES / "core" / "r108_missing_annotations.py").read_text()
    out_of_scope.write_text(source)
    assert lint_paths([out_of_scope], select=["REPRO108"]) == []
