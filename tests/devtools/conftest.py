"""Shared fixtures for the devtools (repro-lint) test suite."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).resolve().parent / "fixtures"


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
