"""Fixture: default-argument idioms REPRO102 must accept. Never imported."""

from typing import Iterable, Optional, Tuple


def none_default(vms: Optional[list] = None) -> list:
    return [] if vms is None else list(vms)


def immutable_defaults(
    hosts: Tuple[str, ...] = (), name: str = "pool", scale: float = 1.0
) -> Tuple[str, ...]:
    return hosts


def iterable_param(constraints: Iterable[str] = frozenset()) -> int:
    return len(list(constraints))
