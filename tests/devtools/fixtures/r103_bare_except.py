"""Fixture: REPRO103 (bare-except) violations. Never imported."""


def bare() -> int:
    try:
        return 1
    except:  # flagged: bare
        return 0


def base_exception() -> int:
    try:
        return 1
    except BaseException:  # flagged: catches interpreter-exit signals
        return 0


def swallows() -> int:
    try:
        return 1
    except Exception:  # flagged: silently swallows everything
        pass
    return 0
