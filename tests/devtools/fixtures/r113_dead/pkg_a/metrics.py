"""One live export, one dead one."""

__all__ = ["live_metric", "dead_metric"]


def live_metric(values):
    return sum(values) / len(values)


def dead_metric(values):
    return max(values)
