"""Uses the live export; advertises a dead one of its own."""

from pkg_a import live_metric

__all__ = ["run", "unused_helper"]


def run(values):
    return live_metric(values)


def unused_helper(values):
    return min(values)
