"""Consumer package."""

from pkg_b.consumer import run
