"""Fixture: exception handling REPRO103 must accept. Never imported."""


def narrow() -> int:
    try:
        return int("1")
    except ValueError:
        return 0


def broad_but_handled(log: list) -> int:
    try:
        return int("1")
    except Exception as exc:  # broad, but does something with the error
        log.append(exc)
        raise
