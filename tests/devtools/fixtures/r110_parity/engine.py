"""Vectorized engine that has drifted from its reference."""


class ArrayPacker:
    # default drifted: 0.9 vs the reference's 0.8
    def pack(self, demand_mb, capacity_mb, bound=0.9):
        return [d <= c * bound for d, c in zip(demand_mb, capacity_mb)]

    # residual() has no counterpart here: drift


def predict_peak_matrix(history, window=12):  # "horizon" renamed: drift
    return [max(row[-window:]) for row in history]
