"""Pairing manifest naming the drifted fixture pair."""

PARITY_MANIFEST = (
    {
        "reference": "r110_parity.reference:ScalarPacker",
        "engine": "r110_parity.engine:ArrayPacker",
    },
    {
        "reference": "r110_parity.reference:predict_peak",
        "engine": "r110_parity.engine:predict_peak_matrix",
    },
)
