"""Drifted engine/reference pair (REPRO110 violating fixture)."""
