"""Fixture: REPRO105 (unit-suffix) violations. Never imported."""

from dataclasses import dataclass


def reserve(memory_gb: float, cpu_mhz: float) -> float:
    return memory_gb + cpu_mhz  # flagged: gb added to mhz


@dataclass
class Demand:
    memory_gb: float
    util_frac: float


def build(memory_mb: float, util_pct: float) -> Demand:
    return Demand(memory_mb, util_pct)  # flagged twice: positional mb->gb, pct->frac


def call_sites(memory_mb: float, util_pct: float) -> float:
    sized = reserve(memory_gb=memory_mb, cpu_mhz=2000.0)  # flagged: kwarg mb->gb
    headroom_gb = memory_mb  # flagged: assignment mb->gb
    over = util_pct > threshold_frac()  # flagged: pct compared with frac
    return sized + headroom_gb + float(over)


def threshold_frac() -> float:
    return 0.8
