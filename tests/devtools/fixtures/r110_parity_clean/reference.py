"""Scalar reference side, kept in sync with the engine."""


class ScalarPacker:
    def pack(self, demand_mb, capacity_mb, bound=0.8):
        return demand_mb <= capacity_mb * bound

    def residual(self, capacity_mb, used_mb):
        return capacity_mb - used_mb


def predict_peak(history, horizon=12):
    return max(history[-horizon:])
