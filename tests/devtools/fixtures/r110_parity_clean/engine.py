"""Vectorized engine matching its reference's public surface."""


class ArrayPacker:
    def pack(self, demand_mb, capacity_mb, indices, bound=0.8):
        return [demand_mb[i] <= capacity_mb[i] * bound for i in indices]

    def residuals(self, capacity_mb, used_mb, indices):
        return [capacity_mb[i] - used_mb[i] for i in indices]


def predict_peak_matrix(history, horizon=12):
    return [max(row[-horizon:]) for row in history]
