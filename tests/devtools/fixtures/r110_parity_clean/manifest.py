"""Pairing manifest for the in-sync fixture pair."""

PARITY_MANIFEST = (
    {
        "reference": "r110_parity_clean.reference:ScalarPacker",
        "engine": "r110_parity_clean.engine:ArrayPacker",
        "methods": {"residual": ["residuals"]},
        "engine_extra": ["indices"],
    },
    {
        "reference": "r110_parity_clean.reference:predict_peak",
        "engine": "r110_parity_clean.engine:predict_peak_matrix",
    },
)
