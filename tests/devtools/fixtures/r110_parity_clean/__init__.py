"""In-sync engine/reference pair (REPRO110 clean fixture)."""
