"""Helpers with honest unit suffixes."""

MB_PER_GB = 1024.0


def read_demand_mb(trace):
    total_mb = sum(trace)
    return total_mb
