"""Callers converting explicitly at every unit boundary."""

from r112_units_clean.helpers import MB_PER_GB, read_demand_mb


def plan(trace, host):
    demand_mb = read_demand_mb(trace)
    demand_gb = demand_mb / MB_PER_GB
    window_hours = host.window_days * 24.0
    return (demand_gb, window_hours)


def allocate(amount_gb):
    return amount_gb


def drive(trace):
    demand_mb = read_demand_mb(trace)
    return allocate(demand_mb / MB_PER_GB)
