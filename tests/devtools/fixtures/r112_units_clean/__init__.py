"""Unit flow with explicit conversions (REPRO112 clean)."""
