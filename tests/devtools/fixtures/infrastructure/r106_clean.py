"""Fixture: dataclass shapes REPRO106 must accept. Never imported."""

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerCapacity:
    server_id: str
    memory_gb: float
    cpu_mhz: float

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.cpu_mhz <= 0:
            raise ValueError("capacities must be positive")


@dataclass(frozen=True)
class Label:  # no resource fields: validation not required
    key: str
    value: str
