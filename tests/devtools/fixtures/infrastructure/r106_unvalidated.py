"""Fixture: REPRO106 (unvalidated-dataclass) violation. Never imported.

Lives under an ``infrastructure/`` directory because the rule is scoped
to the packages that define capacity-accounting inputs.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ServerCapacity:  # flagged: resource fields, no __post_init__
    server_id: str
    memory_gb: float
    cpu_mhz: float
