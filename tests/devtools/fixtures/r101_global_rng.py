"""Fixture: every REPRO101 (global-rng) violation shape. Never imported."""

import random

import numpy as np
from random import shuffle  # noqa: F401  — flagged: global-state import

values = np.random.rand(10)  # flagged: legacy global sampler
np.random.seed(42)  # flagged: mutates global state
unseeded = np.random.default_rng()  # flagged: OS-entropy seeding
jitter = random.uniform(0.0, 1.0)  # flagged: stdlib global RNG
unseeded_instance = random.Random()  # flagged: unseeded instance
