"""Fixture: REPRO102 (mutable-default) violations. Never imported."""

from collections import defaultdict


def literal_list(vms=[]):  # flagged
    return vms


def literal_dict(capacities={}):  # flagged
    return capacities


def factory_call(queue=list()):  # flagged
    return queue


def keyword_only(*, index=defaultdict(list)):  # flagged
    return index
