"""Fixture: columnar kernel shapes REPRO109 must accept. Never imported."""

import numpy as np


def scatter_segment(
    cpu_matrix: np.ndarray,
    vm_rows: np.ndarray,
    host_rows: np.ndarray,
    start: int,
    end: int,
    out: np.ndarray,
) -> np.ndarray:
    values = cpu_matrix[vm_rows, start:end]
    width = end - start
    linear = host_rows[:, np.newaxis] * width + np.arange(width)
    summed = np.bincount(
        linear.ravel(),
        weights=values.ravel(),
        minlength=out.shape[0] * width,
    )
    out[:, start:end] += summed.reshape(out.shape[0], width)
    return out


def scatter_wide(
    cpu_matrix: np.ndarray,
    host_rows: np.ndarray,
    start: int,
    end: int,
    out: np.ndarray,
) -> np.ndarray:
    for position, row in enumerate(host_rows):  # host rows, not traces
        out[row, start:end] += cpu_matrix[position, start:end]
    return out


def fits_mask(
    body_cpu: np.ndarray,
    demand_cpu: float,
    cpu_capacity: np.ndarray,
    slack_rpe2: float,
) -> np.ndarray:
    return body_cpu + demand_cpu <= cpu_capacity + slack_rpe2
