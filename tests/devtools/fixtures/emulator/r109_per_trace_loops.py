"""Fixture: de-vectorized kernel shapes REPRO109 must flag. Never imported."""

import numpy as np


def rebuild_matrix(traces):
    matrix = np.vstack([t.values for t in traces])  # finding: vstack
    return matrix


def rebuild_matrix_aliased(rows):
    import numpy

    return numpy.vstack(rows)  # finding: vstack via module name


def accumulate_demand(traces, out):
    for trace in traces:  # finding: loop over traces
        out += trace.values


class Replayer:
    def replay(self, out):
        for trace in self.trace_set:  # finding: loop over trace_set
            out += trace.cpu_util.values
        for trace in sorted(self._traces):  # finding: loop over _traces
            out += trace.memory_gb.values
        return out
