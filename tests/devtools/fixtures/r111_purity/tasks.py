"""Task entry point whose helpers are impure."""

from r111_purity import helpers
from r111_purity.registry import register_task_kind


@register_task_kind("fixture-task")
def run_fixture_task(params, ctx):
    demand = helpers.load_demand(params)
    return helpers.summarize(demand)
