"""Impure task executors (REPRO111 violating fixture)."""
