"""Helpers reachable from the task entry point; all four impurities."""

import os
import time

import numpy as np

_CALLS = 0


def load_demand(params):
    started = time.time()
    scale = float(os.environ.get("DEMAND_SCALE", "1.0"))
    values = [v * scale for v in params["values"]]
    return values, started


def summarize(demand):
    global _CALLS
    _CALLS = _CALLS + 1
    jitter = float(np.random.rand())
    return sum(demand[0]) + jitter


def untimed_report():
    # Impure but unreachable from any task entry point: not reported.
    return time.ctime()
