"""Stand-in for the runner's task-kind registry."""


def register_task_kind(kind):
    def decorate(executor):
        return executor

    return decorate
