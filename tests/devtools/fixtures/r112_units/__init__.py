"""Unit flow breaks through calls/chains (REPRO112 violating)."""
