"""Helpers whose returns carry (or betray) unit suffixes."""


def read_demand(trace):
    total_mb = sum(trace)
    return total_mb


def capacity_gb(server):
    return server.capacity_mb
