"""Callers mixing units through returns and local chains."""

from r112_units.helpers import read_demand


def plan(trace, host):
    demand_gb = read_demand(trace)
    staged = read_demand(trace)
    budget_gb = staged
    window_hours = host.window_days
    return demand_gb + budget_gb + window_hours


def allocate(amount_gb):
    return amount_gb


def drive(trace):
    demand = read_demand(trace)
    return allocate(demand)
