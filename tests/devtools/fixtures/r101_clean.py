"""Fixture: seeded-generator idioms REPRO101 must accept. Never imported."""

import random

import numpy as np


def sample(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.0, 1.0))


seed_sequence = np.random.SeedSequence(1234)
rng = np.random.default_rng(seed_sequence.spawn(1)[0])
legacy_but_seeded = np.random.Generator(np.random.PCG64(7))
stdlib_seeded = random.Random(7)
value = sample(rng)
