"""Fixture: a ``cli.py`` module, where REPRO107 allows print(). Never imported."""


def main() -> int:
    print("CLI output is allowed here")
    return 0
