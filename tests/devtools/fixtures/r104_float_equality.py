"""Fixture: REPRO104 (float-equality) violations. Never imported."""


def checks(cpu_util: float, memory_gb: float, alpha: float) -> bool:
    a = cpu_util == 0.5  # flagged: float literal
    b = memory_gb != 4.0  # flagged: literal and resource name
    c = cpu_util == alpha  # flagged: utilization name
    d = alpha != sized_demand()  # flagged: resource-named callee
    return a or b or c or d


def sized_demand() -> float:
    return 1.0
