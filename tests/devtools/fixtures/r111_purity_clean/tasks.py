"""Task entry point whose helpers stay pure."""

from r111_purity_clean import helpers
from r111_purity_clean.registry import register_task_kind


@register_task_kind("fixture-task")
def run_fixture_task(params, ctx):
    demand = helpers.load_demand(params)
    return helpers.summarize(demand)
