"""Pure task executors (REPRO111 clean fixture)."""
