"""Helpers reachable from the task entry point; all pure."""

import os
import time

_ENV_KEY = "REPRO_FIXTURE_SCALE"


def load_demand(params):
    # Sanctioned: REPRO_* configuration reads stay out of cache keys by
    # design, both as a literal and through a module constant.
    scale = float(os.environ.get(_ENV_KEY, "1.0"))
    floor = float(os.environ.get("REPRO_FIXTURE_FLOOR", "0.0"))
    return [max(v * scale, floor) for v in params["values"]]


def summarize(demand):
    return sum(demand)


def wall_clock_banner():
    # Impure, but unreachable from the task entry point: fine.
    return time.ctime()
