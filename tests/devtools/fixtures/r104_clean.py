"""Fixture: comparisons REPRO104 must accept. Never imported."""

import math

from repro.numerics import approx_eq


def checks(cpu_util: float, memory_gb: float, count: int) -> bool:
    a = approx_eq(cpu_util, 0.5)  # tolerance helper, not ==
    b = math.isclose(memory_gb, 4.0)
    c = count == 0  # int equality is exact
    d = memory_gb == float("inf")  # infinity sentinel is exact
    e = cpu_util <= 0.5  # ordering comparisons are fine
    f = math.inf != memory_gb  # infinity on either side
    return a or b or c or d or e or f
