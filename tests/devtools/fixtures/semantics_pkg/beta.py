"""Imports alpha under aliases; drives the call graph."""

from semantics_pkg.alpha import Engine as Eng
from semantics_pkg import alpha as core


def build(workload):
    engine = Eng()
    return engine.run(workload)


def limit():
    return core.LIMIT_MB


def drive(engine: Eng, workload):
    return engine.run(workload)
