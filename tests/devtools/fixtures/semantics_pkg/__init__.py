"""Mini-package exercised by the semantic-model tests."""

from semantics_pkg.alpha import Engine

__all__ = ["Engine"]
