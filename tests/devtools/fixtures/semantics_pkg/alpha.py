"""Defines the class/function surface the model must index."""

LIMIT_MB = 4096.0


class Engine:
    def run(self, workload):
        prepared = self.prepare(workload)
        return score(prepared)

    def prepare(self, workload):
        return sorted(workload)


def score(items):
    return sum(items)
