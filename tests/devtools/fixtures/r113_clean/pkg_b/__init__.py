"""Consumer package."""
