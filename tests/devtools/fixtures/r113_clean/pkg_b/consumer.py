"""Consumes everything pkg_a exports."""

from pkg_a import live_metric


def run(values):
    return live_metric(values)
