"""Package re-exporting its consumed symbol."""

from pkg_a.metrics import live_metric

__all__ = ["live_metric"]
