"""Every export has a consumer."""

__all__ = ["live_metric"]


def live_metric(values):
    return sum(values) / len(values)
