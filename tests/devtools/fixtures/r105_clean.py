"""Fixture: unit flows REPRO105 must accept. Never imported."""

from dataclasses import dataclass


def reserve(memory_gb: float, cpu_mhz: float) -> float:
    return memory_gb * 2.0 + cpu_mhz / 1000.0


@dataclass
class Demand:
    memory_gb: float
    util_frac: float


def build(memory_mb: float, util_pct: float) -> Demand:
    # Explicit conversions carry no suffix, so they may flow anywhere.
    return Demand(memory_mb / 1024.0, util_pct / 100.0)


def call_sites(memory_gb: float, util_frac: float) -> float:
    sized = reserve(memory_gb=memory_gb, cpu_mhz=2000.0)
    headroom_gb = memory_gb
    over = util_frac > threshold_frac()
    return sized + headroom_gb + float(over)


def threshold_frac() -> float:
    return 0.8
