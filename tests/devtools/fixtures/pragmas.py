"""Fixture: pragma suppression shapes. Never imported.

Line 1 of real violations below is suppressed by rule id, the next by
symbolic name, one by ``all``, and REPRO107 is disabled file-wide.
One unsuppressed violation remains so tests can prove pragmas are
per-rule, not blanket.
"""

# repro-lint: disable-file=stray-print

import numpy as np


def noisy(memory_gb: float) -> bool:
    print("suppressed by the file-level pragma")
    by_id = np.random.rand(3)  # repro-lint: disable=REPRO101
    by_name = memory_gb == 4.0  # repro-lint: disable=float-equality
    by_all = np.random.rand(3)  # repro-lint: disable=all
    remaining = memory_gb != 2.0  # still flagged: pragma names another rule
    wrong_rule = np.random.rand(3)  # repro-lint: disable=REPRO104
    return bool(by_id.any() or by_name or by_all.any() or remaining or wrong_rule.any())
