"""Fixture: signatures REPRO108 must accept. Never imported."""

from typing import List


def sized_demand(cpu: float, memory_gb: float) -> float:
    return cpu + memory_gb


class Planner:
    def plan(self, horizon: int) -> List[int]:
        def helper(x):  # nested functions are exempt
            return x

        return [helper(hour) for hour in range(horizon)]

    def _internal(self, x):  # private methods are exempt
        return x


class _PrivatePlanner:
    def plan(self, horizon):  # private class: exempt
        return horizon
