"""Fixture: REPRO108 (missing-annotations) violations. Never imported.

Lives under a ``core/`` directory because the rule is scoped to the
packages whose signatures ship type information.
"""


def sized_demand(cpu, memory_gb: float):  # flagged: param + return
    return cpu + memory_gb


class Planner:
    def plan(self, horizon):  # flagged: param + return
        return horizon

    def _internal(self, x):  # private: exempt
        return x
