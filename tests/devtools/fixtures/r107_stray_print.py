"""Fixture: REPRO107 (stray-print) violations. Never imported."""


def report(result: object) -> None:
    print(result)  # flagged: library code writes to stdout
    print("done")  # flagged
