"""Meta: the shipped tree satisfies its own lint gate.

This is the CI contract from the issue: ``repro-lint src/repro`` exits
0 with an *empty* baseline — the codebase carries no accepted debt.
"""

import json
from pathlib import Path

from repro.devtools import lint_paths
from repro.devtools.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_shipped_tree_is_lint_clean(capsys):
    exit_code = main([str(SRC)])
    out = capsys.readouterr().out
    assert exit_code == 0, f"repro-lint found violations:\n{out}"
    assert out == ""


def test_shipped_tree_is_clean_even_with_an_empty_baseline(tmp_path, capsys):
    baseline = tmp_path / "empty-baseline.json"
    baseline.write_text(json.dumps({"version": 1, "entries": {}}))
    assert main([str(SRC), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_whole_tree_passes_the_interprocedural_gate(capsys):
    """The second CI gate: the whole-program rules (engine parity,
    cache purity, unit flow, dead exports) hold across src + tests +
    examples + benchmarks with no baseline."""
    exit_code = main(
        [
            str(SRC),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "benchmarks"),
            "--select",
            "REPRO110,REPRO111,REPRO112,REPRO113",
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 0, f"interprocedural gate found violations:\n{out}"


def test_lint_paths_visits_the_whole_library():
    # Guard against discovery silently narrowing (e.g. a glob change
    # dropping subpackages): linting src/repro must parse at least the
    # ~80 modules the library ships today.
    from repro.devtools import discover_files

    files = discover_files([SRC])
    assert len(files) >= 80
    assert lint_paths([SRC]) == []
