"""Baseline files: snapshot existing debt, fail only on new findings."""

import json
from pathlib import Path

from repro.devtools import (
    apply_baseline,
    baseline_counts,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.devtools.cli import main

_VIOLATION = "import numpy as np\nx = np.random.rand(3)\n"


def test_roundtrip_suppresses_recorded_debt(tmp_path: Path):
    module = tmp_path / "module.py"
    module.write_text(_VIOLATION)
    findings = lint_paths([module])
    assert len(findings) == 1

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, findings)
    baseline = load_baseline(baseline_file)
    assert apply_baseline(findings, baseline) == []


def test_new_findings_exceed_the_baseline_budget(tmp_path: Path):
    module = tmp_path / "module.py"
    module.write_text(_VIOLATION)
    baseline = baseline_counts(lint_paths([module]))

    module.write_text(_VIOLATION + "y = np.random.rand(3)\n")
    remaining = apply_baseline(lint_paths([module]), baseline)
    # The earliest finding is absorbed by the budget; the new one stays.
    assert [f.line for f in remaining] == [3]


def test_baseline_is_per_file_and_per_rule(tmp_path: Path):
    module = tmp_path / "module.py"
    module.write_text(_VIOLATION)
    baseline = baseline_counts(lint_paths([module]))

    other = tmp_path / "other.py"
    other.write_text(_VIOLATION)
    remaining = apply_baseline(lint_paths([other]), baseline)
    assert len(remaining) == 1  # other.py's debt was never accepted


def test_cli_write_then_apply_baseline(tmp_path: Path, capsys):
    module = tmp_path / "module.py"
    module.write_text(_VIOLATION)
    baseline_file = tmp_path / "baseline.json"

    assert main([str(module), "--write-baseline", str(baseline_file)]) == 0
    payload = json.loads(baseline_file.read_text())
    assert payload["version"] == 2
    assert sum(
        count for rules in payload["entries"].values() for count in rules.values()
    ) == 1

    capsys.readouterr()
    assert main([str(module), "--baseline", str(baseline_file)]) == 0
    assert capsys.readouterr().out == ""

    assert main([str(module)]) == 1  # without the baseline it still fails


def test_version_1_baselines_still_load(tmp_path: Path):
    """Format 2 changed the path convention, not the schema, so files
    written before the bump must keep working unmodified."""
    module = tmp_path / "module.py"
    module.write_text(_VIOLATION)
    findings = lint_paths([module])

    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(
        json.dumps(
            {"version": 1, "entries": {findings[0].path: {"REPRO101": 1}}}
        )
    )
    assert apply_baseline(findings, load_baseline(baseline_file)) == []


def test_cli_rejects_malformed_baseline(tmp_path: Path, capsys):
    module = tmp_path / "module.py"
    module.write_text("x = 1\n")
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text('{"version": 99}')
    assert main([str(module), "--baseline", str(baseline_file)]) == 2
    assert "baseline" in capsys.readouterr().err
