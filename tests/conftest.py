"""Shared fixtures: tiny deterministic workloads and pools.

Unit tests run on hand-built or very small generated traces; the
calibration/integration tests that need statistically meaningful samples
use the ``small_datacenter``-style fixtures (still well under a second
each to generate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.metrics.catalog import get_model
from repro.workloads.generator import WEB_MODERATE, generate_server_trace
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spec() -> ServerSpec:
    return ServerSpec(cpu_rpe2=3000.0, memory_gb=8.0, model_name="test")


def make_server_trace(
    vm_id: str,
    cpu_util,
    memory_gb,
    *,
    cpu_rpe2: float = 3000.0,
    configured_gb: float = 8.0,
    interval_hours: float = 1.0,
) -> ServerTrace:
    """Hand-built trace helper used across test modules."""
    return ServerTrace(
        vm=VirtualMachine(vm_id=vm_id, memory_config_gb=configured_gb),
        source_spec=ServerSpec(
            cpu_rpe2=cpu_rpe2, memory_gb=configured_gb, model_name="test"
        ),
        cpu_util=ResourceTrace(
            np.asarray(cpu_util, dtype=float),
            interval_hours=interval_hours,
            unit="fraction",
        ),
        memory_gb=ResourceTrace(
            np.asarray(memory_gb, dtype=float),
            interval_hours=interval_hours,
            unit="GB",
        ),
    )


@pytest.fixture
def flat_trace_set() -> TraceSet:
    """Four constant-demand servers over 48 hours: fully predictable."""
    hours = 48
    traces = [
        make_server_trace(
            f"vm{i}",
            np.full(hours, 0.10 + 0.05 * i),
            np.full(hours, 1.0 + 0.5 * i),
        )
        for i in range(4)
    ]
    return TraceSet(name="flat", _traces=traces)


@pytest.fixture
def generated_trace_set(rng) -> TraceSet:
    """A dozen generated servers over 6 days (realistic texture)."""
    hours = 6 * 24
    model = get_model("rack-1u-medium")
    traces = TraceSet(name="generated")
    seeds = np.random.SeedSequence(7).spawn(12)
    for index, seed in enumerate(seeds):
        traces.add(
            generate_server_trace(
                vm_id=f"gen{index}",
                profile=WEB_MODERATE,
                source_model=model,
                n_hours=hours,
                rng=np.random.default_rng(seed),
            )
        )
    return traces


@pytest.fixture
def small_pool() -> Datacenter:
    """Ten HS23 blades in two racks."""
    return build_target_pool("pool", host_count=10, hosts_per_rack=5)


@pytest.fixture
def tiny_pool() -> Datacenter:
    """Two small hosts for exact-fit packing tests."""
    dc = Datacenter(name="tiny")
    for index in range(2):
        dc.add_host(
            PhysicalServer(
                host_id=f"tiny-h{index}",
                spec=ServerSpec(cpu_rpe2=1000.0, memory_gb=10.0),
                rack=f"rack{index}",
                subnet=f"net{index}",
            )
        )
    return dc
