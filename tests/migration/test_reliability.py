"""Tests for the reservation/reliability study (Observation 4)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.paper_targets import MIGRATION_RESERVATION
from repro.migration.reliability import (
    recommended_reservation,
    reliability_sweep,
)


class TestReliabilitySweep:
    def test_success_degrades_with_utilization(self):
        points = reliability_sweep([0.5, 0.8, 0.95], n_migrations=80)
        rates = [p.success_rate for p in points]
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[0] == 1.0
        assert rates[2] < 0.5

    def test_duration_grows_with_utilization(self):
        points = reliability_sweep([0.5, 0.9], n_migrations=80)
        assert points[1].mean_duration_s > points[0].mean_duration_s

    def test_deterministic_given_seed(self):
        a = reliability_sweep([0.7], n_migrations=50, seed=3)
        b = reliability_sweep([0.7], n_migrations=50, seed=3)
        assert a == b

    def test_memory_tracking_toggle(self):
        tracked = reliability_sweep(
            [0.95], n_migrations=80, memory_tracks_cpu=True
        )[0]
        untracked = reliability_sweep(
            [0.95], n_migrations=80, memory_tracks_cpu=False
        )[0]
        assert untracked.host_memory_util == 0.5
        assert tracked.success_rate <= untracked.success_rate

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reliability_sweep([1.5])
        with pytest.raises(ConfigurationError):
            reliability_sweep([0.5], n_migrations=0)


class TestObservation4:
    def test_recommended_reservation_matches_paper(self):
        reservation = recommended_reservation()
        low, high = MIGRATION_RESERVATION
        assert low <= reservation <= high

    def test_stricter_bar_reserves_more(self):
        lenient = recommended_reservation(max_p99_duration_s=400.0)
        strict = recommended_reservation(max_p99_duration_s=120.0)
        assert strict >= lenient

    def test_granularity_validation(self):
        with pytest.raises(ConfigurationError):
            recommended_reservation(granularity=0.0)
