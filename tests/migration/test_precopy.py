"""Tests for the pre-copy live-migration simulator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.migration.precopy import (
    MigrationOutcome,
    PreCopyConfig,
    simulate_migration,
)


class TestBasicBehaviour:
    def test_quiet_vm_single_round(self):
        outcome = simulate_migration(1.0, 0.0, host_cpu_util=0.3)
        assert outcome.success
        assert outcome.rounds == 1
        assert outcome.overhead_factor == pytest.approx(1.0)
        # ~1 GB over ~110 MB/s: around 10 seconds.
        assert 5 < outcome.duration_s < 20

    def test_clark_scale_numbers(self):
        # Clark et al. report ~60 s migrations with sub-second downtime
        # for SpecWeb-class VMs; the simulator lands in that regime.
        outcome = simulate_migration(2.0, 20.0, host_cpu_util=0.5)
        assert outcome.success
        assert 10 < outcome.duration_s < 90
        assert outcome.downtime_s < 1.0

    def test_dirtier_vm_takes_longer(self):
        quiet = simulate_migration(2.0, 5.0, host_cpu_util=0.5)
        dirty = simulate_migration(2.0, 40.0, host_cpu_util=0.5)
        assert dirty.duration_s > quiet.duration_s
        assert dirty.copied_mb > quiet.copied_mb

    def test_bigger_vm_takes_longer(self):
        small = simulate_migration(1.0, 10.0)
        big = simulate_migration(8.0, 10.0)
        assert big.duration_s > small.duration_s

    def test_writable_set_exceeding_bandwidth_fails(self):
        config = PreCopyConfig(bandwidth_mb_s=50.0)
        outcome = simulate_migration(2.0, 60.0, config=config)
        assert not outcome.success


class TestHostLoadEffects:
    def test_cpu_pressure_degrades_throughput(self):
        cool = simulate_migration(2.0, 20.0, host_cpu_util=0.5)
        hot = simulate_migration(2.0, 20.0, host_cpu_util=0.9)
        assert hot.effective_bandwidth_mb_s < cool.effective_bandwidth_mb_s
        assert hot.duration_s > cool.duration_s

    def test_reliability_cliff_matches_paper(self):
        # Paper §4.3: reliable below 80% CPU / 85% memory commit.
        ok = simulate_migration(
            2.0, 20.0, host_cpu_util=0.75, host_memory_util=0.80
        )
        bad = simulate_migration(
            2.0, 60.0, host_cpu_util=0.95, host_memory_util=0.95
        )
        assert ok.success
        assert not bad.success

    def test_memory_pressure_inflates_dirty_rate(self):
        low = simulate_migration(2.0, 30.0, host_memory_util=0.5)
        high = simulate_migration(2.0, 30.0, host_memory_util=0.98)
        assert high.rounds > low.rounds

    def test_below_knee_memory_has_no_effect(self):
        a = simulate_migration(2.0, 30.0, host_memory_util=0.2)
        b = simulate_migration(2.0, 30.0, host_memory_util=0.84)
        assert a.duration_s == pytest.approx(b.duration_s)


class TestValidation:
    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            simulate_migration(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            simulate_migration(1.0, -5.0)
        with pytest.raises(ConfigurationError):
            simulate_migration(1.0, 5.0, host_cpu_util=1.5)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PreCopyConfig(bandwidth_mb_s=0.0)
        with pytest.raises(ConfigurationError):
            PreCopyConfig(max_rounds=0)
        with pytest.raises(ConfigurationError):
            PreCopyConfig(cpu_demand_frac=1.5)
