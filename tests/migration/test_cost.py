"""Tests for the migration cost model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.migration.cost import MigrationCostModel


class TestMigrationCostModel:
    def test_cost_positive_and_grows_with_memory(self):
        model = MigrationCostModel()
        small = model.cost_wh(1.0)
        big = model.cost_wh(8.0)
        assert 0 < small < big

    def test_duration_grows_with_memory(self):
        model = MigrationCostModel()
        assert model.migration_duration_s(8.0) > model.migration_duration_s(
            1.0
        )

    def test_cost_magnitude_sensible(self):
        # One 2 GB migration should cost far less than running an idle
        # HS23 blade (160 W) for a 2 h interval (320 Wh) — otherwise
        # dynamic consolidation could never pay for itself.
        model = MigrationCostModel()
        assert model.cost_wh(2.0) < 320.0 / 10

    def test_sla_component_dominates_when_priced_high(self):
        cheap = MigrationCostModel(sla_cost_per_second=0.0)
        pricey = MigrationCostModel(sla_cost_per_second=1.0)
        assert pricey.cost_wh(2.0) > cheap.cost_wh(2.0) * 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel(migration_power_watts=-1.0)
        with pytest.raises(ConfigurationError):
            MigrationCostModel(sla_cost_per_second=-0.1)
