"""Tests for the migration-technology what-if study (paper §7)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.migration.whatif import (
    MIGRATION_VARIANTS,
    get_variant,
    reservation_for_variant,
    reservation_ladder,
)


class TestVariants:
    def test_ladder_covers_papers_suggestions(self):
        keys = {v.key for v in MIGRATION_VARIANTS}
        assert {"baseline-1gbe", "10gbe", "target-offload", "rdma"} <= keys

    def test_get_variant(self):
        assert get_variant("rdma").config.cpu_demand_frac < (
            get_variant("baseline-1gbe").config.cpu_demand_frac
        )
        with pytest.raises(ConfigurationError):
            get_variant("quantum-teleport")


class TestReservationLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        return dict(reservation_ladder())

    def test_baseline_matches_observation4(self, ladder):
        assert 0.15 <= ladder["baseline-1gbe"] <= 0.30

    def test_every_improvement_reduces_or_holds(self, ladder):
        baseline = ladder["baseline-1gbe"]
        for key in ("10gbe", "target-offload", "rdma"):
            assert ladder[key] <= baseline

    def test_rdma_is_best_or_tied(self, ladder):
        assert ladder["rdma"] == min(ladder.values())

    def test_single_variant_query_consistent(self, ladder):
        assert reservation_for_variant("10gbe") == ladder["10gbe"]
