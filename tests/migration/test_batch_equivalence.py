"""Batched migration simulation == looped ``simulate_migration``.

``simulate_migrations`` advances all lanes through the pre-copy rounds
with the same elementwise arithmetic as the scalar simulator, so every
outcome (success flag, duration, downtime, rounds, bytes copied) must
be equal — not approximately, exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.migration.cost import MigrationCostModel
from repro.migration.precopy import (
    PreCopyConfig,
    simulate_migration,
    simulate_migrations,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False


def _assert_batch_matches(
    memories, dirty_rates, cpu_utils, mem_utils, config
) -> None:
    batch = simulate_migrations(
        memories,
        dirty_rates,
        host_cpu_util=cpu_utils,
        host_memory_util=mem_utils,
        config=config,
    )
    assert len(batch) == len(memories)
    for i, outcome in enumerate(batch):
        reference = simulate_migration(
            memories[i],
            dirty_rates[i],
            host_cpu_util=cpu_utils[i],
            host_memory_util=mem_utils[i],
            config=config,
        )
        assert outcome == reference, i


@pytest.mark.parametrize(
    "config",
    [
        PreCopyConfig(),
        # Tight budgets force the timeout and non-convergence exits.
        PreCopyConfig(max_duration_s=15.0, max_rounds=4),
        PreCopyConfig(min_round_shrink=0.5, stop_threshold_mb=8.0),
    ],
    ids=["default", "tight-budget", "strict-shrink"],
)
def test_batch_matches_loop_random(config) -> None:
    rng = random.Random(repr(config))
    for _ in range(10):
        n = rng.randint(1, 60)
        memories = [rng.uniform(0.25, 32.0) for _ in range(n)]
        dirty_rates = [rng.uniform(0.0, 200.0) for _ in range(n)]
        cpu_utils = [rng.uniform(0.0, 1.0) for _ in range(n)]
        mem_utils = [rng.uniform(0.0, 1.0) for _ in range(n)]
        _assert_batch_matches(
            memories, dirty_rates, cpu_utils, mem_utils, config
        )


def test_scalar_utilizations_broadcast() -> None:
    batch = simulate_migrations(
        [2.0, 4.0, 8.0], [20.0, 40.0, 5.0],
        host_cpu_util=0.8, host_memory_util=0.9,
    )
    for memory, dirty, outcome in zip(
        [2.0, 4.0, 8.0], [20.0, 40.0, 5.0], batch
    ):
        assert outcome == simulate_migration(
            memory, dirty, host_cpu_util=0.8, host_memory_util=0.9
        )


def test_empty_batch() -> None:
    assert simulate_migrations([], []) == []


def test_batch_validation_matches_scalar_messages() -> None:
    with pytest.raises(ConfigurationError) as batch_error:
        simulate_migrations([2.0, -1.0], [10.0, 10.0])
    with pytest.raises(ConfigurationError) as scalar_error:
        simulate_migration(-1.0, 10.0)
    assert str(batch_error.value) == str(scalar_error.value)
    with pytest.raises(ConfigurationError):
        simulate_migrations([2.0], [10.0, 20.0])
    with pytest.raises(ConfigurationError):
        simulate_migrations([2.0, 3.0], [10.0, 20.0], host_cpu_util=[0.5])


def test_cost_model_batch_matches_scalar() -> None:
    model = MigrationCostModel()
    memories = [0.0, 0.5, 2.0, 7.5, 64.0]
    costs = model.costs_wh(memories)
    assert costs == [model.cost_wh(m) for m in memories]
    assert model.costs_wh([]) == []


if HAVE_HYPOTHESIS:

    @given(
        data=st.data(),
        n=st.integers(1, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_batch_matches_loop(data, n):
        memories = data.draw(
            st.lists(st.floats(1e-3, 64.0), min_size=n, max_size=n)
        )
        dirty_rates = data.draw(
            st.lists(st.floats(0.0, 500.0), min_size=n, max_size=n)
        )
        cpu_utils = data.draw(
            st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n)
        )
        mem_utils = data.draw(
            st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n)
        )
        config = data.draw(
            st.sampled_from(
                [
                    PreCopyConfig(),
                    PreCopyConfig(max_duration_s=10.0, max_rounds=3),
                ]
            )
        )
        _assert_batch_matches(
            memories, dirty_rates, cpu_utils, mem_utils, config
        )
