"""Property-based tests for the live-migration simulator (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.migration.precopy import PreCopyConfig, simulate_migration

vm_memory = st.floats(0.1, 32.0)
dirty_rate = st.floats(0.0, 80.0)
utilization = st.floats(0.0, 1.0)


@given(memory=vm_memory, dirty=dirty_rate, cpu=utilization, mem=utilization)
@settings(max_examples=80, deadline=None)
def test_outcome_physically_sane(memory, dirty, cpu, mem):
    outcome = simulate_migration(
        memory, dirty, host_cpu_util=cpu, host_memory_util=mem
    )
    assert outcome.duration_s > 0
    assert outcome.downtime_s >= 0
    assert outcome.rounds >= 1
    assert outcome.copied_mb >= memory * 1024 - 1e-6
    assert outcome.overhead_factor >= 1.0 - 1e-9
    assert outcome.effective_bandwidth_mb_s > 0


@given(memory=vm_memory, dirty=dirty_rate, mem=utilization)
@settings(max_examples=60, deadline=None)
def test_cpu_pressure_never_helps(memory, dirty, mem):
    low = simulate_migration(
        memory, dirty, host_cpu_util=0.3, host_memory_util=mem
    )
    high = simulate_migration(
        memory, dirty, host_cpu_util=0.9, host_memory_util=mem
    )
    # Success can only be lost, never gained, under CPU pressure.
    assert low.success or not high.success
    if high.success:
        # When both complete, the pressured one cannot be faster.
        # (Aborted migrations all cluster at the operator timeout, so
        # their reported durations are not comparable.)
        assert high.duration_s >= low.duration_s - 1e-9


@given(dirty=dirty_rate, cpu=st.floats(0.0, 0.6))
@settings(max_examples=60, deadline=None)
def test_duration_monotone_in_vm_memory(dirty, cpu):
    small = simulate_migration(0.5, dirty, host_cpu_util=cpu)
    large = simulate_migration(8.0, dirty, host_cpu_util=cpu)
    assert large.duration_s >= small.duration_s


@given(memory=vm_memory, cpu=st.floats(0.0, 0.5))
@settings(max_examples=60, deadline=None)
def test_quiet_vm_always_succeeds_on_cool_host(memory, cpu):
    # Zero dirty rate on an unloaded host must converge in one round
    # unless the VM is so large it hits the operator timeout.
    config = PreCopyConfig(max_duration_s=3600.0)
    outcome = simulate_migration(
        memory, 0.0, host_cpu_util=cpu, config=config
    )
    assert outcome.success
    assert outcome.rounds == 1


@given(memory=vm_memory, dirty=dirty_rate)
@settings(max_examples=40, deadline=None)
def test_failed_migrations_are_expensive_not_free(memory, dirty):
    # Whatever happens, the simulator never reports a failed migration
    # with less work than a clean success of the same VM.
    outcome = simulate_migration(
        memory, dirty, host_cpu_util=0.97, host_memory_util=0.97
    )
    if not outcome.success:
        assert outcome.copied_mb >= memory * 1024 - 1e-6
