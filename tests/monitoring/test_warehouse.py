"""Tests for the monitoring data warehouse."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.monitoring.agent import MonitoringAgent
from repro.monitoring.warehouse import DataWarehouse
from tests.conftest import make_server_trace


def _trace(vm_id, hours=72, seed=0):
    rng = np.random.default_rng(seed)
    return make_server_trace(
        vm_id, 0.05 + 0.2 * rng.random(hours), 1.0 + rng.random(hours)
    )


class TestIngest:
    def test_aggregation_matches_ground_truth(self):
        trace = _trace("a")
        warehouse = DataWarehouse()
        record = warehouse.ingest_agent(MonitoringAgent(trace, seed=1))
        assert np.allclose(
            record.hourly_cpu_util, trace.cpu_util.values, atol=1e-12
        )
        assert record.completeness() == 1.0

    def test_duplicate_ingest_rejected(self):
        trace = _trace("a")
        warehouse = DataWarehouse()
        warehouse.ingest_agent(MonitoringAgent(trace, seed=1))
        with pytest.raises(ConfigurationError, match="already"):
            warehouse.ingest_agent(MonitoringAgent(trace, seed=1))

    def test_retention_trims_old_hours(self):
        trace = _trace("a", hours=40 * 24)
        warehouse = DataWarehouse(retention_days=30)
        record = warehouse.ingest_agent(MonitoringAgent(trace, seed=1))
        assert record.n_hours == 30 * 24
        # The *most recent* 30 days are kept.
        assert np.allclose(
            record.hourly_cpu_util,
            trace.cpu_util.values[-30 * 24:],
            atol=1e-12,
        )

    def test_drops_reduce_completeness(self):
        trace = _trace("a")
        warehouse = DataWarehouse()
        record = warehouse.ingest_agent(
            MonitoringAgent(trace, seed=1, drop_probability=0.25)
        )
        assert 0.6 < record.completeness() < 0.85

    def test_lookup(self):
        warehouse = DataWarehouse()
        warehouse.ingest_agent(MonitoringAgent(_trace("a"), seed=1))
        assert "a" in warehouse
        assert warehouse.completeness("a") == 1.0
        with pytest.raises(TraceError):
            warehouse.record("ghost")


class TestExport:
    def _loaded_warehouse(self):
        warehouse = DataWarehouse()
        warehouse.ingest_agent(MonitoringAgent(_trace("ok", seed=1), seed=1))
        warehouse.ingest_agent(
            MonitoringAgent(_trace("patchy", seed=2), seed=2,
                            drop_probability=0.4)
        )
        warehouse.ingest_agent(
            MonitoringAgent(_trace("no-spec", seed=3), seed=3),
            spec_available=False,
        )
        return warehouse

    def test_filtering_per_paper(self):
        # §3.2: exclude servers without monitoring data or specs.
        warehouse = self._loaded_warehouse()
        exported, excluded = warehouse.export_trace_set(
            "plan", min_completeness=0.9
        )
        assert exported.vm_ids == ("ok",)
        assert set(excluded) == {"patchy", "no-spec"}

    def test_lenient_completeness_keeps_patchy(self):
        warehouse = self._loaded_warehouse()
        exported, excluded = warehouse.export_trace_set(
            "plan", min_completeness=0.5
        )
        assert "patchy" in exported
        assert excluded == ("no-spec",)

    def test_exported_traces_are_plannable(self):
        warehouse = self._loaded_warehouse()
        exported, _ = warehouse.export_trace_set("plan")
        trace = exported.trace("ok")
        assert trace.interval_hours == 1.0
        assert trace.source_spec is not None

    def test_validation(self):
        warehouse = self._loaded_warehouse()
        with pytest.raises(ConfigurationError):
            warehouse.export_trace_set("plan", min_completeness=0.0)
        with pytest.raises(ConfigurationError):
            DataWarehouse(retention_days=0)
