"""Tests for the per-server monitoring agent."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.monitoring.agent import (
    MINUTES_PER_HOUR,
    IntraHourModel,
    MonitoringAgent,
)
from tests.conftest import make_server_trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(5)
    hours = 96
    return make_server_trace(
        "mon-vm",
        0.05 + 0.3 * rng.random(hours),
        1.0 + 0.2 * rng.random(hours),
    )


class TestMinuteGeneration:
    def test_shapes(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        assert agent.minute_cpu_util().shape == (96, MINUTES_PER_HOUR)
        assert agent.minute_memory_gb().shape == (96, MINUTES_PER_HOUR)

    def test_hourly_mean_preserved_exactly(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        hourly = agent.minute_cpu_util().mean(axis=1)
        assert np.allclose(hourly, trace.cpu_util.values, atol=1e-12)

    def test_minutes_bounded(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        minutes = agent.minute_cpu_util()
        assert minutes.min() >= 0.0
        assert minutes.max() <= 1.0

    def test_deterministic_across_instances(self, trace):
        a = MonitoringAgent(trace, seed=3).minute_cpu_util()
        b = MonitoringAgent(trace, seed=3).minute_cpu_util()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, trace):
        a = MonitoringAgent(trace, seed=3).minute_cpu_util()
        b = MonitoringAgent(trace, seed=4).minute_cpu_util()
        assert not np.array_equal(a, b)

    def test_memory_quieter_than_cpu(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        cpu_rel = agent.minute_cpu_util() / trace.cpu_util.values[:, None]
        mem_rel = (
            agent.minute_memory_gb() / trace.memory_gb.values[:, None]
        )
        assert mem_rel.std() < cpu_rel.std()

    def test_non_hourly_trace_rejected(self):
        coarse = make_server_trace(
            "c", [0.1, 0.2], [1.0, 1.0], interval_hours=2.0
        )
        with pytest.raises(ConfigurationError, match="hourly"):
            MonitoringAgent(coarse)


class TestSampleDrops:
    def test_no_drops_by_default(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        assert not agent.dropped_mask().any()

    def test_drop_rate_approximate(self, trace):
        agent = MonitoringAgent(trace, seed=3, drop_probability=0.2)
        rate = agent.dropped_mask().mean()
        assert 0.15 < rate < 0.25

    def test_invalid_drop_probability(self, trace):
        with pytest.raises(ConfigurationError):
            MonitoringAgent(trace, drop_probability=1.0)


class TestRecords:
    def test_records_skip_dropped_minutes(self, trace):
        agent = MonitoringAgent(trace, seed=3, drop_probability=0.3)
        records = list(agent.records_for_hour(0))
        expected = int((~agent.dropped_mask()[0]).sum())
        assert len(records) == expected

    def test_record_fields_consistent(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        record = next(agent.records_for_hour(5))
        assert record.vm_id == "mon-vm"
        assert record.pct_priv + record.pct_user == pytest.approx(
            record.cpu_pct
        )
        assert 0 <= record.cpu_pct <= 100
        assert record.memory_committed_mb > 0

    def test_hour_range_checked(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        with pytest.raises(ConfigurationError):
            list(agent.records_for_hour(96))


class TestBurstPremium:
    def test_premium_at_least_one(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        mean, p95 = agent.burst_premium(window_hours=2)
        assert mean >= 1.0
        assert p95 >= mean

    def test_default_model_grounds_burst_factor(self, trace):
        # DESIGN.md §4.0.3: dynamic's cpu_burst_factor (1.12) sits inside
        # the premium range the monitoring substrate measures.
        agent = MonitoringAgent(trace, seed=3)
        mean, _ = agent.burst_premium(window_hours=2)
        assert 1.05 <= mean <= 1.35

    def test_heavier_texture_bigger_premium(self, trace):
        quiet = MonitoringAgent(
            trace, model=IntraHourModel(lognormal_sigma=0.02), seed=3
        )
        noisy = MonitoringAgent(
            trace, model=IntraHourModel(lognormal_sigma=0.3), seed=3
        )
        assert noisy.burst_premium(2)[0] > quiet.burst_premium(2)[0]

    def test_window_validation(self, trace):
        agent = MonitoringAgent(trace, seed=3)
        with pytest.raises(ConfigurationError):
            agent.burst_premium(window_hours=0)
