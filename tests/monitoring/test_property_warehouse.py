"""Property-based tests for the monitoring pipeline (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.monitoring.agent import IntraHourModel, MonitoringAgent
from repro.monitoring.warehouse import DataWarehouse
from tests.conftest import make_server_trace

hourly_utils = st.lists(
    st.floats(0.01, 0.7), min_size=24, max_size=96
)


@given(utils=hourly_utils, seed=st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_aggregation_recovers_ground_truth(utils, seed):
    """No drops: warehouse hourly means equal the ground truth exactly."""
    trace = make_server_trace(
        "p", np.array(utils), np.full(len(utils), 1.5)
    )
    warehouse = DataWarehouse()
    record = warehouse.ingest_agent(MonitoringAgent(trace, seed=seed))
    assert np.allclose(
        record.hourly_cpu_util, trace.cpu_util.values, atol=1e-10
    )
    assert record.completeness() == 1.0


@given(
    utils=hourly_utils,
    seed=st.integers(0, 10**6),
    drop=st.floats(0.0, 0.6),
)
@settings(max_examples=40, deadline=None)
def test_completeness_tracks_drops(utils, seed, drop):
    trace = make_server_trace(
        "p", np.array(utils), np.full(len(utils), 1.5)
    )
    agent = MonitoringAgent(trace, seed=seed, drop_probability=drop)
    warehouse = DataWarehouse()
    record = warehouse.ingest_agent(agent)
    expected = 1.0 - agent.dropped_mask().mean()
    assert record.completeness() == pytest.approx(float(expected))


@given(
    utils=hourly_utils,
    seed=st.integers(0, 10**6),
    sigma=st.floats(0.0, 0.4),
)
@settings(max_examples=40, deadline=None)
def test_minutes_bounded_for_any_texture(utils, seed, sigma):
    trace = make_server_trace(
        "p", np.array(utils), np.full(len(utils), 1.5)
    )
    agent = MonitoringAgent(
        trace,
        model=IntraHourModel(lognormal_sigma=sigma),
        seed=seed,
    )
    minutes = agent.minute_cpu_util()
    assert minutes.min() >= 0.0
    assert minutes.max() <= 1.0
    # Premium is never below 1 regardless of texture.
    assert agent.burst_premium(2)[0] >= 1.0 - 1e-9
