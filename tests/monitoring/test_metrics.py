"""Tests for the Table-1 metric catalog."""

import pytest

from repro.exceptions import ConfigurationError
from repro.monitoring.metrics import (
    CPU_TOTAL,
    MEMORY_COMMITTED,
    TABLE1_METRICS,
    get_metric,
    planning_metrics,
)


class TestTable1Catalog:
    def test_eleven_metrics_like_the_paper(self):
        assert len(TABLE1_METRICS) == 11

    def test_keys_unique(self):
        keys = [m.key for m in TABLE1_METRICS]
        assert len(set(keys)) == len(keys)

    def test_planning_metrics_are_cpu_and_memory(self):
        assert planning_metrics() == (CPU_TOTAL, MEMORY_COMMITTED)

    def test_lookup(self):
        assert get_metric("pages_per_sec").unit == "pages/s"
        with pytest.raises(ConfigurationError):
            get_metric("gpu_util")

    def test_definitions_carry_paper_descriptions(self):
        assert get_metric("dasd_pct_free").description == (
            "% time DAS Device is free"
        )
