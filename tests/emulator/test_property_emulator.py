"""Property-based tests for the emulator (hypothesis).

The load-bearing invariant: replay conserves demand.  However VMs are
shuffled across hosts and intervals, the summed demand equals the summed
traces (with overhead), and every active flag matches having >= 1 VM.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.schedule import PlacementSchedule
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.placement.plan import Placement
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace

N_VMS = 5
N_HOSTS = 4
N_HOURS = 8


def _pool():
    dc = Datacenter(name="prop")
    for index in range(N_HOSTS):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(cpu_rpe2=1000.0, memory_gb=64.0),
            )
        )
    return dc


@st.composite
def random_schedules(draw):
    """Random traces plus a random 2-segment schedule over them."""
    cpu = draw(
        st.lists(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False), min_size=N_HOURS,
                max_size=N_HOURS,
            ),
            min_size=N_VMS,
            max_size=N_VMS,
        )
    )
    assignment_a = {
        f"vm{i}": f"h{draw(st.integers(0, N_HOSTS - 1))}"
        for i in range(N_VMS)
    }
    assignment_b = {
        f"vm{i}": f"h{draw(st.integers(0, N_HOSTS - 1))}"
        for i in range(N_VMS)
    }
    return cpu, assignment_a, assignment_b


@given(data=random_schedules())
@settings(max_examples=50, deadline=None)
def test_demand_conserved_under_any_schedule(data):
    cpu_rows, assignment_a, assignment_b = data
    traces = TraceSet(name="prop")
    for index, row in enumerate(cpu_rows):
        traces.add(
            make_server_trace(
                f"vm{index}",
                np.array(row),
                np.full(N_HOURS, 1.0),
                cpu_rpe2=1000.0,
            )
        )
    emulator = ConsolidationEmulator(
        trace_set=traces,
        datacenter=_pool(),
        overhead=VirtualizationOverhead(
            cpu_overhead_frac=0.0, memory_overhead_gb=0.0
        ),
    )
    schedule = PlacementSchedule.periodic(
        [Placement(assignment_a), Placement(assignment_b)], N_HOURS / 2
    )
    result = emulator.evaluate(schedule)
    assert result.cpu_demand.sum() == pytest.approx(
        traces.cpu_rpe2_matrix().sum(), rel=1e-12
    )
    assert result.memory_demand.sum() == pytest.approx(
        traces.memory_gb_matrix().sum(), rel=1e-12
    )


@given(data=random_schedules())
@settings(max_examples=50, deadline=None)
def test_activity_matches_assignment(data):
    cpu_rows, assignment_a, assignment_b = data
    traces = TraceSet(name="prop")
    for index, row in enumerate(cpu_rows):
        traces.add(
            make_server_trace(
                f"vm{index}",
                np.array(row),
                np.full(N_HOURS, 1.0),
            )
        )
    emulator = ConsolidationEmulator(trace_set=traces, datacenter=_pool())
    schedule = PlacementSchedule.periodic(
        [Placement(assignment_a), Placement(assignment_b)], N_HOURS / 2
    )
    result = emulator.evaluate(schedule)
    host_row = {h: i for i, h in enumerate(result.host_ids)}
    half = N_HOURS // 2
    for assignment, hours in (
        (assignment_a, range(0, half)),
        (assignment_b, range(half, N_HOURS)),
    ):
        used = set(assignment.values())
        for host_id, row in host_row.items():
            for hour in hours:
                assert result.active[row, hour] == (host_id in used)
    # Power flows only on active host-hours.
    assert (result.power_watts[~result.active] == 0).all()
    assert (result.power_watts[result.active] > 0).all()
