"""Tests for the consolidation emulator."""

import numpy as np
import pytest

from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.placement.plan import Placement
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def two_vm_set():
    ts = TraceSet(name="two")
    ts.add(
        make_server_trace(
            "a", [0.1, 0.2, 0.3, 0.4], [1.0, 1.0, 2.0, 2.0], cpu_rpe2=1000
        )
    )
    ts.add(
        make_server_trace(
            "b", [0.4, 0.3, 0.2, 0.1], [2.0, 2.0, 1.0, 1.0], cpu_rpe2=1000
        )
    )
    return ts


@pytest.fixture
def no_overhead():
    return VirtualizationOverhead(
        cpu_overhead_frac=0.0, memory_overhead_gb=0.0, dedup_savings_frac=0.0
    )


class TestDemandAccounting:
    def test_demand_sums_colocated_vms(self, two_vm_set, tiny_pool, no_overhead):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool, overhead=no_overhead
        )
        schedule = PlacementSchedule.static(
            Placement({"a": "tiny-h0", "b": "tiny-h0"}), 4
        )
        result = emulator.evaluate(schedule, scheme="test")
        assert result.host_ids == ("tiny-h0",)
        # Both VMs on one host: demand = sum of the two traces.
        assert np.allclose(result.cpu_demand[0], [500, 500, 500, 500])
        assert np.allclose(result.memory_demand[0], [3.0, 3.0, 3.0, 3.0])

    def test_overhead_applied(self, two_vm_set, tiny_pool):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set,
            datacenter=tiny_pool,
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.1, memory_overhead_gb=0.5
            ),
        )
        schedule = PlacementSchedule.static(
            Placement({"a": "tiny-h0", "b": "tiny-h0"}), 4
        )
        result = emulator.evaluate(schedule)
        assert np.allclose(result.cpu_demand[0], np.full(4, 550.0))
        assert np.allclose(result.memory_demand[0], np.full(4, 4.0))

    def test_dedup_reduces_memory(self, two_vm_set, tiny_pool):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set,
            datacenter=tiny_pool,
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.0,
                memory_overhead_gb=0.0,
                dedup_savings_frac=0.5,
            ),
        )
        schedule = PlacementSchedule.static(
            Placement({"a": "tiny-h0", "b": "tiny-h0"}), 4
        )
        result = emulator.evaluate(schedule)
        assert np.allclose(result.memory_demand[0], np.full(4, 1.5))

    def test_schedule_switches_assignments(
        self, two_vm_set, tiny_pool, no_overhead
    ):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool, overhead=no_overhead
        )
        schedule = PlacementSchedule.periodic(
            [
                Placement({"a": "tiny-h0", "b": "tiny-h0"}),
                Placement({"a": "tiny-h0", "b": "tiny-h1"}),
            ],
            2.0,
        )
        result = emulator.evaluate(schedule)
        # First two hours: everything on h0; last two: b on h1.
        assert np.allclose(result.cpu_demand[0], [500, 500, 300, 400])
        assert np.allclose(result.cpu_demand[1], [0, 0, 200, 100])
        assert list(result.active[1]) == [False, False, True, True]


class TestPowerAccounting:
    def test_inactive_hosts_draw_nothing(
        self, two_vm_set, tiny_pool, no_overhead
    ):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool, overhead=no_overhead
        )
        schedule = PlacementSchedule.periodic(
            [
                Placement({"a": "tiny-h0", "b": "tiny-h1"}),
                Placement({"a": "tiny-h0", "b": "tiny-h0"}),
            ],
            2.0,
        )
        result = emulator.evaluate(schedule)
        assert (result.power_watts[1, 2:] == 0).all()
        assert (result.power_watts[:, :2] > 0).all()

    def test_energy_positive(self, two_vm_set, tiny_pool, no_overhead):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool, overhead=no_overhead
        )
        schedule = PlacementSchedule.static(
            Placement({"a": "tiny-h0", "b": "tiny-h0"}), 4
        )
        result = emulator.evaluate(schedule)
        assert result.energy_kwh > 0


class TestValidation:
    def test_unknown_vm_rejected(self, two_vm_set, tiny_pool):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool
        )
        schedule = PlacementSchedule.static(Placement({"zz": "tiny-h0"}), 4)
        with pytest.raises(EmulationError, match="unknown VM"):
            emulator.evaluate(schedule)

    def test_unknown_host_rejected(self, two_vm_set, tiny_pool):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool
        )
        schedule = PlacementSchedule.static(Placement({"a": "ghost"}), 4)
        with pytest.raises(EmulationError, match="unknown host"):
            emulator.evaluate(schedule)

    def test_schedule_longer_than_traces_rejected(
        self, two_vm_set, tiny_pool
    ):
        emulator = ConsolidationEmulator(
            trace_set=two_vm_set, datacenter=tiny_pool
        )
        schedule = PlacementSchedule.static(Placement({"a": "tiny-h0"}), 99)
        with pytest.raises(EmulationError, match="cover"):
            emulator.evaluate(schedule)

    def test_non_hourly_traces_rejected(self, tiny_pool):
        ts = TraceSet(name="coarse")
        ts.add(
            make_server_trace("a", [0.1, 0.2], [1.0, 1.0], interval_hours=2.0)
        )
        with pytest.raises(EmulationError, match="hourly"):
            ConsolidationEmulator(trace_set=ts, datacenter=tiny_pool)
