"""Tests for the emulator verification harness (paper §5.2)."""

import pytest

from repro.emulator.verification import (
    DAXPY_MODEL,
    RUBIS_MODEL,
    WorkloadResourceModel,
    verify_emulator_accuracy,
)
from repro.exceptions import ConfigurationError


class TestResourceModels:
    def test_rubis_inversion_quantizes(self):
        intensity = RUBIS_MODEL.intensity_for_cpu(0.5)
        assert intensity == round(intensity)

    def test_daxpy_inversion_continuous(self):
        intensity = DAXPY_MODEL.intensity_for_cpu(0.5)
        # Exact inversion for the linear kernel.
        assert DAXPY_MODEL.cpu_at(intensity) == pytest.approx(0.5)

    def test_inversion_capped_at_max_intensity(self):
        assert RUBIS_MODEL.intensity_for_cpu(10.0) == RUBIS_MODEL.max_intensity

    def test_monotone_curves(self):
        for model in (RUBIS_MODEL, DAXPY_MODEL):
            assert model.cpu_at(20) > model.cpu_at(10)
            assert model.memory_at(20) > model.memory_at(10)

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadResourceModel(
                name="bad", cpu_per_unit=0.0, cpu_exponent=1.0,
                memory_per_unit=1.0, memory_exponent=1.0,
                integral_intensity=False, control_noise_sigma=0.01,
                max_intensity=10.0,
            )


class TestVerification:
    def test_paper_error_bounds(self):
        # "99 percentile error bound ... is 5% for RuBIS and 2% for daxpy".
        rubis = verify_emulator_accuracy(RUBIS_MODEL)
        daxpy = verify_emulator_accuracy(DAXPY_MODEL)
        assert rubis.within(0.05)
        assert daxpy.within(0.02)

    def test_interactive_workload_noisier(self):
        rubis = verify_emulator_accuracy(RUBIS_MODEL)
        daxpy = verify_emulator_accuracy(DAXPY_MODEL)
        assert rubis.p99_error > daxpy.p99_error

    def test_error_statistics_ordered(self):
        report = verify_emulator_accuracy(RUBIS_MODEL, n_points=500)
        assert (
            report.mean_error
            <= report.p95_error
            <= report.p99_error
            <= report.max_error
        )

    def test_deterministic_given_seed(self):
        a = verify_emulator_accuracy(RUBIS_MODEL, seed=4, n_points=300)
        b = verify_emulator_accuracy(RUBIS_MODEL, seed=4, n_points=300)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            verify_emulator_accuracy(RUBIS_MODEL, n_points=0)
        with pytest.raises(ConfigurationError):
            verify_emulator_accuracy(RUBIS_MODEL, cpu_range=(0.5, 0.2))
