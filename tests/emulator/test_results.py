"""Tests for the emulation result metrics (Figs. 7-12 machinery)."""

import numpy as np
import pytest

from repro.emulator.results import EmulationResult
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import EmulationError
from repro.infrastructure.costs import PowerCostModel, SpaceCostModel
from repro.placement.plan import Placement


def _result(
    cpu_demand,
    memory_demand=None,
    active=None,
    cpu_capacity=None,
    memory_capacity=None,
):
    cpu_demand = np.asarray(cpu_demand, dtype=float)
    n_hosts, n_hours = cpu_demand.shape
    if memory_demand is None:
        memory_demand = np.ones_like(cpu_demand)
    if active is None:
        active = np.ones_like(cpu_demand, dtype=bool)
    if cpu_capacity is None:
        cpu_capacity = np.full(n_hosts, 100.0)
    if memory_capacity is None:
        memory_capacity = np.full(n_hosts, 10.0)
    power = np.where(active, 50.0, 0.0)
    return EmulationResult(
        scheme="t",
        workload="w",
        host_ids=tuple(f"h{i}" for i in range(n_hosts)),
        cpu_capacity=np.asarray(cpu_capacity, dtype=float),
        memory_capacity=np.asarray(memory_capacity, dtype=float),
        cpu_demand=cpu_demand,
        memory_demand=np.asarray(memory_demand, dtype=float),
        active=np.asarray(active, dtype=bool),
        power_watts=power,
        schedule=PlacementSchedule.static(Placement({"a": "h0"}), n_hours),
    )


class TestCosts:
    def test_space_cost_uses_provisioned_servers(self):
        result = _result(np.zeros((3, 4)))
        model = SpaceCostModel(
            server_cost=10.0, rack_cost=0.0, floor_cost_per_rack=0.0
        )
        assert result.space_cost(model) == 30.0

    def test_energy_kwh(self):
        result = _result(np.zeros((2, 4)))
        # 2 hosts * 4 hours * 50 W = 400 Wh = 0.4 kWh.
        assert result.energy_kwh == pytest.approx(0.4)
        assert result.power_cost(PowerCostModel(price_per_kwh=1.0, pue=1.0)) == (
            pytest.approx(0.4)
        )


class TestUtilizationCdfs:
    def test_average_utilization_over_active_hours(self):
        active = np.array([[True, True, False, False]])
        result = _result(np.array([[50.0, 30.0, 0.0, 0.0]]), active=active)
        cdf = result.average_utilization_cdf()
        # Mean over the two active hours: (0.5 + 0.3) / 2.
        assert cdf.sorted_values[0] == pytest.approx(0.4)

    def test_peak_utilization_can_exceed_one(self):
        result = _result(np.array([[150.0, 10.0]]))
        cdf = result.peak_utilization_cdf()
        assert cdf.sorted_values[0] == pytest.approx(1.5)
        assert cdf.fraction_above(1.0) == 1.0


class TestContention:
    def test_no_contention_when_under_capacity(self):
        result = _result(np.full((2, 4), 80.0))
        assert result.contention_time_fraction() == 0.0
        assert result.cpu_contention_cdf() is None

    def test_contention_fraction_counts_server_hours(self):
        demand = np.array([[120.0, 80.0, 80.0, 80.0],
                           [80.0, 80.0, 80.0, 80.0]])
        result = _result(demand)
        # 1 contended server-hour of 8 total.
        assert result.contention_time_fraction() == pytest.approx(1 / 8)

    def test_contention_magnitude(self):
        result = _result(np.array([[150.0, 80.0]]))
        cdf = result.cpu_contention_cdf()
        assert cdf is not None
        assert cdf.sorted_values[0] == pytest.approx(0.5)

    def test_memory_contention_counted(self):
        result = _result(
            np.full((1, 2), 10.0),
            memory_demand=np.array([[12.0, 5.0]]),
        )
        assert result.contention_time_fraction() == pytest.approx(0.5)


class TestDynamism:
    def test_active_fraction_series(self):
        active = np.array([[True, True], [True, False]])
        result = _result(np.zeros((2, 2)), active=active)
        assert list(result.active_fraction_series()) == [1.0, 0.5]
        assert result.active_fraction_cdf().median == pytest.approx(0.75)

    def test_summary_keys(self):
        summary = _result(np.zeros((1, 2))).summary()
        assert {
            "scheme",
            "workload",
            "provisioned_servers",
            "energy_kwh",
            "contention_time_fraction",
            "total_migrations",
        } <= set(summary)


class TestMigrationVolume:
    def test_no_transitions_in_static_schedule(self):
        result = _result(np.zeros((1, 4)))
        assert result.migrations_per_interval().size == 0
        assert result.mean_migration_fraction() == 0.0

    def test_fraction_counts_moved_vms(self):
        from repro.emulator.schedule import PlacementSchedule

        placements = [
            Placement({"a": "h0", "b": "h0", "c": "h0", "d": "h0"}),
            Placement({"a": "h1", "b": "h0", "c": "h0", "d": "h0"}),
            Placement({"a": "h1", "b": "h1", "c": "h1", "d": "h0"}),
        ]
        schedule = PlacementSchedule.periodic(placements, 2.0)
        base = _result(np.zeros((2, 6)))
        result = EmulationResult(
            scheme=base.scheme,
            workload=base.workload,
            host_ids=base.host_ids,
            cpu_capacity=base.cpu_capacity,
            memory_capacity=base.memory_capacity,
            cpu_demand=base.cpu_demand,
            memory_demand=base.memory_demand,
            active=base.active,
            power_watts=base.power_watts,
            schedule=schedule,
        )
        # Transition 1 moves a; transition 2 moves b and c (a stays put).
        assert list(result.migrations_per_interval()) == [1, 2]
        # (1 + 2) / 2 transitions / 4 VMs = 0.375.
        assert result.mean_migration_fraction() == pytest.approx(0.375)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(EmulationError):
            EmulationResult(
                scheme="t",
                workload="w",
                host_ids=("h0",),
                cpu_capacity=np.array([100.0]),
                memory_capacity=np.array([10.0, 10.0]),  # wrong length
                cpu_demand=np.zeros((1, 2)),
                memory_demand=np.zeros((1, 2)),
                active=np.ones((1, 2), dtype=bool),
                power_watts=np.zeros((1, 2)),
                schedule=PlacementSchedule.static(Placement({"a": "h0"}), 2),
            )
