"""Tests for placement schedules."""

import pytest

from repro.emulator.schedule import PlacementSchedule, ScheduledPlacement
from repro.exceptions import EmulationError
from repro.placement.plan import Placement


class TestScheduledPlacement:
    def test_duration(self):
        segment = ScheduledPlacement(
            Placement({"a": "h1"}), start_hour=0, end_hour=2
        )
        assert segment.duration_hours == 2

    def test_empty_segment_rejected(self):
        with pytest.raises(EmulationError):
            ScheduledPlacement(Placement({"a": "h1"}), 2, 2)


class TestPlacementSchedule:
    def test_static_covers_window(self):
        schedule = PlacementSchedule.static(Placement({"a": "h1"}), 336)
        assert len(schedule) == 1
        assert schedule.start_hour == 0
        assert schedule.end_hour == 336
        assert schedule.duration_hours == 336

    def test_periodic_tiles_exactly(self):
        placements = [Placement({"a": "h1"}) for _ in range(4)]
        schedule = PlacementSchedule.periodic(placements, 2.0)
        assert len(schedule) == 4
        assert schedule.end_hour == 8.0
        starts = [s.start_hour for s in schedule]
        assert starts == [0.0, 2.0, 4.0, 6.0]

    def test_gap_rejected(self):
        with pytest.raises(EmulationError, match="gap"):
            PlacementSchedule(
                segments=(
                    ScheduledPlacement(Placement({"a": "h1"}), 0, 2),
                    ScheduledPlacement(Placement({"a": "h1"}), 3, 4),
                )
            )

    def test_empty_schedule_rejected(self):
        with pytest.raises(EmulationError):
            PlacementSchedule(segments=())

    def test_total_migrations(self):
        placements = [
            Placement({"a": "h1", "b": "h1"}),
            Placement({"a": "h2", "b": "h1"}),  # a moves
            Placement({"a": "h2", "b": "h2"}),  # b moves
        ]
        schedule = PlacementSchedule.periodic(placements, 2.0)
        assert schedule.total_migrations() == 2

    def test_static_has_no_migrations(self):
        schedule = PlacementSchedule.static(Placement({"a": "h1"}), 10)
        assert schedule.total_migrations() == 0
