"""Vectorized emulator == retained loop-based reference, bit for bit.

:class:`ConsolidationEmulator` (columnar scatter-add) must return arrays
*exactly* equal — same floats, not approximately — to
:class:`ReferenceConsolidationEmulator` (the retained scalar loop), for
randomized trace sets and schedules covering both scatter strategies
(narrow bincount segments and wide per-row-add segments), shared and
distinct power models, partial placements, and empty segments.  Driven
by a seeded stdlib-:mod:`random` sweep plus hypothesis cases when the
dependency is present.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np
import pytest

from repro.emulator import (
    ConsolidationEmulator,
    PlacementSchedule,
    ReferenceConsolidationEmulator,
)
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.metrics.catalog import ServerModel
from repro.placement.plan import Placement
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False

_COMPARED = (
    "cpu_demand",
    "memory_demand",
    "active",
    "power_watts",
    "cpu_capacity",
    "memory_capacity",
)


def _build_instance(
    rng: random.Random, *, n_vms: int, n_hosts: int, n_hours: int
) -> Tuple[TraceSet, Datacenter]:
    np_rng = np.random.default_rng(rng.randint(0, 2**31))
    traces = TraceSet(name="equiv")
    spec = ServerSpec(cpu_rpe2=1500.0, memory_gb=8.0)
    for i in range(n_vms):
        traces.add(
            ServerTrace(
                vm=VirtualMachine(vm_id=f"vm{i:03d}", memory_config_gb=8.0),
                source_spec=spec,
                cpu_util=ResourceTrace(
                    values=np_rng.uniform(0.0, 1.0, size=n_hours),
                    unit="fraction",
                ),
                memory_gb=ResourceTrace(
                    values=np_rng.uniform(0.1, 8.0, size=n_hours), unit="GB"
                ),
            )
        )
    datacenter = Datacenter(name="equiv-dc")
    for i in range(n_hosts):
        # A mix of hosts with catalog power models and hosts on the
        # default curve, so the grouped power broadcast sees both.
        model = None
        if i % 3 == 0:
            model = ServerModel(
                name=f"m{i % 2}",
                cpu_rpe2=40_000.0,
                memory_gb=128.0,
                idle_watts=120.0 + 40.0 * (i % 2),
                peak_watts=380.0 + 20.0 * (i % 2),
            )
        datacenter.add_host(
            PhysicalServer(
                host_id=f"h{i:03d}",
                spec=ServerSpec(cpu_rpe2=40_000.0, memory_gb=128.0),
                model=model,
            )
        )
    return traces, datacenter


def _random_schedule(
    rng: random.Random,
    vm_ids: Tuple[str, ...],
    host_ids: List[str],
    n_hours: int,
    interval_hours: int,
) -> PlacementSchedule:
    """One placement per interval; some VMs unplaced, some hosts idle."""
    placements = []
    for segment in range(n_hours // interval_hours):
        assignment = {}
        for vm_id in vm_ids:
            if rng.random() < 0.85:
                assignment[vm_id] = rng.choice(host_ids)
        placements.append(Placement(assignment=assignment))
    return PlacementSchedule.periodic(placements, float(interval_hours))


def assert_emulators_agree(
    traces: TraceSet,
    datacenter: Datacenter,
    schedule: PlacementSchedule,
    overhead: VirtualizationOverhead = VirtualizationOverhead(),
) -> None:
    vectorized = ConsolidationEmulator(
        traces, datacenter, overhead=overhead
    ).evaluate(schedule, scheme="equiv")
    reference = ReferenceConsolidationEmulator(
        traces, datacenter, overhead=overhead
    ).evaluate(schedule, scheme="equiv")
    assert vectorized.host_ids == reference.host_ids
    for name in _COMPARED:
        got = getattr(vectorized, name)
        expected = getattr(reference, name)
        assert np.array_equal(got, expected), (
            f"{name} differs from the scalar reference "
            f"(max abs delta {np.max(np.abs(got - expected))})"
        )


@pytest.mark.parametrize("interval_hours", [4, 24])
def test_narrow_segments_agree(interval_hours: int) -> None:
    """Dynamic-style schedules take the bincount scatter path."""
    rng = random.Random(interval_hours)
    for _ in range(8):
        n_hours = interval_hours * rng.randint(2, 6)
        traces, datacenter = _build_instance(
            rng,
            n_vms=rng.randint(1, 30),
            n_hosts=rng.randint(2, 10),
            n_hours=n_hours,
        )
        schedule = _random_schedule(
            rng,
            traces.vm_ids,
            [h.host_id for h in datacenter],
            n_hours,
            interval_hours,
        )
        assert_emulators_agree(traces, datacenter, schedule)


def test_wide_single_segment_agrees() -> None:
    """A 400-hour static schedule exercises the per-row-add path."""
    rng = random.Random(400)
    for _ in range(4):
        traces, datacenter = _build_instance(
            rng, n_vms=rng.randint(5, 25), n_hosts=5, n_hours=400
        )
        hosts = [h.host_id for h in datacenter]
        assignment = {
            vm_id: rng.choice(hosts) for vm_id in traces.vm_ids
        }
        schedule = PlacementSchedule.static(
            Placement(assignment=assignment), 400.0
        )
        assert_emulators_agree(traces, datacenter, schedule)


def test_overhead_and_dedup_agree() -> None:
    """Adjusted demand matrices match the per-trace adjustment exactly."""
    rng = random.Random(17)
    traces, datacenter = _build_instance(
        rng, n_vms=12, n_hosts=4, n_hours=48
    )
    hosts = [h.host_id for h in datacenter]
    schedule = _random_schedule(rng, traces.vm_ids, hosts, 48, 12)
    overhead = VirtualizationOverhead(
        cpu_overhead_frac=0.1,
        memory_overhead_gb=0.35,
        dedup_savings_frac=0.25,
    )
    assert_emulators_agree(traces, datacenter, schedule, overhead)


def test_empty_segment_agrees() -> None:
    """A segment with no placed VMs lands zero demand in both."""
    rng = random.Random(5)
    traces, datacenter = _build_instance(rng, n_vms=6, n_hosts=3, n_hours=24)
    hosts = [h.host_id for h in datacenter]
    busy = Placement(
        assignment={vm_id: hosts[0] for vm_id in traces.vm_ids}
    )
    schedule = PlacementSchedule.periodic(
        [busy, Placement.empty(), busy], 8.0
    )
    assert_emulators_agree(traces, datacenter, schedule)


def test_stacked_vms_accumulate_in_assignment_order() -> None:
    """Many VMs on one host: the scatter's left-fold accumulation order
    must equal the scalar loop's, or low-order float bits drift."""
    rng = random.Random(99)
    traces, datacenter = _build_instance(
        rng, n_vms=40, n_hosts=2, n_hours=36
    )
    hosts = [h.host_id for h in datacenter]
    assignment = {vm_id: hosts[0] for vm_id in traces.vm_ids}
    schedule = PlacementSchedule.periodic(
        [Placement(assignment=assignment)] * 3, 12.0
    )
    assert_emulators_agree(traces, datacenter, schedule)


if HAVE_HYPOTHESIS:

    @given(
        seed=st.integers(0, 10**6),
        n_vms=st.integers(1, 25),
        n_hosts=st.integers(1, 8),
        n_segments=st.integers(1, 5),
        interval_hours=st.sampled_from([2, 6, 12, 24]),
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_emulators_agree(
        seed, n_vms, n_hosts, n_segments, interval_hours
    ):
        rng = random.Random(seed)
        n_hours = n_segments * interval_hours
        traces, datacenter = _build_instance(
            rng, n_vms=n_vms, n_hosts=n_hosts, n_hours=n_hours
        )
        schedule = _random_schedule(
            rng,
            traces.vm_ids,
            [h.host_id for h in datacenter],
            n_hours,
            interval_hours,
        )
        assert_emulators_agree(traces, datacenter, schedule)
