"""Metamorphic relations for the consolidation emulator.

Three relations that must hold whatever the placement looks like:

* **Conservation** — moving VMs between hosts never creates or destroys
  demand: per-hour totals match the overhead-adjusted traces exactly,
  for any two placements of the same VMs.
* **Monotonicity** — power is non-decreasing in CPU utilization: scaling
  every trace down can never raise any host-hour's power draw.
* **Empty baseline** — the empty schedule provisions nothing and costs
  nothing: zero hosts, zero energy, zero contention, zero migrations.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.emulator.emulator import ConsolidationEmulator
from repro.emulator.schedule import PlacementSchedule
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.placement.plan import Placement
from repro.sizing.estimator import VirtualizationOverhead
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace

N_VMS = 6
N_HOSTS = 4
N_HOURS = 12

OVERHEAD = VirtualizationOverhead(
    cpu_overhead_frac=0.1, memory_overhead_gb=0.25, dedup_savings_frac=0.3
)


def _pool() -> Datacenter:
    dc = Datacenter(name="meta")
    for index in range(N_HOSTS):
        dc.add_host(
            PhysicalServer(
                host_id=f"h{index}",
                spec=ServerSpec(cpu_rpe2=1500.0, memory_gb=48.0),
            )
        )
    return dc


def _traces(scale: float = 1.0) -> TraceSet:
    """Deterministic bursty traces, optionally scaled down."""
    rng = random.Random(42)
    traces = TraceSet(name="meta")
    for index in range(N_VMS):
        cpu = np.array([rng.uniform(0.05, 0.9) for _ in range(N_HOURS)])
        memory = np.array([rng.uniform(0.5, 4.0) for _ in range(N_HOURS)])
        traces.add(
            make_server_trace(
                f"vm{index}",
                cpu * scale,
                memory,
                cpu_rpe2=1000.0,
                configured_gb=8.0,
            )
        )
    return traces


def _random_assignment(seed: int) -> dict:
    rng = random.Random(seed)
    return {
        f"vm{i}": f"h{rng.randrange(N_HOSTS)}" for i in range(N_VMS)
    }


@pytest.mark.parametrize("seed", range(10))
def test_demand_conserved_across_placements(seed: int) -> None:
    """Any two placements of the same VMs land identical hourly totals."""
    traces = _traces()
    emulator = ConsolidationEmulator(
        trace_set=traces, datacenter=_pool(), overhead=OVERHEAD
    )
    schedule_a = PlacementSchedule.static(
        Placement(_random_assignment(seed)), N_HOURS
    )
    schedule_b = PlacementSchedule.static(
        Placement(_random_assignment(seed + 1000)), N_HOURS
    )
    result_a = emulator.evaluate(schedule_a)
    result_b = emulator.evaluate(schedule_b)

    np.testing.assert_allclose(
        result_a.cpu_demand.sum(axis=0),
        result_b.cpu_demand.sum(axis=0),
        rtol=1e-12,
    )
    np.testing.assert_allclose(
        result_a.memory_demand.sum(axis=0),
        result_b.memory_demand.sum(axis=0),
        rtol=1e-12,
    )
    # And the totals equal the overhead-adjusted traces analytically.
    expected_cpu = traces.cpu_rpe2_matrix().sum(axis=0) * (
        1.0 + OVERHEAD.cpu_overhead_frac
    )
    expected_memory = (
        traces.memory_gb_matrix().sum(axis=0)
        * (1.0 - OVERHEAD.dedup_savings_frac)
        + N_VMS * OVERHEAD.memory_overhead_gb
    )
    np.testing.assert_allclose(
        result_a.cpu_demand.sum(axis=0), expected_cpu, rtol=1e-12
    )
    np.testing.assert_allclose(
        result_a.memory_demand.sum(axis=0), expected_memory, rtol=1e-12
    )


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("scale", [0.25, 0.5, 0.75])
def test_power_monotone_in_utilization(seed: int, scale: float) -> None:
    """Scaling every CPU trace down never raises any host-hour's power."""
    pool = _pool()
    assignment = _random_assignment(seed)
    schedule = PlacementSchedule.static(Placement(assignment), N_HOURS)

    full = ConsolidationEmulator(
        trace_set=_traces(1.0), datacenter=pool
    ).evaluate(schedule)
    scaled = ConsolidationEmulator(
        trace_set=_traces(scale), datacenter=pool
    ).evaluate(schedule)

    # Same placement → same hosts and activity structure.
    assert scaled.host_ids == full.host_ids
    np.testing.assert_array_equal(scaled.active, full.active)
    assert (scaled.power_watts <= full.power_watts + 1e-9).all()
    assert scaled.energy_kwh <= full.energy_kwh + 1e-12


def test_empty_schedule_costs_nothing() -> None:
    """The empty schedule: zero hosts, zero cost, zero contention."""
    emulator = ConsolidationEmulator(trace_set=_traces(), datacenter=_pool())
    schedule = PlacementSchedule.static(Placement.empty(), N_HOURS)
    result = emulator.evaluate(schedule, scheme="empty")

    assert result.provisioned_servers == 0
    assert result.energy_kwh == pytest.approx(0.0)
    assert result.mean_power_watts == pytest.approx(0.0)
    assert result.contention_time_fraction() == pytest.approx(0.0)
    assert result.cpu_contention_cdf() is None
    assert result.schedule.total_migrations() == 0
    series = result.active_fraction_series()
    assert series.shape == (N_HOURS,)
    assert (series == 0.0).all()
