"""Tests for the §1.3 potential-savings deflation study."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.potential import potential_gain
from repro.workloads import generate_datacenter
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


class TestPotentialGainMechanics:
    def test_flat_workload_has_no_potential(self):
        ts = TraceSet(name="flat")
        for i in range(4):
            ts.add(
                make_server_trace(f"v{i}", [0.2] * 48, [2.0] * 48)
            )
        gain = potential_gain(ts)
        assert gain.per_server_cpu_gain == pytest.approx(1.0)
        assert gain.realized_gain == pytest.approx(1.0)

    def test_bursty_cpu_quiet_memory_is_the_paper_story(self):
        # Per-server CPU promises a lot; flat memory caps the realized
        # gain when memory binds on the reference blade.
        ts = TraceSet(name="story")
        hours = 48
        for i in range(6):
            util = np.full(hours, 0.05)
            util[(i * 7) % hours] = 0.9            # 18x per-server P2A
            ts.add(
                make_server_trace(
                    f"v{i}", util, np.full(hours, 60.0),
                    cpu_rpe2=4000.0, configured_gb=64.0,
                )
            )
        gain = potential_gain(ts)
        assert gain.per_server_cpu_gain > 5.0
        # 360 GB aggregate flat memory needs ~2.8 HS23 blades always:
        # memory binds, so the realized gain collapses toward 1.
        assert gain.realized_gain < 1.5
        assert gain.deflation_factor > 3.0

    def test_misaligned_interval_rejected(self):
        ts = TraceSet(name="x")
        ts.add(make_server_trace("a", [0.1] * 48, [1.0] * 48))
        with pytest.raises(ConfigurationError, match="align"):
            potential_gain(ts, interval_hours=1.5)


class TestHeadlineClaim:
    def test_mean_realized_gain_near_1_5(self):
        # The paper's §1.3 headline: potential drops "from 10X to a much
        # more modest 1.5X" across the studied estates.
        gains = []
        for key in ("banking", "airlines", "natural-resources", "beverage"):
            ts = generate_datacenter(key, scale=0.1)
            gain = potential_gain(ts)
            gains.append(gain.realized_gain)
            # Per-server promise always dwarfs the realized gain.
            assert gain.per_server_cpu_gain > gain.realized_gain, key
        assert 1.2 <= float(np.mean(gains)) <= 2.0

    def test_banking_promises_most_per_server(self):
        gains = {
            key: potential_gain(generate_datacenter(key, scale=0.1))
            for key in ("banking", "natural-resources")
        }
        assert (
            gains["banking"].per_server_cpu_gain
            > gains["natural-resources"].per_server_cpu_gain
        )
