"""Tests for the Section-4 trace-analysis helpers."""

import pytest

from repro.experiments.traceanalysis import (
    COV_GRID,
    P2A_GRID,
    RATIO_GRID,
    burstiness_by_datacenter,
    resource_ratio_by_datacenter,
    sample_bursty_servers,
    table2_summary,
)
from repro.workloads import generate_datacenter


class TestFig1Samples:
    def test_samples_show_the_papers_phenomenon(self):
        samples = sample_bursty_servers(scale=0.1)
        assert len(samples) == 2
        for sample in samples:
            assert sample.average < 0.10
            assert sample.peak > 0.50
            assert len(sample.hourly_util) == 7 * 24

    def test_accepts_prebuilt_trace_set(self):
        traces = generate_datacenter("banking", scale=0.1)
        samples = sample_bursty_servers(traces, n_servers=3)
        assert len(samples) == 3
        ids = {s.vm_id for s in samples}
        assert ids <= set(traces.vm_ids)


class TestTable2:
    def test_rows_cover_all_datacenters(self):
        rows = table2_summary(scale=0.05, days=4)
        assert [r["name"] for r in rows] == ["A", "B", "C", "D"]
        for row in rows:
            assert row["generated_servers"] > 0
            assert 0 < row["measured_cpu_util"] < 1


class TestSharedTraceSets:
    def test_burstiness_accepts_external_traces(self):
        traces = {"banking": generate_datacenter("banking", scale=0.05)}
        reports = burstiness_by_datacenter(
            scale=0.05, trace_sets=traces, intervals_hours=(1.0,)
        )
        assert set(reports) == {
            "banking", "airlines", "natural-resources", "beverage"
        }

    def test_ratio_reports_reference(self):
        reports = resource_ratio_by_datacenter(scale=0.05)
        for report in reports.values():
            assert report.reference_ratio == pytest.approx(160.0)


class TestGrids:
    def test_grids_monotone(self):
        for grid in (P2A_GRID, COV_GRID, RATIO_GRID):
            assert list(grid) == sorted(grid)
            assert len(grid) >= 5
