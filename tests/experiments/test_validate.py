"""Tests for the runtime paper-band validation."""

import pytest

from repro.experiments.validate import (
    ValidationCheck,
    ValidationReport,
    validate_reproduction,
)
from repro.experiments.settings import ExperimentSettings


class TestValidationCheck:
    def test_verdicts(self):
        inside = ValidationCheck("x", 0.5, (0.4, 0.6), "test")
        below = ValidationCheck("x", 0.3, (0.4, 0.6), "test")
        assert inside.passed
        assert not below.passed
        assert "OUT OF BAND" in below.describe()
        assert "[ok]" in inside.describe()

    def test_band_inclusive(self):
        assert ValidationCheck("x", 0.4, (0.4, 0.6), "t").passed
        assert ValidationCheck("x", 0.6, (0.4, 0.6), "t").passed


class TestValidationReport:
    def test_aggregation(self):
        checks = (
            ValidationCheck("a", 0.5, (0.0, 1.0), "t"),
            ValidationCheck("b", 2.0, (0.0, 1.0), "t"),
        )
        report = ValidationReport(scale=0.1, checks=checks)
        assert not report.passed
        assert len(report.failures) == 1
        assert "1/2 checks" in report.describe()


class TestValidateReproduction:
    def test_fast_validation_passes_at_calibration_scale(self):
        # Trace-level + global checks: the generator calibration must
        # satisfy the paper bands (the full comparison is exercised by
        # test_paper_targets.py at module scale).
        report = validate_reproduction(
            ExperimentSettings(scale=0.15), include_comparison=False
        )
        assert report.passed, report.describe()
        # 4 DCs x 6 trace checks + 3 global checks.
        assert len(report.checks) == 27

    def test_cli_exit_code(self, capsys):
        from repro.cli import main

        code = main(["--scale", "0.15", "validate", "--fast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checks inside the paper's bands" in out
