"""Calibration tests: the generated workloads and experiment results must
stay inside the paper's published bands.

These are the reproduction's regression net.  Each assertion corresponds
to a specific claim in the paper (see repro/experiments/paper_targets.py
for citations); if generator or algorithm changes drift outside a band,
the reproduction has broken even if all unit tests still pass.

Scale 0.2 keeps the whole module under ~20 s while the CDF statistics
stay stable (hundreds of servers per datacenter).
"""

import pytest

from repro.analysis import analyze_burstiness, analyze_resource_ratio
from repro.experiments import paper_targets as targets
from repro.experiments.comparison import (
    SCHEME_DYNAMIC,
    SCHEME_STOCHASTIC,
    SCHEME_VANILLA,
    run_comparison,
)
from repro.experiments.settings import ExperimentSettings
from repro.workloads.datacenters import ALL_DATACENTERS, generate_datacenter

_SCALE = 0.2

pytestmark = pytest.mark.calibration


@pytest.fixture(scope="module")
def trace_sets():
    return {
        config.key: generate_datacenter(config.key, scale=_SCALE)
        for config in ALL_DATACENTERS
    }


@pytest.fixture(scope="module")
def burstiness(trace_sets):
    return {
        key: analyze_burstiness(ts, intervals_hours=(1.0,))
        for key, ts in trace_sets.items()
    }


@pytest.fixture(scope="module")
def comparisons(trace_sets):
    settings = ExperimentSettings(scale=_SCALE)
    return {
        key: run_comparison(key, settings, trace_set=ts)
        for key, ts in trace_sets.items()
    }


def _assert_in_band(value, band, label):
    low, high = band
    assert low <= value <= high, (
        f"{label}: {value:.3f} outside paper band [{low}, {high}]"
    )


class TestTable2:
    def test_mean_cpu_utilization(self, trace_sets):
        for key, band in targets.MEAN_CPU_UTILIZATION.items():
            _assert_in_band(
                trace_sets[key].mean_cpu_utilization(),
                band,
                f"{key} mean CPU util",
            )


class TestObservation1CpuBurstiness:
    def test_p2a_median(self, burstiness):
        for key, band in targets.CPU_P2A_MEDIAN_1H.items():
            _assert_in_band(
                burstiness[key].median_p2a("cpu", 1.0),
                band,
                f"{key} CPU P2A median",
            )

    def test_heavy_tailed_fraction(self, burstiness):
        for key, band in targets.CPU_COV_HEAVY_TAILED_FRACTION.items():
            _assert_in_band(
                burstiness[key].cov["cpu"].fraction_above(1.0),
                band,
                f"{key} CPU CoV>=1 fraction",
            )

    def test_banking_is_burstiest(self, burstiness):
        banking = burstiness["banking"].median_p2a("cpu", 1.0)
        for other in ("airlines", "natural-resources"):
            assert banking > burstiness[other].median_p2a("cpu", 1.0)


class TestObservation2MemoryBurstiness:
    def test_memory_cov_fraction(self, burstiness):
        for key, band in targets.MEMORY_COV_HEAVY_TAILED_FRACTION.items():
            _assert_in_band(
                burstiness[key].cov["memory"].fraction_above(1.0),
                band,
                f"{key} memory CoV>=1 fraction",
            )

    def test_memory_p2a_below_1_5(self, burstiness):
        for key, band in targets.MEMORY_P2A_LE_1_5_FRACTION.items():
            _assert_in_band(
                burstiness[key].peak_to_average[("memory", 1.0)].at(1.5),
                band,
                f"{key} memory P2A<=1.5 fraction",
            )

    def test_memory_order_of_magnitude_less_bursty(self, burstiness):
        for key, report in burstiness.items():
            cpu = report.median_p2a("cpu", 1.0) - 1.0
            memory = report.median_p2a("memory", 1.0) - 1.0
            assert memory < cpu / 3, key


class TestObservation3MemoryConstrained:
    def test_memory_constrained_fraction(self, trace_sets):
        for key, band in targets.MEMORY_CONSTRAINED_FRACTION.items():
            report = analyze_resource_ratio(trace_sets[key])
            _assert_in_band(
                report.fraction_memory_constrained,
                band,
                f"{key} memory-constrained fraction",
            )

    def test_cpu_intensity_ordering(self, trace_sets):
        # Paper §4.2: Banking > Beverage > NatRes > Airlines.
        medians = {
            key: analyze_resource_ratio(ts).median_ratio
            for key, ts in trace_sets.items()
        }
        assert (
            medians["banking"]
            > medians["beverage"]
            > medians["airlines"]
        )
        assert medians["natural-resources"] > medians["airlines"]


class TestFigure7:
    def test_stochastic_beats_vanilla_in_space(self, comparisons):
        for key, band in targets.STOCHASTIC_SPACE_VS_VANILLA.items():
            space = comparisons[key].normalized_space_cost()
            _assert_in_band(
                space[SCHEME_STOCHASTIC], band, f"{key} stochastic space"
            )

    def test_stochastic_not_worse_than_dynamic_in_space(self, comparisons):
        slack = targets.SPACE_ORDERING[
            "stochastic_not_worse_than_dynamic_slack"
        ]
        for key, comparison in comparisons.items():
            space = comparison.normalized_space_cost()
            assert space[SCHEME_STOCHASTIC] <= (
                space[SCHEME_DYNAMIC] + slack
            ), key

    def test_dynamic_beats_vanilla_except_airlines(self, comparisons):
        exceptions = targets.SPACE_ORDERING["dynamic_beats_vanilla_except"]
        for key, comparison in comparisons.items():
            space = comparison.normalized_space_cost()
            if key in exceptions:
                assert space[SCHEME_DYNAMIC] >= 1.0, key
            else:
                assert space[SCHEME_DYNAMIC] <= 1.0, key

    def test_dynamic_power_vs_stochastic(self, comparisons):
        for key, band in targets.DYNAMIC_POWER_VS_STOCHASTIC.items():
            power = comparisons[key].normalized_power_cost()
            ratio = power[SCHEME_DYNAMIC] / power[SCHEME_STOCHASTIC]
            _assert_in_band(ratio, band, f"{key} dynamic/stochastic power")


class TestFigures8And12:
    def test_contention_concentrated_in_bursty_dynamic(self, comparisons):
        # Banking dynamic has the most contention of all combinations.
        banking_dynamic = comparisons["banking"].contention_fractions()[
            SCHEME_DYNAMIC
        ]
        for key, comparison in comparisons.items():
            for scheme, value in comparison.contention_fractions().items():
                if (key, scheme) != ("banking", SCHEME_DYNAMIC):
                    assert value <= banking_dynamic + 1e-9, (key, scheme)

    def test_semistatic_has_negligible_contention(self, comparisons):
        for key, comparison in comparisons.items():
            contention = comparison.contention_fractions()[SCHEME_VANILLA]
            assert contention < 0.01, key

    def test_bursty_workloads_show_dynamism(self, comparisons):
        # Fig. 12: Banking and Beverage switch off a sizable share of
        # servers in quiet intervals; Airlines stays flat.
        for key in ("banking", "beverage"):
            active = (
                comparisons[key].dynamic().active_fraction_series()
            )
            assert active.min() < 0.8, key
        airlines = comparisons["airlines"].dynamic()
        assert airlines.active_fraction_series().mean() > 0.9
