"""Tests for the full-reproduction report generator."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.report import DEFAULT_REPORT_ORDER, generate_report
from repro.experiments.settings import ExperimentSettings


class TestReportGenerator:
    def test_default_order_covers_registry_figures(self):
        # Every paper artifact appears exactly once, in paper order.
        assert DEFAULT_REPORT_ORDER[0] == "table2"
        assert "fig7" in DEFAULT_REPORT_ORDER
        assert len(set(DEFAULT_REPORT_ORDER)) == len(DEFAULT_REPORT_ORDER)

    def test_subset_report(self):
        report = generate_report(
            ExperimentSettings(scale=0.05), figures=["olio", "obs4"]
        )
        assert "## olio" in report
        assert "## obs4" in report
        assert "## fig7" not in report
        assert "datacenter scale: 0.05" in report

    def test_sections_wrapped_in_code_blocks(self):
        report = generate_report(
            ExperimentSettings(scale=0.05), figures=["olio"]
        )
        assert report.count("```text") == 1
        assert report.count("```") == 2

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown figures"):
            generate_report(
                ExperimentSettings(scale=0.05), figures=["fig99"]
            )

    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(
            ["--scale", "0.05", "report", "--out", str(out),
             "--figures", "olio"]
        ) == 0
        assert out.exists()
        assert "## olio" in out.read_text()
