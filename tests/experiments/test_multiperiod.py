"""Tests for the static vs semi-static multi-period study."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.multiperiod import (
    apply_seasonal_drift,
    run_multiperiod,
)
from repro.experiments.settings import ExperimentSettings
from repro.workloads import generate_datacenter


class TestSeasonalDrift:
    def test_mean_preserving_over_full_cycle(self):
        ts = generate_datacenter("airlines", scale=0.05, days=8)
        drifted = apply_seasonal_drift(ts, amplitude=0.3, period_days=8)
        original = ts.aggregate_cpu_rpe2().mean()
        shifted = drifted.aggregate_cpu_rpe2().mean()
        assert shifted == pytest.approx(original, rel=0.05)

    def test_amplitude_zero_is_identity(self):
        ts = generate_datacenter("airlines", scale=0.05, days=4)
        same = apply_seasonal_drift(ts, amplitude=0.0)
        assert np.allclose(
            same.cpu_rpe2_matrix(), ts.cpu_rpe2_matrix()
        )

    def test_memory_swings_half_as_much(self):
        ts = generate_datacenter("airlines", scale=0.05, days=8)
        drifted = apply_seasonal_drift(ts, amplitude=0.4, period_days=8)
        cpu_swing = (
            drifted.aggregate_cpu_rpe2() / ts.aggregate_cpu_rpe2()
        )
        memory_swing = (
            drifted.aggregate_memory_gb() / ts.aggregate_memory_gb()
        )
        assert (memory_swing.max() - 1.0) < (cpu_swing.max() - 1.0)

    def test_validation(self):
        ts = generate_datacenter("airlines", scale=0.05, days=4)
        with pytest.raises(ConfigurationError):
            apply_seasonal_drift(ts, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            apply_seasonal_drift(ts, period_days=0)


class TestMultiPeriod:
    @pytest.fixture(scope="class")
    def result(self):
        return run_multiperiod(
            "beverage",
            ExperimentSettings(scale=0.06),
            n_periods=3,
            period_days=7,
        )

    def test_semi_static_never_worse_than_static(self, result):
        assert all(
            servers <= result.static_servers
            for servers in result.semi_static_servers_per_period
        )

    def test_semi_static_saves_energy(self, result):
        assert result.energy_saving > 0

    def test_per_period_counts_vary_with_season(self, result):
        # If all periods need the same count the seasonal overlay did
        # nothing and the study is vacuous.
        assert len(set(result.semi_static_servers_per_period)) > 1

    def test_schedules_cover_whole_horizon(self, result):
        horizon = result.n_periods * result.period_days * 24
        assert result.static.n_hours == horizon
        assert result.semi_static.n_hours == horizon

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_multiperiod(
                "beverage", ExperimentSettings(scale=0.05), n_periods=1
            )

    def test_dynamic_tier_optional(self, result):
        assert result.dynamic is None

    def test_dynamic_tier_included_on_request(self):
        full = run_multiperiod(
            "beverage",
            ExperimentSettings(scale=0.05),
            n_periods=2,
            period_days=7,
            include_dynamic=True,
        )
        assert full.dynamic is not None
        assert full.dynamic.total_migrations() > 0
        # Dynamic rides the season at 2 h grain: energy at or below the
        # weekly semi-static re-plan.
        assert full.dynamic.energy_kwh <= full.semi_static.energy_kwh * 1.05
