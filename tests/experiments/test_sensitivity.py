"""Tests for the utilization-bound sensitivity analysis (Figs. 13-16)."""

import pytest

from repro.experiments.sensitivity import run_sensitivity, run_sensitivity_all
from repro.experiments.settings import ExperimentSettings


@pytest.fixture(scope="module")
def banking_sweep():
    return run_sensitivity(
        "banking",
        ExperimentSettings(scale=0.08),
        bounds=(0.7, 0.8, 0.9, 1.0),
    )


class TestSensitivity:
    def test_dynamic_monotone_in_bound(self, banking_sweep):
        servers = [
            banking_sweep.dynamic_servers_by_bound[b]
            for b in sorted(banking_sweep.dynamic_servers_by_bound)
        ]
        assert all(a >= b for a, b in zip(servers, servers[1:]))

    def test_reference_lines_flat(self, banking_sweep):
        rows = banking_sweep.rows()
        assert len({r["semi_static_servers"] for r in rows}) == 1
        assert len({r["stochastic_servers"] for r in rows}) == 1

    def test_crossover_detection(self, banking_sweep):
        crossover = banking_sweep.crossover_bound()
        if crossover is not None:
            assert (
                banking_sweep.dynamic_servers_by_bound[crossover]
                <= banking_sweep.stochastic_servers
            )
            # No smaller bound may already cross.
            for bound, servers in banking_sweep.dynamic_servers_by_bound.items():
                if bound < crossover:
                    assert servers > banking_sweep.stochastic_servers

    def test_improvement_at_full_bound(self, banking_sweep):
        improvement = banking_sweep.improvement_at_full_bound()
        full = banking_sweep.dynamic_servers_by_bound[1.0]
        expected = 1.0 - full / banking_sweep.stochastic_servers
        assert improvement == pytest.approx(expected)

    def test_rows_sorted_by_bound(self, banking_sweep):
        bounds = [r["utilization_bound"] for r in banking_sweep.rows()]
        assert bounds == sorted(bounds)


class TestSensitivityGrid:
    def test_run_sensitivity_all_keys_results_by_datacenter(self):
        grid = run_sensitivity_all(
            ExperimentSettings(scale=0.08),
            bounds=(0.8, 1.0),
            datacenters=["banking"],
        )
        assert set(grid) == {"banking"}
        assert set(grid["banking"].dynamic_servers_by_bound) == {0.8, 1.0}
