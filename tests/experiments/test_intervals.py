"""Tests for the consolidation-interval study (paper §7)."""

import pytest

from repro.experiments.intervals import run_interval_study
from repro.experiments.settings import ExperimentSettings


@pytest.fixture(scope="module")
def study():
    return run_interval_study(
        "banking",
        ExperimentSettings(scale=0.06),
        intervals_hours=(1.0, 2.0, 4.0, 8.0),
    )


class TestIntervalStudy:
    def test_one_point_per_interval(self, study):
        assert [p.interval_hours for p in study] == [1.0, 2.0, 4.0, 8.0]

    def test_shorter_intervals_do_not_need_more_servers(self, study):
        servers = [p.provisioned_servers for p in study]
        # Finer sizing can only help the footprint (paper §7's claim).
        assert servers[0] <= servers[-1]

    def test_shorter_intervals_save_energy(self, study):
        assert study[0].energy_kwh <= study[-1].energy_kwh

    def test_shorter_intervals_cost_migrations(self, study):
        migrations = [p.total_migrations for p in study]
        assert migrations[0] >= migrations[-1]

    def test_active_fraction_rises_with_interval(self, study):
        # Coarser intervals must provision for longer windows, keeping
        # more hosts on.
        assert (
            study[0].mean_active_fraction
            <= study[-1].mean_active_fraction + 0.05
        )
