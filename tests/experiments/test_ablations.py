"""Tests for the ablation study functions."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    PREDICTOR_LADDER,
    generate_uncorrelated_datacenter,
    run_predictor_ablation,
    run_tail_overlap_ablation,
)
from repro.experiments.settings import ExperimentSettings
from repro.workloads import generate_datacenter

_FAST = ExperimentSettings(scale=0.05)


class TestUncorrelatedGenerator:
    def test_same_shape_as_preset(self):
        plain = generate_uncorrelated_datacenter("banking", scale=0.05)
        preset = generate_datacenter("banking", scale=0.05)
        assert len(plain) == len(preset)
        assert plain.n_points == preset.n_points

    def test_actually_less_correlated(self):
        plain = generate_uncorrelated_datacenter("banking", scale=0.08)
        preset = generate_datacenter("banking", scale=0.08)

        def mean_corr(ts):
            corr = np.corrcoef(ts.cpu_rpe2_matrix())
            return float(np.nanmean(corr[np.triu_indices_from(corr, k=1)]))

        assert mean_corr(plain) < mean_corr(preset)


class TestPredictorAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_predictor_ablation("banking", _FAST)

    def test_all_ladder_rungs_present(self, results):
        assert set(results) == {label for label, _ in PREDICTOR_LADDER}

    def test_oracle_contention_free(self, results):
        assert results["oracle"].contention_time_fraction() == 0.0

    def test_conservative_predictor_less_contention(self, results):
        assert (
            results["periodic-7d"].contention_time_fraction()
            <= results["last-interval"].contention_time_fraction()
        )

    def test_conservative_predictor_more_servers(self, results):
        assert (
            results["periodic-7d"].provisioned_servers
            >= results["oracle"].provisioned_servers
        )


class TestTailOverlapAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_tail_overlap_ablation(
            "banking", _FAST, overlaps=(0.0, 0.55, 1.0)
        )

    def test_vanilla_reference_present(self, results):
        assert "vanilla" in results

    def test_servers_monotone_in_overlap(self, results):
        assert (
            results["overlap=0.00"].provisioned_servers
            <= results["overlap=0.55"].provisioned_servers
            <= results["overlap=1.00"].provisioned_servers
        )

    def test_full_overlap_close_to_vanilla(self, results):
        # overlap=1 reserves body+tail == max per VM: same totals as
        # vanilla max sizing, so host counts must be near-identical.
        assert abs(
            results["overlap=1.00"].provisioned_servers
            - results["vanilla"].provisioned_servers
        ) <= 1
