"""Seed-robustness: the reproduction is not cherry-picked.

The datacenter presets were calibrated against the paper's published
statistics using fixed seeds; a reproduction that only works at those
seeds would be curve-fitting noise.  This test regenerates every
datacenter with alternative seeds and checks that all Section-4 bands
still hold — the generator *parameters*, not the random draws, carry
the calibration.
"""

import pytest

from repro.analysis import analyze_burstiness, analyze_resource_ratio
from repro.experiments import paper_targets as targets
from repro.workloads import ALL_DATACENTERS, generate_datacenter

pytestmark = pytest.mark.calibration

_SCALE = 0.15


@pytest.mark.parametrize("seed_offset", [101, 202])
def test_section4_bands_hold_at_alternative_seeds(seed_offset):
    failures = []
    for config in ALL_DATACENTERS:
        trace_set = generate_datacenter(
            config.key, scale=_SCALE, seed=config.seed + seed_offset
        )
        burstiness = analyze_burstiness(trace_set, intervals_hours=(1.0,))
        ratio = analyze_resource_ratio(trace_set)
        checks = [
            (
                "mean util",
                trace_set.mean_cpu_utilization(),
                targets.MEAN_CPU_UTILIZATION[config.key],
            ),
            (
                "cpu p2a median",
                burstiness.median_p2a("cpu", 1.0),
                targets.CPU_P2A_MEDIAN_1H[config.key],
            ),
            (
                "cpu cov>=1",
                burstiness.cov["cpu"].fraction_above(1.0),
                targets.CPU_COV_HEAVY_TAILED_FRACTION[config.key],
            ),
            (
                "mem p2a<=1.5",
                burstiness.peak_to_average[("memory", 1.0)].at(1.5),
                targets.MEMORY_P2A_LE_1_5_FRACTION[config.key],
            ),
            (
                "mem cov>=1",
                burstiness.cov["memory"].fraction_above(1.0),
                targets.MEMORY_COV_HEAVY_TAILED_FRACTION[config.key],
            ),
            (
                "memory-constrained",
                ratio.fraction_memory_constrained,
                targets.MEMORY_CONSTRAINED_FRACTION[config.key],
            ),
        ]
        for name, value, (low, high) in checks:
            if not low <= value <= high:
                failures.append(
                    f"{config.key}/{name}: {value:.3f} not in "
                    f"[{low}, {high}]"
                )
    assert not failures, failures
