"""Tests for the figure registry and runners.

Figure runners are exercised at a very small scale — these tests check
report structure and dispatch, not calibration (that is
test_paper_targets.py's job).
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import FIGURES, list_figures, run_figure
from repro.experiments.settings import ExperimentSettings

_FAST = ExperimentSettings(scale=0.05)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table2", "fig1", "obs4", "olio"} | {
            f"fig{i}" for i in range(2, 17)
        }
        assert expected <= set(list_figures())

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown figure"):
            run_figure("fig99")

    def test_case_insensitive(self):
        report = run_figure("TABLE2", _FAST)
        assert "Table 2" in report


class TestTraceAnalysisFigures:
    def test_fig1_mentions_samples(self):
        report = run_figure("fig1", _FAST)
        assert "avg_util" in report
        assert "Banking" in report

    @pytest.mark.parametrize("fig", ["fig2", "fig3", "fig4", "fig5"])
    def test_burstiness_figures_cover_all_dcs(self, fig):
        report = run_figure(fig, _FAST)
        for key in ("banking", "airlines", "natural-resources", "beverage"):
            assert key in report

    def test_fig6_reports_constrained_fraction(self):
        report = run_figure("fig6", _FAST)
        assert "memory-constrained fraction" in report
        assert "160" in report

    def test_olio_reports_paper_factors(self):
        report = run_figure("olio", _FAST)
        assert "7.9x" in report
        assert "3.0x memory" in report or "3x" in report


class TestMigrationFigure:
    def test_obs4_reports_reservation(self):
        report = run_figure("obs4", _FAST)
        assert "Recommended reservation" in report
        assert "20%" in report


class TestComparisonFigures:
    @pytest.fixture(scope="class")
    def fig7_report(self):
        return run_figure("fig7", _FAST)

    def test_fig7_has_all_schemes(self, fig7_report):
        for scheme in ("semi-static", "stochastic", "dynamic"):
            assert scheme in fig7_report

    def test_fig12_mentions_active_fraction(self):
        report = run_figure("fig12", _FAST)
        assert "active-server fraction" in report


class TestSensitivityFigures:
    def test_fig13_sweeps_bounds(self):
        report = run_figure("fig13", _FAST)
        assert "0.70" in report
        assert "1.00" in report
        assert "stochastic" in report


class TestExtensionFigures:
    def test_intervals_registered(self):
        report = run_figure("intervals", _FAST)
        assert "Interval-length study" in report
        assert "migrations" in report

    def test_migration_ladder_registered(self):
        report = run_figure("migration-ladder", _FAST)
        assert "baseline-1gbe" in report
        assert "rdma" in report

    def test_verify_emulator_registered(self):
        report = run_figure("verify-emulator", _FAST)
        assert "rubis" in report
        assert "daxpy" in report
