"""Tests for experiment settings (Table 3)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.settings import (
    DEFAULT_SCALE_ENV,
    UTILIZATION_BOUND_SWEEP,
    ExperimentSettings,
    default_scale,
)
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


class TestTable3Defaults:
    def test_baseline_values(self):
        settings = ExperimentSettings(scale=1.0)
        assert settings.evaluation_days == 14
        assert settings.interval_hours == 2.0
        assert settings.reservation == 0.20
        assert settings.utilization_bound == 0.80
        assert settings.n_intervals == 168

    def test_sweep_covers_paper_range(self):
        assert UTILIZATION_BOUND_SWEEP[0] == 0.70
        assert UTILIZATION_BOUND_SWEEP[-1] == 1.00

    def test_with_reservation(self):
        settings = ExperimentSettings(scale=1.0).with_reservation(0.30)
        assert settings.utilization_bound == pytest.approx(0.70)

    def test_planning_config_override(self):
        settings = ExperimentSettings(scale=1.0)
        assert settings.planning_config().utilization_bound == 0.8
        assert settings.planning_config(0.9).utilization_bound == 0.9


class TestScale:
    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SCALE_ENV, "0.5")
        assert default_scale() == 0.5

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_SCALE_ENV, raising=False)
        assert default_scale() == 0.25

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SCALE_ENV, "lots")
        with pytest.raises(ConfigurationError):
            default_scale()
        monkeypatch.setenv(DEFAULT_SCALE_ENV, "-1")
        with pytest.raises(ConfigurationError):
            default_scale()


class TestPool:
    def test_build_pool_scales_with_traces(self):
        settings = ExperimentSettings(scale=1.0)
        ts = TraceSet(name="t")
        for i in range(40):
            ts.add(make_server_trace(f"v{i}", [0.1] * 4, [1.0] * 4))
        pool = settings.build_pool(ts)
        assert len(pool) == 20

    def test_minimum_pool(self):
        settings = ExperimentSettings(scale=1.0)
        ts = TraceSet(name="t")
        ts.add(make_server_trace("v", [0.1] * 4, [1.0] * 4))
        assert len(settings.build_pool(ts)) == 12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=1.0, reservation=1.0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(scale=0.0)
