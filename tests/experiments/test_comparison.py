"""Tests for the Section-5 comparison harness."""

import pytest

from repro.experiments.comparison import (
    SCHEME_DYNAMIC,
    SCHEME_STOCHASTIC,
    SCHEME_VANILLA,
    default_algorithms,
    run_comparison,
)
from repro.experiments.settings import ExperimentSettings


@pytest.fixture(scope="module")
def comparison():
    return run_comparison("banking", ExperimentSettings(scale=0.08))


class TestRunComparison:
    def test_all_three_schemes_present(self, comparison):
        assert set(comparison.results) == {
            SCHEME_VANILLA,
            SCHEME_STOCHASTIC,
            SCHEME_DYNAMIC,
        }

    def test_normalization_baseline_is_one(self, comparison):
        space = comparison.normalized_space_cost()
        power = comparison.normalized_power_cost()
        assert space[SCHEME_VANILLA] == pytest.approx(1.0)
        assert power[SCHEME_VANILLA] == pytest.approx(1.0)

    def test_semistatic_variants_never_migrate(self, comparison):
        assert comparison.results[SCHEME_VANILLA].total_migrations() == 0
        assert comparison.results[SCHEME_STOCHASTIC].total_migrations() == 0

    def test_dynamic_migrates(self, comparison):
        assert comparison.results[SCHEME_DYNAMIC].total_migrations() > 0

    def test_summary_rows_complete(self, comparison):
        rows = comparison.summary_rows()
        assert len(rows) == 3
        for row in rows:
            assert row["workload"] == "banking"
            assert row["servers"] >= 1

    def test_default_algorithm_names(self):
        names = [a.name for a in default_algorithms()]
        assert names == [SCHEME_VANILLA, SCHEME_STOCHASTIC, SCHEME_DYNAMIC]

    def test_emulation_window_matches_table3(self, comparison):
        result = comparison.results[SCHEME_DYNAMIC]
        assert result.n_hours == 14 * 24
        assert len(result.schedule) == 168
