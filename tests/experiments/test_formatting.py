"""Tests for report formatting."""

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.experiments.formatting import format_cdf, format_mapping, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [("a", 1), ("longer-name", 22)]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        # All rows padded to the same width.
        assert len(set(map(len, lines))) == 1

    def test_header_and_separator(self):
        table = format_table(["x"], [(1,)])
        lines = table.splitlines()
        assert lines[0].strip() == "x"
        assert set(lines[1].strip()) == {"-"}

    def test_float_rendering(self):
        table = format_table(
            ["v"], [(0.12345,), (1.5,), (250.0,), (0.0,)]
        )
        body = table.splitlines()[2:]
        assert body[0].strip() == "0.1235"  # small floats: 4 decimals
        assert body[1].strip() == "1.50"    # mid floats: 2 decimals
        assert body[2].strip() == "250"     # large floats: integral
        assert body[3].strip() == "0"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestFormatCdf:
    def test_tabulation(self):
        cdf = EmpiricalCDF(np.array([1.0, 2.0, 3.0, 4.0]))
        line = format_cdf("series", cdf, [2.0, 4.0])
        assert line.startswith("series:")
        assert "F(2.00)=0.50" in line
        assert "F(4.00)=1.00" in line


class TestFormatMapping:
    def test_one_line(self):
        line = format_mapping("costs", {"a": 1.0, "b": 0.5}, digits=2)
        assert line == "costs: a=1.00  b=0.50"
