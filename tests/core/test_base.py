"""Tests for the planning context and config."""

import pytest

from repro.core.base import PlanningConfig, PlanningContext
from repro.exceptions import ConfigurationError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _ts(name, vm_ids, hours=48):
    ts = TraceSet(name=name)
    for vm_id in vm_ids:
        ts.add(make_server_trace(vm_id, [0.1] * hours, [1.0] * hours))
    return ts


class TestPlanningConfig:
    def test_defaults_match_table3(self):
        config = PlanningConfig()
        assert config.utilization_bound == 0.8
        assert config.interval_hours == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlanningConfig(utilization_bound=0.0)
        with pytest.raises(ConfigurationError):
            PlanningConfig(utilization_bound=1.2)
        with pytest.raises(ConfigurationError):
            PlanningConfig(interval_hours=0)


class TestPlanningContext:
    def test_interval_accounting(self, small_pool):
        context = PlanningContext(
            history=_ts("h", ["a", "b"]),
            evaluation=_ts("e", ["a", "b"]),
            datacenter=small_pool,
        )
        # 48 hours at 2 h intervals.
        assert context.n_intervals == 24
        assert context.points_per_interval == 2

    def test_vm_mismatch_rejected(self, small_pool):
        with pytest.raises(ConfigurationError, match="same VMs"):
            PlanningContext(
                history=_ts("h", ["a", "b"]),
                evaluation=_ts("e", ["a", "c"]),
                datacenter=small_pool,
            )

    def test_unaligned_interval_rejected(self, small_pool):
        with pytest.raises(ConfigurationError):
            PlanningContext(
                history=_ts("h", ["a"]),
                evaluation=_ts("e", ["a"]),
                datacenter=small_pool,
                config=PlanningConfig(interval_hours=1.5),
            )

    def test_partial_interval_rejected(self, small_pool):
        with pytest.raises(ConfigurationError, match="whole number"):
            PlanningContext(
                history=_ts("h", ["a"], hours=48),
                evaluation=_ts("e", ["a"], hours=47),
                datacenter=small_pool,
                config=PlanningConfig(interval_hours=2.0),
            )
