"""Property-based tests for the PCP cluster bin (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.stochastic import _ClusterBin
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VMDemand

HOST = PhysicalServer(
    host_id="h0",
    spec=ServerSpec(cpu_rpe2=1000.0, memory_gb=100.0, network_mbps=10_000.0),
)

demand_strategy = st.builds(
    lambda i, cpu, mem, tail_cpu, tail_mem: VMDemand(
        vm_id=f"vm{i}",
        cpu_rpe2=cpu,
        memory_gb=mem,
        tail_cpu_rpe2=tail_cpu,
        tail_memory_gb=tail_mem,
    ),
    st.integers(0, 10**6),
    st.floats(0.0, 200.0),
    st.floats(0.0, 20.0),
    st.floats(0.0, 150.0),
    st.floats(0.0, 15.0),
)


@st.composite
def placements(draw):
    demands = draw(st.lists(demand_strategy, min_size=1, max_size=15))
    clusters = [
        draw(st.integers(0, 3)) for _ in demands
    ]
    overlap = draw(st.sampled_from([0.0, 0.3, 0.55, 1.0]))
    return demands, clusters, overlap


@given(data=placements())
@settings(max_examples=80, deadline=None)
def test_greedy_adds_respect_capacity(data):
    demands, clusters, overlap = data
    bin_ = _ClusterBin(HOST, 1.0, overlap)
    for demand, cluster in zip(demands, clusters):
        if bin_.fits(demand, cluster):
            bin_.add(demand, cluster)
    # Reconstruct the reservation from scratch and check it.
    body_cpu = bin_.body_cpu
    tails = bin_.cluster_tail_cpu
    if tails:
        worst = max(tails.values())
        pooled = worst + overlap * (sum(tails.values()) - worst)
    else:
        pooled = 0.0
    assert body_cpu + pooled <= bin_.cpu_capacity + 1e-6


@given(data=placements())
@settings(max_examples=60, deadline=None)
def test_overlap_one_reserves_all_tails(data):
    demands, clusters, _ = data
    conservative = _ClusterBin(HOST, 1.0, 1.0)
    added = []
    for demand, cluster in zip(demands, clusters):
        if conservative.fits(demand, cluster):
            conservative.add(demand, cluster)
            added.append(demand)
    total_tails = sum(d.tail_cpu_rpe2 for d in added)
    total_bodies = sum(d.cpu_rpe2 for d in added)
    # With overlap=1 the reservation equals bodies + all tails, i.e.
    # sized-at-max packing.
    assert total_bodies + total_tails <= conservative.cpu_capacity + 1e-6


@given(data=placements())
@settings(max_examples=60, deadline=None)
def test_lower_overlap_admits_superset(data):
    demands, clusters, _ = data
    tight = _ClusterBin(HOST, 1.0, 0.0)
    loose = _ClusterBin(HOST, 1.0, 1.0)
    for demand, cluster in zip(demands, clusters):
        if loose.fits(demand, cluster):
            # Anything the conservative bin admits, the optimistic bin
            # must admit too (monotonicity in the overlap factor).
            assert tight.fits(demand, cluster)
            loose.add(demand, cluster)
            tight.add(demand, cluster)
