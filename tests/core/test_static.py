"""Tests for static consolidation."""

import pytest

from repro.core.base import PlanningContext
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.static import StaticConsolidation
from repro.exceptions import ConfigurationError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def context(small_pool):
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for i in range(30):
        # Sized near half an HS23 blade so margins actually matter.
        history.add(
            make_server_trace(
                f"vm{i}", [0.5] * 48, [10.0] * 48, cpu_rpe2=4000.0,
                configured_gb=32.0,
            )
        )
        evaluation.add(
            make_server_trace(
                f"vm{i}", [0.5] * 48, [10.0] * 48, cpu_rpe2=4000.0,
                configured_gb=32.0,
            )
        )
    return PlanningContext(
        history=history, evaluation=evaluation, datacenter=small_pool
    )


class TestStaticConsolidation:
    def test_margin_increases_server_count(self, context):
        lean = StaticConsolidation(provisioning_margin=0.0).plan(context)
        padded = StaticConsolidation(provisioning_margin=0.5).plan(context)
        assert (
            padded.segments[0].placement.active_host_count
            >= lean.segments[0].placement.active_host_count
        )

    def test_zero_margin_matches_semistatic(self, context):
        static = StaticConsolidation(provisioning_margin=0.0).plan(context)
        semi = SemiStaticConsolidation().plan(context)
        assert (
            static.segments[0].placement.active_host_count
            == semi.segments[0].placement.active_host_count
        )

    def test_negative_margin_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticConsolidation(provisioning_margin=-0.1)

    def test_single_segment(self, context):
        schedule = StaticConsolidation().plan(context)
        assert len(schedule) == 1
        assert schedule.total_migrations() == 0
