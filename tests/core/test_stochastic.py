"""Tests for PCP-style stochastic consolidation."""

import numpy as np
import pytest

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.constraints.affinity import AntiColocate
from repro.constraints.manager import ConstraintSet
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _bursty_context(small_pool, n_vms=24, hours=96, seed=0):
    """VMs with alternating peak phases: ideal PCP material."""
    rng = np.random.default_rng(seed)
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for i in range(n_vms):
        util = np.full(hours, 0.05) + rng.random(hours) * 0.02
        # Phase-offset peaks: group 0 peaks in even slots, group 1 odd.
        for t in range(i % 2 * 6, hours, 12):
            util[t] = 0.9
        memory = np.full(hours, 1.0)
        for ts, vm_id in ((history, f"vm{i}"), (evaluation, f"vm{i}")):
            ts.add(
                make_server_trace(
                    vm_id, util, memory, cpu_rpe2=4000.0
                )
            )
    return PlanningContext(
        history=history, evaluation=evaluation, datacenter=small_pool
    )


class TestStochasticConsolidation:
    def test_uses_fewer_hosts_than_vanilla(self, small_pool):
        context = _bursty_context(small_pool)
        vanilla = SemiStaticConsolidation().plan(context)
        stochastic = StochasticConsolidation().plan(context)
        assert (
            stochastic.segments[0].placement.active_host_count
            <= vanilla.segments[0].placement.active_host_count
        )

    def test_all_vms_placed(self, small_pool):
        context = _bursty_context(small_pool)
        placement = StochasticConsolidation().plan(context).segments[0].placement
        assert len(placement) == 24

    def test_overlap_factor_one_matches_max_sizing_budget(self, small_pool):
        # With full overlap, body+tail per VM is reserved: the host
        # count cannot beat vanilla's (same totals, same heuristic family).
        context = _bursty_context(small_pool)
        conservative = StochasticConsolidation(tail_overlap_factor=1.0)
        vanilla = SemiStaticConsolidation().plan(context)
        plan = conservative.plan(context)
        assert (
            plan.segments[0].placement.active_host_count
            >= vanilla.segments[0].placement.active_host_count - 1
        )

    def test_lower_overlap_packs_tighter(self, small_pool):
        context = _bursty_context(small_pool)
        tight = StochasticConsolidation(tail_overlap_factor=0.0).plan(context)
        loose = StochasticConsolidation(tail_overlap_factor=1.0).plan(context)
        assert (
            tight.segments[0].placement.active_host_count
            <= loose.segments[0].placement.active_host_count
        )

    def test_respects_constraints(self, small_pool):
        context = _bursty_context(small_pool)
        constrained = PlanningContext(
            history=context.history,
            evaluation=context.evaluation,
            datacenter=small_pool,
            constraints=ConstraintSet([AntiColocate("vm0", "vm1")]),
        )
        placement = (
            StochasticConsolidation()
            .plan(constrained)
            .segments[0]
            .placement
        )
        assert placement.host_of("vm0") != placement.host_of("vm1")

    def test_single_static_segment(self, small_pool):
        context = _bursty_context(small_pool)
        schedule = StochasticConsolidation().plan(context)
        assert len(schedule) == 1
        assert schedule.total_migrations() == 0
