"""Tests for the consolidation planner facade."""

import pytest

from repro.core.planner import ConsolidationPlanner, split_window
from repro.core.semistatic import SemiStaticConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.exceptions import ConfigurationError
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


@pytest.fixture
def month_traces():
    ts = TraceSet(name="m")
    hours = 30 * 24
    for i in range(6):
        ts.add(
            make_server_trace(
                f"vm{i}", [0.1 + 0.01 * i] * hours, [1.0] * hours
            )
        )
    return ts


class TestSplitWindow:
    def test_default_split(self, month_traces):
        history, evaluation = split_window(month_traces)
        assert history.duration_hours == 16 * 24
        assert evaluation.duration_hours == 14 * 24

    def test_custom_split(self, month_traces):
        history, evaluation = split_window(month_traces, evaluation_days=7)
        assert evaluation.duration_hours == 7 * 24

    def test_no_history_rejected(self, month_traces):
        with pytest.raises(ConfigurationError, match="history"):
            split_window(month_traces, evaluation_days=30)


class TestConsolidationPlanner:
    def test_run_produces_result(self, month_traces, small_pool):
        planner = ConsolidationPlanner(
            traces=month_traces, datacenter=small_pool
        )
        result = planner.run(SemiStaticConsolidation())
        assert result.scheme == "semi-static"
        assert result.workload == "m"
        assert result.n_hours == 14 * 24
        assert result.provisioned_servers >= 1

    def test_compare_runs_each_once(self, month_traces, small_pool):
        planner = ConsolidationPlanner(
            traces=month_traces, datacenter=small_pool
        )
        results = planner.compare(
            [SemiStaticConsolidation(), StochasticConsolidation()]
        )
        assert set(results) == {"semi-static", "stochastic"}

    def test_duplicate_names_rejected(self, month_traces, small_pool):
        planner = ConsolidationPlanner(
            traces=month_traces, datacenter=small_pool
        )
        with pytest.raises(ConfigurationError, match="unique"):
            planner.compare(
                [SemiStaticConsolidation(), SemiStaticConsolidation()]
            )

    def test_context_split_matches_settings(self, month_traces, small_pool):
        planner = ConsolidationPlanner(
            traces=month_traces, datacenter=small_pool, evaluation_days=7
        )
        assert planner.context.evaluation.duration_hours == 7 * 24
        assert planner.context.history.duration_hours == 23 * 24
