"""Tests for dynamic consolidation."""

import numpy as np
import pytest

from repro.constraints.affinity import AntiColocate
from repro.constraints.manager import ConstraintSet
from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.sizing.prediction import OraclePredictor
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _diurnal_context(small_pool, n_vms=12, days=4, constraints=None,
                     utilization_bound=0.8):
    """VMs with strong day/night cycles: dynamic's favourite diet."""
    hours = days * 24
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for i in range(n_vms):
        util = np.full(hours, 0.04)
        for day in range(days):
            start = day * 24 + 8
            util[start:start + 10] = 0.6
        memory = np.full(hours, 1.0 + 0.02 * i)
        for ts in (history, evaluation):
            ts.add(
                make_server_trace(f"vm{i}", util, memory, cpu_rpe2=4000.0)
            )
    return PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=small_pool,
        constraints=constraints or ConstraintSet(),
        config=PlanningConfig(utilization_bound=utilization_bound),
    )


class TestDynamicConsolidation:
    def test_one_placement_per_interval(self, small_pool):
        context = _diurnal_context(small_pool)
        schedule = DynamicConsolidation().plan(context)
        assert len(schedule) == context.n_intervals
        assert schedule.duration_hours == 96

    def test_every_interval_places_all_vms(self, small_pool):
        context = _diurnal_context(small_pool)
        schedule = DynamicConsolidation().plan(context)
        for segment in schedule:
            assert len(segment.placement) == 12

    def test_night_uses_fewer_hosts_than_day(self, small_pool):
        context = _diurnal_context(small_pool)
        schedule = DynamicConsolidation().plan(context)
        # Interval 0-2h is night (all quiet); 8-18h is busy.
        night = schedule.segments[1].placement.active_host_count
        day = schedule.segments[5].placement.active_host_count
        assert night <= day

    def test_migrations_happen_but_are_not_constant_churn(self, small_pool):
        context = _diurnal_context(small_pool)
        schedule = DynamicConsolidation().plan(context)
        migrations = schedule.total_migrations()
        assert migrations > 0
        # Sticky placement: far fewer migrations than "replace everything
        # every interval" (12 VMs x 47 transitions).
        assert migrations < 12 * 47 * 0.5

    def test_tighter_bound_uses_more_hosts(self, small_pool):
        loose = DynamicConsolidation().plan(
            _diurnal_context(small_pool, utilization_bound=1.0)
        )
        tight = DynamicConsolidation().plan(
            _diurnal_context(small_pool, utilization_bound=0.6)
        )

        def max_active(schedule):
            return max(
                s.placement.active_host_count for s in schedule
            )

        assert max_active(tight) >= max_active(loose)

    def test_respects_constraints_every_interval(self, small_pool):
        constraints = ConstraintSet([AntiColocate("vm0", "vm1")])
        context = _diurnal_context(small_pool, constraints=constraints)
        schedule = DynamicConsolidation().plan(context)
        for segment in schedule:
            assert segment.placement.host_of("vm0") != (
                segment.placement.host_of("vm1")
            )

    def test_oracle_predictor_supported(self, small_pool):
        context = _diurnal_context(small_pool)
        schedule = DynamicConsolidation(
            predictor=OraclePredictor(), cpu_burst_factor=1.0
        ).plan(context)
        assert len(schedule) == context.n_intervals

    def test_migration_cost_gate_reduces_churn(self, small_pool):
        context = _diurnal_context(small_pool)
        gated = DynamicConsolidation(consider_migration_cost=True).plan(
            context
        )
        ungated = DynamicConsolidation(consider_migration_cost=False).plan(
            context
        )
        assert gated.total_migrations() <= ungated.total_migrations()

    def test_burst_factor_inflates_sizing(self, small_pool):
        plain = DynamicConsolidation(cpu_burst_factor=1.0).plan(
            _diurnal_context(small_pool)
        )
        inflated = DynamicConsolidation(cpu_burst_factor=2.0).plan(
            _diurnal_context(small_pool)
        )

        def peak_hosts(schedule):
            return max(s.placement.active_host_count for s in schedule)

        assert peak_hosts(inflated) >= peak_hosts(plain)
