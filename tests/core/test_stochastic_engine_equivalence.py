"""Array stochastic (PCP) engine == scalar reference, bit for bit.

The array engine prefilters candidate hosts with vectorized pooled-tail
lower bounds and verifies survivors with a single-pass pooled sum; it
must make exactly the decisions of the retained per-bin scan — same
assignment or the same no-fit failure — across overlap factors, I/O
models, and workload textures.  The greedy peak clustering both engines
share has the same contract between its matrix and scalar scans.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import cluster_by_peaks
from repro.constraints.affinity import AntiColocate
from repro.constraints.manager import ConstraintSet
from repro.core.base import PlanningConfig, PlanningContext
from repro.core.stochastic import StochasticConsolidation
from repro.exceptions import ConfigurationError, TraceError
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _context(small_pool, *, n_vms=16, days=3, config=None, seed=9):
    """Servers with clustered peak phases: PCP's intended input."""
    rng = np.random.default_rng(seed)
    hours = days * 24
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for i in range(n_vms):
        util = np.full(hours, 0.06) + rng.uniform(0.0, 0.04, hours)
        phase = (i % 3) * 8
        for day in range(days):
            start = day * 24 + phase
            util[start:start + 6] += rng.uniform(0.25, 0.55)
        memory = np.full(hours, 0.8 + 0.05 * i) + rng.uniform(0, 0.3, hours)
        for ts in (history, evaluation):
            ts.add(
                make_server_trace(
                    f"vm{i}", np.clip(util, 0, 1), memory, cpu_rpe2=4000.0
                )
            )
    return PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=small_pool,
        config=config or PlanningConfig(),
    )


def _assert_plans_identical(small_pool, context, **kwargs):
    scalar = StochasticConsolidation(engine="scalar", **kwargs).plan(context)
    array = StochasticConsolidation(engine="array", **kwargs).plan(context)
    auto = StochasticConsolidation(**kwargs).plan(context)
    assert scalar.segments[0].placement == array.segments[0].placement
    assert scalar.segments[0].placement == auto.segments[0].placement


@pytest.mark.parametrize("overlap", [0.0, 0.55, 1.0])
def test_engines_agree_across_overlap_factors(small_pool, overlap) -> None:
    context = _context(small_pool)
    _assert_plans_identical(
        small_pool, context, tail_overlap_factor=overlap
    )


def test_engines_agree_with_io_models(small_pool) -> None:
    config = PlanningConfig(
        network=NetworkDemandModel(), disk=DiskDemandModel()
    )
    context = _context(small_pool, config=config)
    _assert_plans_identical(small_pool, context)


def test_engines_agree_on_generated_texture(
    small_pool, generated_trace_set
) -> None:
    hours = generated_trace_set.n_points
    context = PlanningContext(
        history=generated_trace_set.window(0, hours // 2),
        evaluation=generated_trace_set.window(hours // 2, hours),
        datacenter=small_pool,
        config=PlanningConfig(),
    )
    _assert_plans_identical(small_pool, context)


def test_engines_agree_under_tight_bound(small_pool) -> None:
    context = _context(small_pool, n_vms=20, seed=13)
    _assert_plans_identical(
        small_pool, context, utilization_bound=0.7, body_percentile=95.0
    )


def test_unknown_engine_rejected(small_pool) -> None:
    context = _context(small_pool, days=2)
    with pytest.raises(ConfigurationError):
        StochasticConsolidation(engine="gpu").plan(context)


def test_array_engine_rejects_constraints(small_pool) -> None:
    context = _context(small_pool, days=2)
    constrained = PlanningContext(
        history=context.history,
        evaluation=context.evaluation,
        datacenter=context.datacenter,
        constraints=ConstraintSet([AntiColocate("vm0", "vm1")]),
        config=context.config,
    )
    with pytest.raises(ConfigurationError):
        StochasticConsolidation(engine="array").plan(constrained)
    # auto falls back to the scalar engine and honours the constraint.
    placement = StochasticConsolidation().plan(constrained).segments[0].placement
    assert placement.host_of("vm0") != placement.host_of("vm1")


# ----------------------------------------------------------------------
# Peak clustering: matrix Jaccard scan == scalar envelope_similarity scan.


@pytest.mark.parametrize("threshold", [0.1, 0.25, 0.6, 1.0])
def test_cluster_engines_agree(small_pool, threshold) -> None:
    context = _context(small_pool, n_vms=24, seed=17)
    scalar = cluster_by_peaks(
        context.history, similarity_threshold=threshold, engine="scalar"
    )
    matrix = cluster_by_peaks(
        context.history, similarity_threshold=threshold, engine="matrix"
    )
    auto = cluster_by_peaks(context.history, similarity_threshold=threshold)
    assert scalar == matrix == auto


def test_cluster_engines_agree_on_flat_envelopes() -> None:
    """Flat series make empty envelopes (union == 0): both engines 0.0."""
    traces = TraceSet(name="flat")
    for i in range(6):
        traces.add(
            make_server_trace(
                f"vm{i}", np.full(48, 0.2), np.full(48, 1.0)
            )
        )
    scalar = cluster_by_peaks(traces, engine="scalar")
    matrix = cluster_by_peaks(traces, engine="matrix")
    assert scalar == matrix


def test_cluster_unknown_engine_rejected(flat_trace_set) -> None:
    with pytest.raises(TraceError):
        cluster_by_peaks(flat_trace_set, engine="gpu")
