"""Tests for vanilla semi-static consolidation."""

import numpy as np
import pytest

from repro.core.base import PlanningContext
from repro.core.semistatic import SemiStaticConsolidation
from repro.sizing.estimator import VirtualizationOverhead
from repro.core.base import PlanningConfig
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _context(small_pool, history_utils, eval_utils, mem=1.0):
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for vm_id, utils in history_utils.items():
        history.add(
            make_server_trace(vm_id, utils, [mem] * len(utils), cpu_rpe2=1000)
        )
    for vm_id, utils in eval_utils.items():
        evaluation.add(
            make_server_trace(vm_id, utils, [mem] * len(utils), cpu_rpe2=1000)
        )
    return PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=small_pool,
        config=PlanningConfig(
            overhead=VirtualizationOverhead(
                cpu_overhead_frac=0.0, memory_overhead_gb=0.0
            )
        ),
    )


class TestSemiStatic:
    def test_single_static_segment(self, small_pool):
        context = _context(
            small_pool,
            {"a": [0.1] * 48, "b": [0.2] * 48},
            {"a": [0.1] * 48, "b": [0.2] * 48},
        )
        schedule = SemiStaticConsolidation().plan(context)
        assert len(schedule) == 1
        assert schedule.duration_hours == 48
        assert schedule.total_migrations() == 0

    def test_sizes_at_history_peak(self, small_pool):
        # Two VMs that peak at 0.9 of a 1000-RPE2 source each: their
        # peak demands (900 RPE2) are far below one HS23 blade, so both
        # consolidate onto a single host.
        history = {"a": [0.1] * 47 + [0.9], "b": [0.9] + [0.1] * 47}
        context = _context(small_pool, history, history)
        schedule = SemiStaticConsolidation().plan(context)
        placement = schedule.segments[0].placement
        assert placement.active_host_count == 1

    def test_no_migration_reservation_by_default(self, small_pool):
        algo = SemiStaticConsolidation()
        assert algo.utilization_bound == 1.0

    def test_all_vms_placed(self, small_pool, generated_trace_set):
        half = generated_trace_set.n_points // 2
        context = PlanningContext(
            history=generated_trace_set.window(0, half),
            evaluation=generated_trace_set.window(
                half, generated_trace_set.n_points
            ),
            datacenter=small_pool,
        )
        schedule = SemiStaticConsolidation().plan(context)
        placement = schedule.segments[0].placement
        assert set(placement.assignment) == set(generated_trace_set.vm_ids)
