"""Array dynamic planner == retained scalar planner, schedule for schedule.

``DynamicConsolidation(engine="array")`` must reproduce the scalar
reference's every placement decision — same assignments in every
interval, hence the same migrations, host counts, and downstream
figures.  Covered across predictors, I/O sizing models, the migration
cost gate, and generated workload texture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.affinity import AntiColocate
from repro.constraints.manager import ConstraintSet
from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.powercap import PowerBudgetedConsolidation
from repro.exceptions import ConfigurationError
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.sizing.prediction import (
    EwmaPredictor,
    LastIntervalPredictor,
    OraclePredictor,
    PeriodicPeakPredictor,
)
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _context(small_pool, *, n_vms=14, days=4, config=None, seed=5):
    """Diurnal + noisy VMs so repack/vacate decisions actually trigger."""
    rng = np.random.default_rng(seed)
    hours = days * 24
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    for i in range(n_vms):
        util = np.full(hours, 0.05) + rng.uniform(0.0, 0.03, hours)
        for day in range(days):
            start = day * 24 + 8
            util[start:start + 10] += rng.uniform(0.3, 0.6)
        memory = np.full(hours, 1.0 + 0.02 * i) + rng.uniform(0, 0.2, hours)
        for ts, jitter in ((history, 0.0), (evaluation, 0.01)):
            ts.add(
                make_server_trace(
                    f"vm{i}", np.clip(util + jitter, 0, 1), memory,
                    cpu_rpe2=4000.0,
                )
            )
    return PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=small_pool,
        config=config or PlanningConfig(),
    )


def _assert_schedules_identical(scalar, array):
    assert len(scalar) == len(array)
    for left, right in zip(scalar.segments, array.segments):
        assert left.placement.assignment == right.placement.assignment


@pytest.mark.parametrize(
    "predictor",
    [
        PeriodicPeakPredictor(),
        LastIntervalPredictor(),
        EwmaPredictor(),
        OraclePredictor(),
    ],
    ids=lambda p: type(p).__name__,
)
def test_engines_agree_across_predictors(small_pool, predictor) -> None:
    context = _context(small_pool)
    kwargs = {"predictor": predictor}
    if isinstance(predictor, OraclePredictor):
        kwargs["cpu_burst_factor"] = 1.0
    scalar = DynamicConsolidation(engine="scalar", **kwargs).plan(context)
    array = DynamicConsolidation(engine="array", **kwargs).plan(context)
    _assert_schedules_identical(scalar, array)


def test_engines_agree_with_io_models(small_pool) -> None:
    config = PlanningConfig(
        network=NetworkDemandModel(), disk=DiskDemandModel()
    )
    context = _context(small_pool, config=config)
    scalar = DynamicConsolidation(engine="scalar").plan(context)
    array = DynamicConsolidation(engine="array").plan(context)
    _assert_schedules_identical(scalar, array)


@pytest.mark.parametrize("consider_cost", [False, True])
def test_engines_agree_with_cost_gate(small_pool, consider_cost) -> None:
    context = _context(small_pool, seed=11)
    scalar = DynamicConsolidation(
        engine="scalar", consider_migration_cost=consider_cost
    ).plan(context)
    array = DynamicConsolidation(
        engine="array", consider_migration_cost=consider_cost
    ).plan(context)
    _assert_schedules_identical(scalar, array)


def test_auto_equals_scalar_reference(small_pool) -> None:
    """The default engine is the array path — pinned to the reference."""
    context = _context(small_pool, seed=23)
    auto = DynamicConsolidation().plan(context)
    scalar = DynamicConsolidation(engine="scalar").plan(context)
    _assert_schedules_identical(scalar, auto)


def test_generated_texture_agrees(small_pool, generated_trace_set) -> None:
    hours = generated_trace_set.n_points
    context = PlanningContext(
        history=generated_trace_set.window(0, hours // 3),
        evaluation=generated_trace_set.window(hours // 3, hours),
        datacenter=small_pool,
        config=PlanningConfig(),
    )
    scalar = DynamicConsolidation(engine="scalar").plan(context)
    array = DynamicConsolidation(engine="array").plan(context)
    _assert_schedules_identical(scalar, array)


def test_unknown_engine_rejected(small_pool) -> None:
    context = _context(small_pool, days=2)
    with pytest.raises(ConfigurationError):
        DynamicConsolidation(engine="gpu").plan(context)


def test_array_engine_rejects_constraints(small_pool) -> None:
    context = _context(small_pool, days=2)
    constrained = PlanningContext(
        history=context.history,
        evaluation=context.evaluation,
        datacenter=context.datacenter,
        constraints=ConstraintSet([AntiColocate("vm0", "vm1")]),
        config=context.config,
    )
    with pytest.raises(ConfigurationError):
        DynamicConsolidation(engine="array").plan(constrained)
    # auto falls back to the scalar path and still honours constraints.
    schedule = DynamicConsolidation().plan(constrained)
    for segment in schedule:
        assert segment.placement.host_of("vm0") != (
            segment.placement.host_of("vm1")
        )


def test_powercap_subclass_keeps_override_under_auto(small_pool) -> None:
    """auto must not route subclasses around their ``_place_interval``."""
    context = _context(small_pool, seed=31)
    budgeted_auto = PowerBudgetedConsolidation(budget_watts=2500.0)
    budgeted_scalar = PowerBudgetedConsolidation(
        budget_watts=2500.0, engine="scalar"
    )
    _assert_schedules_identical(
        budgeted_scalar.plan(context), budgeted_auto.plan(context)
    )
