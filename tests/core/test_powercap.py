"""Tests for BrownMap-style power-budgeted consolidation."""

import numpy as np
import pytest

from repro.core import (
    ConsolidationPlanner,
    DynamicConsolidation,
    PowerBudgetedConsolidation,
)
from repro.exceptions import ConfigurationError
from repro.infrastructure import build_target_pool
from repro.workloads import generate_datacenter


@pytest.fixture(scope="module")
def planner():
    traces = generate_datacenter("banking", scale=0.06)
    pool = build_target_pool("p", host_count=30)
    return ConsolidationPlanner(traces=traces, datacenter=pool)


@pytest.fixture(scope="module")
def unconstrained(planner):
    return planner.run(DynamicConsolidation())


class TestPowerBudget:
    def test_infinite_budget_matches_dynamic(self, planner, unconstrained):
        capped = planner.run(
            PowerBudgetedConsolidation(budget_watts=float("inf"))
        )
        assert capped.provisioned_servers == unconstrained.provisioned_servers
        assert capped.energy_kwh == pytest.approx(
            unconstrained.energy_kwh, rel=1e-9
        )

    def test_budget_reduces_peak_power(self, planner, unconstrained):
        peak = unconstrained.power_watts.sum(axis=0).max()
        algo = PowerBudgetedConsolidation(budget_watts=peak * 0.7)
        capped = planner.run(algo)
        assert capped.power_watts.sum(axis=0).max() < peak

    def test_budget_forces_extra_migrations(self, planner, unconstrained):
        peak = unconstrained.power_watts.sum(axis=0).max()
        capped = planner.run(
            PowerBudgetedConsolidation(budget_watts=peak * 0.7)
        )
        assert capped.total_migrations() >= unconstrained.total_migrations()

    def test_overshoot_reported(self, planner, unconstrained):
        # An absurdly low budget cannot be met: every interval reports
        # its residual overshoot instead of failing.
        algo = PowerBudgetedConsolidation(budget_watts=1.0)
        result = planner.run(algo)
        assert len(algo.overshoot_watts) == len(result.schedule)
        assert all(o > 0 for o in algo.overshoot_watts)

    def test_all_vms_still_placed(self, planner, unconstrained):
        peak = unconstrained.power_watts.sum(axis=0).max()
        capped = planner.run(
            PowerBudgetedConsolidation(budget_watts=peak * 0.6)
        )
        for segment in capped.schedule:
            assert len(segment.placement) == len(
                planner.context.evaluation.vm_ids
            )

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            PowerBudgetedConsolidation(budget_watts=0.0)
