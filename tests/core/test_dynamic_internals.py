"""Unit tests for dynamic consolidation's internal mechanisms."""

import numpy as np
import pytest

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.migration.cost import MigrationCostModel
from repro.placement.plan import Placement
from repro.workloads.trace import TraceSet
from tests.conftest import make_server_trace


def _context(small_pool, n_vms=8, days=3):
    hours = days * 24
    history = TraceSet(name="h")
    evaluation = TraceSet(name="e")
    rng = np.random.default_rng(0)
    for i in range(n_vms):
        util = np.full(hours, 0.05)
        for day in range(days):
            util[day * 24 + 9:day * 24 + 18] = 0.5
        util = util * (1.0 + 0.1 * rng.random(hours))
        for ts in (history, evaluation):
            ts.add(
                make_server_trace(
                    f"vm{i}", np.clip(util, 0, 1), np.full(hours, 1.0),
                    cpu_rpe2=4000.0,
                )
            )
    return PlanningContext(
        history=history, evaluation=evaluation, datacenter=small_pool
    )


class TestHostOrdering:
    def test_warm_hosts_come_first(self, small_pool):
        previous = Placement(
            {"a": small_pool.hosts[7].host_id, "b": small_pool.hosts[3].host_id}
        )
        ordered = DynamicConsolidation._host_order(small_pool, previous)
        warm = {small_pool.hosts[7].host_id, small_pool.hosts[3].host_id}
        assert {h.host_id for h in ordered[:2]} == warm
        assert len(ordered) == len(small_pool)

    def test_no_previous_keeps_pool_order(self, small_pool):
        ordered = DynamicConsolidation._host_order(small_pool, None)
        assert [h.host_id for h in ordered] == [
            h.host_id for h in small_pool
        ]


class TestMigrationCostGate:
    def test_prohibitive_cost_blocks_all_vacating(self, small_pool):
        context = _context(small_pool)
        # An SLA price so high no idle-power saving can justify a move.
        expensive = MigrationCostModel(sla_cost_per_second=1e6)
        gated = DynamicConsolidation(
            migration_cost=expensive, consider_migration_cost=True
        ).plan(context)
        free = DynamicConsolidation(consider_migration_cost=False).plan(
            context
        )

        def mean_active(schedule):
            return float(
                np.mean([s.placement.active_host_count for s in schedule])
            )

        # Without affordable migrations, hosts stay powered on.
        assert mean_active(gated) >= mean_active(free)

    def test_cost_cache_reused(self, small_pool):
        algorithm = DynamicConsolidation()
        first = algorithm._cached_cost(2.0)
        second = algorithm._cached_cost(2.04)  # rounds to the same key
        assert first == second
        assert len(algorithm._cost_cache) == 1


class TestPlanShape:
    def test_each_interval_capacity_bounded_by_predictions(self, small_pool):
        context = _context(small_pool)
        algorithm = DynamicConsolidation()
        schedule = algorithm.plan(context)
        # Re-derive each interval's sized demands and check every host's
        # packed body fits the utilization bound.
        points = context.points_per_interval
        history_points = context.history.n_points
        cpu_full = np.hstack(
            [
                context.history.cpu_rpe2_matrix(),
                context.evaluation.cpu_rpe2_matrix(),
            ]
        )
        memory_full = np.hstack(
            [
                context.history.memory_gb_matrix(),
                context.evaluation.memory_gb_matrix(),
            ]
        )
        from repro.sizing.estimator import SizeEstimator
        from repro.sizing.functions import MaxSizing

        estimator = SizeEstimator(
            sizing=MaxSizing(), overhead=context.config.overhead
        )
        bound = context.config.utilization_bound
        for interval, segment in enumerate(schedule):
            now = history_points + interval * points
            demands = algorithm._predict_interval(
                list(context.evaluation.vm_ids),
                cpu_full,
                memory_full,
                now,
                points,
                estimator,
                {},
            )
            by_id = {d.vm_id: d for d in demands}
            for host in small_pool:
                members = [
                    by_id[v]
                    for v in segment.placement.vms_on(host.host_id)
                ]
                if not members:
                    continue
                assert sum(m.cpu_rpe2 for m in members) <= (
                    host.cpu_rpe2 * bound + 1e-6
                )
                assert sum(m.memory_gb for m in members) <= (
                    host.memory_gb * bound + 1e-6
                )
