"""Incremental replanning == replanning from scratch, bit for bit.

The controller's correctness rests on one invariant: a plan mutated by
*any* sequence of ``apply_delta`` / ``set_demand`` calls is bitwise
identical to a plan rebuilt from scratch (``from_assignment``) over the
same demands and assignment.  Canonical folds (ascending row order)
make the float accumulators order-independent of the *history* of
mutations — so drift can never accumulate in a long-running controller.

The suite drives random update sequences (seeded sweep always; driven
wider by hypothesis when available) and asserts exact equality after
every step, plus the atomicity contract: a delta that fails mid-way
restores the plan byte for byte.
"""

from __future__ import annotations

import random

import pytest

from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.exceptions import PlacementError
from repro.infrastructure.server import PhysicalServer, ServerSpec

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment without hypothesis
    HAVE_HYPOTHESIS = False


def _fleet(n_hosts: int, cpu_rpe2: float = 1000.0, memory_gb: float = 64.0):
    return [
        PhysicalServer(
            f"h{i}", ServerSpec(cpu_rpe2=cpu_rpe2, memory_gb=memory_gb)
        )
        for i in range(n_hosts)
    ]


def _capture(plan: IncrementalPlan):
    return (
        list(plan.assignment_rows),
        [list(rows) for rows in plan.vm_rows_of_host],
        list(plan.body_cpu),
        list(plan.body_mem),
        list(plan.body_net),
        list(plan.body_dsk),
        list(plan.cpu),
        list(plan.mem),
    )


def _assert_bitwise_equal(a: IncrementalPlan, b: IncrementalPlan):
    # Plain == on float lists is exact equality — no tolerance anywhere.
    assert a.assignment_rows == b.assignment_rows
    assert a.vm_rows_of_host == b.vm_rows_of_host
    assert a.body_cpu == b.body_cpu
    assert a.body_mem == b.body_mem
    assert a.body_net == b.body_net
    assert a.body_dsk == b.body_dsk


def _rebuild(plan: IncrementalPlan) -> IncrementalPlan:
    return IncrementalPlan.from_assignment(
        plan.caps,
        plan.vm_ids,
        plan.cpu,
        plan.mem,
        plan.assignment(),
        plan.net,
        plan.dsk,
    )


def _random_plan(
    rng: random.Random, n_hosts: int, n_vms: int
) -> IncrementalPlan:
    caps = HostCapacities(_fleet(n_hosts), utilization_bound=0.9)
    vm_ids = [f"vm{i}" for i in range(n_vms)]
    cpu = [rng.uniform(10.0, 200.0) for _ in range(n_vms)]
    mem = [rng.uniform(0.5, 8.0) for _ in range(n_vms)]
    plan = IncrementalPlan(caps, vm_ids, cpu, mem)
    for row, vm_id in enumerate(vm_ids):
        targets = list(range(n_hosts))
        rng.shuffle(targets)
        for host in targets:
            if plan.fits(row, host):
                plan.apply_delta([vm_id], [caps.host_ids[host]])
                break
    return plan


def _random_mutations(
    rng: random.Random, plan: IncrementalPlan, n_ops: int
) -> None:
    """Drive a random op sequence; failed deltas are part of the test."""
    caps = plan.caps
    for _ in range(n_ops):
        op = rng.random()
        if op < 0.4:
            vm_id = rng.choice(plan.vm_ids)
            plan.set_demand(
                vm_id, rng.uniform(10.0, 400.0), rng.uniform(0.5, 12.0)
            )
        else:
            n_movers = rng.randint(1, min(3, plan.n_vms))
            movers = rng.sample(plan.vm_ids, n_movers)
            targets = [
                None
                if rng.random() < 0.2
                else rng.choice(caps.host_ids)
                for _ in movers
            ]
            before = _capture(plan)
            try:
                plan.apply_delta(movers, targets)
            except PlacementError:
                # Atomicity: the failed delta restored everything.
                assert _capture(plan) == before


def _check_incremental_equals_rebuild(
    n_hosts: int, n_vms: int, n_ops: int, seed: int
) -> None:
    rng = random.Random(seed)
    plan = _random_plan(rng, n_hosts, n_vms)
    _assert_bitwise_equal(plan, _rebuild(plan))
    for _ in range(4):
        _random_mutations(rng, plan, n_ops)
        _assert_bitwise_equal(plan, _rebuild(plan))


class TestIncrementalEqualsRebuild:
    def test_seeded_sweep(self):
        rng = random.Random(20260808)
        for _ in range(20):
            _check_incremental_equals_rebuild(
                n_hosts=rng.randint(2, 6),
                n_vms=rng.randint(1, 12),
                n_ops=rng.randint(1, 15),
                seed=rng.randint(0, 10_000),
            )

    if HAVE_HYPOTHESIS:

        @settings(max_examples=40, deadline=None)
        @given(
            n_hosts=st.integers(2, 5),
            n_vms=st.integers(1, 10),
            n_ops=st.integers(1, 12),
            seed=st.integers(0, 2**20),
        )
        def test_hypothesis(self, n_hosts, n_vms, n_ops, seed):
            _check_incremental_equals_rebuild(n_hosts, n_vms, n_ops, seed)


class TestApplyDelta:
    def _two_host_plan(self):
        caps = HostCapacities(
            _fleet(2, cpu_rpe2=100.0, memory_gb=100.0),
            utilization_bound=1.0,
        )
        plan = IncrementalPlan(
            caps,
            ["a", "b", "c"],
            [60.0, 60.0, 10.0],
            [1.0, 1.0, 1.0],
        )
        plan.apply_delta(["a", "b", "c"], ["h0", "h1", "h0"])
        return plan

    def test_move_and_evict(self):
        plan = self._two_host_plan()
        touched = plan.apply_delta(["c", "a"], ["h1", None])
        assert touched == [0, 1]
        assert plan.host_of("a") is None
        assert plan.host_of("c") == "h1"
        assert plan.body_cpu[0] == 0.0
        assert plan.body_cpu[1] == 70.0

    def test_failed_delta_restores_everything(self):
        plan = self._two_host_plan()
        before = _capture(plan)
        # "c" fits on h1, but "a" (60) cannot join it (60+60+10 > 100):
        # the whole delta must roll back, including c's successful move.
        with pytest.raises(PlacementError):
            plan.apply_delta(["c", "a"], ["h1", "h1"])
        assert _capture(plan) == before

    def test_swap_within_one_delta(self):
        # Movers are pulled off first, so a pairwise swap that would
        # deadlock under move-at-a-time admission succeeds in one delta.
        plan = self._two_host_plan()
        plan.apply_delta(["a", "b"], ["h1", "h0"])
        assert plan.host_of("a") == "h1"
        assert plan.host_of("b") == "h0"

    def test_duplicate_mover_rejected(self):
        plan = self._two_host_plan()
        before = _capture(plan)
        with pytest.raises(PlacementError):
            plan.apply_delta(["a", "a"], ["h1", "h1"])
        assert _capture(plan) == before

    def test_mismatched_lengths_rejected(self):
        plan = self._two_host_plan()
        with pytest.raises(PlacementError):
            plan.apply_delta(["a"], ["h1", "h0"])

    def test_unknown_ids_rejected(self):
        plan = self._two_host_plan()
        with pytest.raises(PlacementError):
            plan.apply_delta(["nope"], ["h1"])
        with pytest.raises(PlacementError):
            plan.apply_delta(["a"], ["nope"])


class TestQueries:
    def test_affected_hosts(self):
        caps = HostCapacities(_fleet(3), utilization_bound=0.9)
        plan = IncrementalPlan(
            caps, ["a", "b", "c"], [10.0, 10.0, 10.0], [1.0, 1.0, 1.0]
        )
        plan.apply_delta(["a", "b"], ["h2", "h0"])
        assert plan.affected_hosts(["a", "b", "c"]) == [0, 2]
        assert plan.affected_hosts(["c"]) == []
        assert plan.active_hosts() == [0, 2]
        assert plan.assignment() == {"a": "h2", "b": "h0"}

    def test_set_demand_refolds_only_placed_hosts(self):
        caps = HostCapacities(_fleet(2), utilization_bound=0.9)
        plan = IncrementalPlan(
            caps, ["a", "b"], [10.0, 20.0], [1.0, 2.0]
        )
        plan.apply_delta(["a"], ["h0"])
        plan.set_demand("a", 50.0, 3.0)
        assert plan.body_cpu[0] == 50.0
        assert plan.body_mem[0] == 3.0
        # Unassigned VM: demand recorded, no body touched.
        plan.set_demand("b", 99.0, 9.0)
        assert plan.body_cpu == [50.0, 0.0]
        with pytest.raises(PlacementError):
            plan.set_demand("a", -1.0, 1.0)

    def test_copy_is_independent(self):
        rng = random.Random(5)
        plan = _random_plan(rng, 3, 6)
        clone = plan.copy()
        _assert_bitwise_equal(plan, clone)
        before = _capture(plan)
        _random_mutations(rng, clone, 10)
        assert _capture(plan) == before

    def test_capacities_validation(self):
        with pytest.raises(PlacementError):
            HostCapacities([], utilization_bound=0.9)
        caps = HostCapacities(_fleet(2), utilization_bound=0.5)
        assert caps.cap_cpu == [500.0, 500.0]
        assert caps.eps_cpu[0] == 500.0 + 1e-9
