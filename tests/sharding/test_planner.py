"""Sharded planning equivalence and safety invariants.

The load-bearing guarantees:

* a **1-shard** sharded plan is *bitwise identical* to the unsharded
  dynamic plan (the pipeline degenerates to the inner algorithm);
* a **multi-shard** plan places every VM exactly once per interval,
  never overfills a host (checked by refolding the fleet-wide demand
  table), and stays within a bounded active-host gap of the unsharded
  plan — the consolidation-quality contract reconciliation exists for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constraints.affinity import AntiColocate
from repro.constraints.manager import ConstraintSet
from repro.core.base import PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.incremental import HostCapacities
from repro.core.static import StaticConsolidation
from repro.exceptions import ConfigurationError
from repro.sharding import (
    ShardedConsolidation,
    build_demand_table,
)
from repro.sharding.planner import merge_shard_schedules, shard_context


def _classes(context):
    return [trace.vm.workload_class for trace in context.evaluation]


class TestSingleShardEquivalence:
    def test_one_shard_is_bitwise_identical(
        self, fleet_context, unsharded_schedule
    ) -> None:
        sharded = ShardedConsolidation(n_shards=1).plan(fleet_context)
        assert len(sharded) == len(unsharded_schedule)
        for left, right in zip(unsharded_schedule, sharded):
            assert left.placement.assignment == right.placement.assignment
            assert left.start_hour == right.start_hour
            assert left.end_hour == right.end_hour


class TestMultiShardInvariants:
    @pytest.fixture(scope="class")
    def algorithm(self) -> ShardedConsolidation:
        return ShardedConsolidation(n_shards=3)

    @pytest.fixture(scope="class")
    def sharded_schedule(self, algorithm, fleet_context):
        return algorithm.plan(fleet_context)

    def test_every_vm_placed_exactly_once(
        self, sharded_schedule, fleet_context
    ) -> None:
        vm_ids = set(fleet_context.evaluation.vm_ids)
        for segment in sharded_schedule:
            assert segment.placement.assignment.keys() == vm_ids

    def test_same_interval_boundaries_as_unsharded(
        self, sharded_schedule, unsharded_schedule
    ) -> None:
        assert [
            (s.start_hour, s.end_hour) for s in sharded_schedule
        ] == [(s.start_hour, s.end_hour) for s in unsharded_schedule]

    def test_no_host_overfills(
        self, algorithm, sharded_schedule, fleet_context
    ) -> None:
        table = build_demand_table(
            DynamicConsolidation(),
            fleet_context.history.store,
            fleet_context.evaluation.store,
            _classes(fleet_context),
            fleet_context,
        )
        caps = HostCapacities(
            list(fleet_context.datacenter.hosts),
            fleet_context.config.utilization_bound,
        )
        row_of = {vm: row for row, vm in enumerate(table.vm_ids)}
        host_of = {host: i for i, host in enumerate(caps.host_ids)}
        for column, segment in enumerate(sharded_schedule):
            rows = np.array(
                [row_of[vm] for vm in segment.placement.assignment]
            )
            hosts = np.array(
                [
                    host_of[host]
                    for host in segment.placement.assignment.values()
                ]
            )
            for matrix, eps in (
                (table.cpu_rpe2, caps.eps_cpu_np),
                (table.memory_gb, caps.eps_mem_np),
                (table.network_mbps, caps.eps_net_np),
                (table.disk_mbps, caps.eps_dsk_np),
            ):
                load = np.bincount(
                    hosts, weights=matrix[rows, column], minlength=caps.n
                )
                assert (load <= eps).all()

    def test_active_host_gap_is_bounded(
        self, sharded_schedule, unsharded_schedule
    ) -> None:
        sharded = np.array(
            [s.placement.active_host_count for s in sharded_schedule]
        )
        flat = np.array(
            [s.placement.active_host_count for s in unsharded_schedule]
        )
        # Reconciliation must keep the sharded plan's consolidation
        # ratio close to the unsharded optimum: within 10% (and never
        # more than 3 hosts) on this fleet, on average.
        gap = float(np.mean(sharded) - np.mean(flat))
        assert gap <= max(0.1 * float(np.mean(flat)), 3.0)

    def test_report_records_reconciliation(self, algorithm) -> None:
        report = algorithm.last_report
        assert report is not None
        assert report.n_shards == 3
        assert report.reconcile_moves >= 0
        assert len(report.active_hosts_before) == len(
            report.active_hosts_after
        )
        assert sum(report.active_hosts_after) <= sum(
            report.active_hosts_before
        )

    def test_reconcile_only_reduces_active_hosts(
        self, fleet_context
    ) -> None:
        raw = ShardedConsolidation(n_shards=3, reconcile=False)
        merged_only = raw.plan(fleet_context)
        reconciled = ShardedConsolidation(n_shards=3).plan(fleet_context)
        before = sum(
            s.placement.active_host_count for s in merged_only
        )
        after = sum(
            s.placement.active_host_count for s in reconciled
        )
        assert after <= before


class TestConfiguration:
    def test_rejects_constraints(self, fleet_context) -> None:
        vm_ids = fleet_context.evaluation.vm_ids
        constrained = PlanningContext(
            history=fleet_context.history,
            evaluation=fleet_context.evaluation,
            datacenter=fleet_context.datacenter,
            config=fleet_context.config,
            constraints=ConstraintSet([AntiColocate(vm_ids[0], vm_ids[1])]),
        )
        with pytest.raises(ConfigurationError, match="constraint"):
            ShardedConsolidation(n_shards=2).plan(constrained)

    def test_reconcile_requires_dynamic_inner(self, fleet_context) -> None:
        algorithm = ShardedConsolidation(
            n_shards=2, algorithm_factory=StaticConsolidation
        )
        with pytest.raises(ConfigurationError, match="DynamicConsolidation"):
            algorithm.plan(fleet_context)

    def test_non_dynamic_inner_allowed_without_reconcile(
        self, fleet_context
    ) -> None:
        algorithm = ShardedConsolidation(
            n_shards=2,
            algorithm_factory=StaticConsolidation,
            reconcile=False,
        )
        schedule = algorithm.plan(fleet_context)
        vm_ids = set(fleet_context.evaluation.vm_ids)
        for segment in schedule:
            assert segment.placement.assignment.keys() == vm_ids


class TestMergeShardSchedules:
    def test_rejects_empty(self) -> None:
        with pytest.raises(ConfigurationError, match="no shard schedules"):
            merge_shard_schedules([])

    def test_rejects_mismatched_boundaries(self, fleet_context) -> None:
        algorithm = ShardedConsolidation(n_shards=2, reconcile=False)
        shards_plan = algorithm.plan(fleet_context)
        full = DynamicConsolidation().plan(fleet_context)
        trimmed = type(full)(segments=full.segments[:-1])
        with pytest.raises(ConfigurationError, match="tile the window"):
            merge_shard_schedules([shards_plan, trimmed])

    def test_rejects_overlapping_vms(self, unsharded_schedule) -> None:
        with pytest.raises(ConfigurationError, match="overlap"):
            merge_shard_schedules([unsharded_schedule, unsharded_schedule])


class TestShardContext:
    def test_preserves_host_order_and_rows(self, fleet_context) -> None:
        algorithm = ShardedConsolidation(n_shards=2, reconcile=False)
        algorithm.plan(fleet_context)
        shard = algorithm.last_report.shards[1]
        sub = shard_context(shard, fleet_context)
        assert tuple(h.host_id for h in sub.datacenter) == shard.host_ids
        assert sub.evaluation.vm_ids == shard.vm_ids
        assert sub.config is fleet_context.config
        np.testing.assert_array_equal(
            sub.evaluation.store.cpu_rpe2,
            fleet_context.evaluation.store.cpu_rpe2[
                shard.vm_start:shard.vm_stop
            ],
        )


class TestBuildDemandTable:
    def test_blockwise_build_is_bit_identical(self, fleet_context) -> None:
        args = (
            DynamicConsolidation(),
            fleet_context.history.store,
            fleet_context.evaluation.store,
            _classes(fleet_context),
            fleet_context,
        )
        whole = build_demand_table(*args)
        blocked = build_demand_table(*args, block_rows=7)
        assert whole.vm_ids == blocked.vm_ids
        for metric in ("cpu_rpe2", "memory_gb", "network_mbps", "disk_mbps"):
            np.testing.assert_array_equal(
                getattr(whole, metric), getattr(blocked, metric)
            )
