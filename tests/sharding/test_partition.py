"""Topology-aligned fleet partitioning invariants.

The partitioner's contract: every VM lands in exactly one shard as a
contiguous row block, every rack stays whole, shard order follows host
insertion order, and everything is deterministic — the properties the
sharded planner's merge step and the memmap row-slice access pattern
both depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.sharding import ShardSpec, partition_fleet
from repro.sharding.partition import host_groups


def _pool(n_hosts: int = 56, hosts_per_rack: int = 14) -> Datacenter:
    return build_target_pool(
        "part-pool", host_count=n_hosts, hosts_per_rack=hosts_per_rack
    )


def _vm_ids(n: int) -> list:
    return [f"vm{i:04d}" for i in range(n)]


class TestHostGroups:
    def test_groups_follow_insertion_order(self) -> None:
        pool = _pool()
        labels = [label for label, _ in host_groups(pool)]
        assert labels == sorted(set(labels), key=labels.index)
        seen = [h.rack for h in pool]
        assert labels == sorted(set(seen), key=seen.index)

    def test_unlabeled_hosts_become_singletons(self) -> None:
        pool = Datacenter(name="bare")
        for index in range(3):
            pool.add_host(
                PhysicalServer(
                    host_id=f"h{index}",
                    spec=ServerSpec(cpu_rpe2=1000.0, memory_gb=64.0),
                )
            )
        groups = host_groups(pool)
        assert [label for label, _ in groups] == ["host:h0", "host:h1", "host:h2"]
        assert all(len(hosts) == 1 for _, hosts in groups)

    def test_rejects_unknown_key(self) -> None:
        with pytest.raises(ConfigurationError, match="partition key"):
            host_groups(_pool(), by="row")


class TestPartitionFleet:
    def test_vms_partition_exactly_once(self) -> None:
        vm_ids = _vm_ids(100)
        shards = partition_fleet(vm_ids, _pool(), 4)
        covered = [vm for shard in shards for vm in shard.vm_ids]
        assert covered == vm_ids
        assert [shard.index for shard in shards] == [0, 1, 2, 3]

    def test_vm_blocks_are_contiguous_row_ranges(self) -> None:
        vm_ids = _vm_ids(97)
        shards = partition_fleet(vm_ids, _pool(), 3)
        cursor = 0
        for shard in shards:
            assert shard.vm_start == cursor
            assert shard.vm_ids == tuple(vm_ids[shard.vm_start:shard.vm_stop])
            assert shard.n_vms >= 1
            cursor = shard.vm_stop
        assert cursor == len(vm_ids)

    def test_racks_stay_whole(self) -> None:
        pool = _pool()
        shards = partition_fleet(_vm_ids(80), pool, 4)
        owner = {}
        for shard in shards:
            for host_id in shard.host_ids:
                owner[host_id] = shard.index
        for _, hosts in host_groups(pool):
            owners = {owner[h.host_id] for h in hosts}
            assert len(owners) == 1
        assert sorted(owner) == sorted(h.host_id for h in pool)

    def test_weights_move_boundaries(self) -> None:
        vm_ids = _vm_ids(100)
        pool = _pool()
        uniform = partition_fleet(vm_ids, pool, 2)
        # All the demand mass sits in the first rows: the first shard's
        # block must shrink relative to the uniform split.
        weights = np.r_[np.full(10, 100.0), np.full(90, 1.0)]
        skewed = partition_fleet(vm_ids, pool, 2, vm_weights=weights)
        assert skewed[0].vm_stop < uniform[0].vm_stop

    def test_deterministic(self) -> None:
        vm_ids = _vm_ids(64)
        pool = _pool()
        assert partition_fleet(vm_ids, pool, 4) == partition_fleet(
            vm_ids, pool, 4
        )

    def test_single_shard_takes_everything(self) -> None:
        vm_ids = _vm_ids(10)
        pool = _pool()
        (shard,) = partition_fleet(vm_ids, pool, 1)
        assert shard.vm_ids == tuple(vm_ids)
        assert shard.host_ids == tuple(h.host_id for h in pool)

    def test_rejects_bad_requests(self) -> None:
        pool = _pool()
        with pytest.raises(ConfigurationError, match="n_shards"):
            partition_fleet(_vm_ids(4), pool, 0)
        with pytest.raises(ConfigurationError, match="zero VMs"):
            partition_fleet([], pool, 1)
        with pytest.raises(ConfigurationError, match="every shard needs"):
            partition_fleet(_vm_ids(2), pool, 3)
        with pytest.raises(ConfigurationError, match="groups"):
            partition_fleet(_vm_ids(50), pool, 5)  # only 4 racks
        with pytest.raises(ConfigurationError, match="vm_weights"):
            partition_fleet(_vm_ids(4), pool, 2, vm_weights=[1.0])
        with pytest.raises(ConfigurationError, match="non-negative"):
            partition_fleet(
                _vm_ids(4), pool, 2, vm_weights=[1.0, -1.0, 1.0, 1.0]
            )

    def test_shard_spec_validates_row_range(self) -> None:
        with pytest.raises(ConfigurationError, match="vm range"):
            ShardSpec(
                index=0,
                host_ids=("h0",),
                groups=("r0",),
                vm_ids=("vm0",),
                vm_start=0,
                vm_stop=2,
            )
