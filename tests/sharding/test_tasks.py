"""Runner fan-out for sharded planning.

Pins the orchestration contract: a pooled (2-worker) sharded plan from
a chunked on-disk store equals the serial in-process plan from the
preset source — same partition, same schedules — and source documents
carry enough identity (manifest fingerprint) to keep the runner's
content-addressed cache honest.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runner import ExperimentRunner
from repro.sharding import (
    KIND_SHARD_PLAN,
    chunked_source,
    generated_source,
    preset_source,
    run_sharded_plan,
    shard_plan_task,
)
from repro.sharding.partition import partition_fleet
from repro.workloads.chunked import write_trace_set
from repro.workloads.datacenters import generate_datacenter

_SCALE = 100 / 816
_DAYS = 4
_SEED = 23


@pytest.fixture(scope="module")
def small_traces():
    return generate_datacenter("banking", scale=_SCALE, days=_DAYS, seed=_SEED)


@pytest.fixture(scope="module")
def chunk_dir(small_traces, tmp_path_factory):
    directory = tmp_path_factory.mktemp("chunked-fleet")
    write_trace_set(small_traces, directory)
    return directory


def _run(source, runner, n_servers):
    return run_sharded_plan(
        source,
        n_shards=2,
        pool_hosts=max(4, n_servers // 2),
        pool_name="task-pool",
        evaluation_days=_DAYS - 2,
        runner=runner,
    )


class TestSourceDocuments:
    def test_preset_source_shape(self) -> None:
        source = preset_source("banking", scale=0.5, days=8, seed=3)
        assert source == {
            "kind": "preset",
            "datacenter": "banking",
            "scale": 0.5,
            "days": 8,
            "seed": 3,
        }

    def test_chunked_source_fingerprints_manifest(self, chunk_dir) -> None:
        source = chunked_source(chunk_dir)
        assert source["kind"] == "chunked"
        assert source["path"] == str(chunk_dir)
        assert len(source["fingerprint"]) == 64

    def test_chunked_source_requires_manifest(self, tmp_path) -> None:
        with pytest.raises(ConfigurationError, match="no chunked store"):
            chunked_source(tmp_path)

    def test_fingerprint_tracks_content(
        self, chunk_dir, small_traces, tmp_path
    ) -> None:
        rewritten = tmp_path / "copy"
        write_trace_set(small_traces.subset(small_traces.vm_ids[:10]), rewritten)
        assert (
            chunked_source(chunk_dir)["fingerprint"]
            != chunked_source(rewritten)["fingerprint"]
        )


class TestShardPlanTask:
    def test_task_identity(self, chunk_dir, small_traces) -> None:
        from repro.infrastructure.datacenter import build_target_pool

        pool = build_target_pool(
            "task-pool", host_count=len(small_traces) // 2
        )
        shard = partition_fleet(small_traces.vm_ids, pool, 2)[1]
        task = shard_plan_task(
            chunked_source(chunk_dir),
            shard,
            pool_name="task-pool",
            pool_hosts=len(small_traces) // 2,
        )
        assert task.kind == KIND_SHARD_PLAN
        assert task.params["vm_start"] == shard.vm_start
        assert task.params["vm_stop"] == shard.vm_stop
        assert task.params["host_ids"] == list(shard.host_ids)
        assert str(shard.index) in task.label


class TestRunShardedPlan:
    def test_chunked_pool_equals_preset_serial(
        self, chunk_dir, small_traces
    ) -> None:
        n = len(small_traces)
        pooled = _run(
            chunked_source(chunk_dir),
            ExperimentRunner(workers=2, use_cache=False),
            n,
        )
        serial = _run(
            preset_source("banking", scale=_SCALE, days=_DAYS, seed=_SEED),
            ExperimentRunner(serial=True, use_cache=False),
            n,
        )
        assert len(pooled.schedule) == len(serial.schedule)
        for left, right in zip(pooled.schedule, serial.schedule):
            assert left.placement.assignment == right.placement.assignment
        assert pooled.report.shards == serial.report.shards
        assert pooled.run_report.workers >= 1
        assert len(pooled.run_report.results) == pooled.report.n_shards

    def test_generated_source_equals_preset(self, small_traces) -> None:
        """Workers synthesizing only their own rows via the array
        engine's vm_range must reproduce the preset plan exactly."""
        n = len(small_traces)
        generated = _run(
            generated_source("banking", scale=_SCALE, days=_DAYS, seed=_SEED),
            ExperimentRunner(serial=True, use_cache=False),
            n,
        )
        preset = _run(
            preset_source("banking", scale=_SCALE, days=_DAYS, seed=_SEED),
            ExperimentRunner(serial=True, use_cache=False),
            n,
        )
        assert len(generated.schedule) == len(preset.schedule)
        for left, right in zip(generated.schedule, preset.schedule):
            assert left.placement.assignment == right.placement.assignment
        assert generated.report.shards == preset.report.shards

    def test_generated_source_document_shape(self) -> None:
        source = generated_source("banking", scale=0.5, days=8, seed=3)
        assert source == {
            "kind": "generated",
            "datacenter": "banking",
            "scale": 0.5,
            "days": 8,
            "seed": 3,
        }

    def test_run_records_reconciliation_report(self, chunk_dir, small_traces) -> None:
        run = _run(
            chunked_source(chunk_dir),
            ExperimentRunner(serial=True, use_cache=False),
            len(small_traces),
        )
        assert run.report.n_shards == 2
        assert run.report.reconcile_moves >= 0
        vm_ids = set(small_traces.vm_ids)
        for segment in run.schedule:
            assert segment.placement.assignment.keys() == vm_ids
