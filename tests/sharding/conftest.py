"""Shared fleet for the sharded-planning suite.

One calibrated ~120-server fleet with a rack-structured target pool,
planned once unsharded — the equivalence tests compare sharded plans
against it, so the expensive plans run once per session.
"""

from __future__ import annotations

import pytest

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.infrastructure.datacenter import build_target_pool
from repro.workloads.datacenters import generate_datacenter


@pytest.fixture(scope="package")
def fleet_traces():
    return generate_datacenter("banking", scale=120 / 816, days=4, seed=11)


@pytest.fixture(scope="package")
def fleet_context(fleet_traces):
    hours = int(fleet_traces.duration_hours)
    return PlanningContext(
        history=fleet_traces.window(0, 48),
        evaluation=fleet_traces.window(48, hours),
        datacenter=build_target_pool(
            "shard-pool", host_count=len(fleet_traces) // 2
        ),
        config=PlanningConfig(),
    )


@pytest.fixture(scope="package")
def unsharded_schedule(fleet_context):
    return DynamicConsolidation(engine="array").plan(fleet_context)
