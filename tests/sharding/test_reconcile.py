"""Hierarchical reconciliation pass semantics on hand-built plans.

Small, fully-determined fixtures (two racks, four hosts) pin the pass's
contract: rack-local vacates happen first, cross-rack vacates mop up
the rest, every vacate is all-or-nothing, and the vectorized prefilter
in :func:`reconcile_assignment` never builds plan state for an interval
with nothing to do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.exceptions import PlacementError
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.sharding.reconcile import reconcile_assignment, reconcile_plan
from repro.sizing.estimator import DemandTable

#: Two racks of two hosts each, 100 RPE2 / 100 GB per host.
_GROUP_OF_HOST = [0, 0, 1, 1]


def _caps() -> HostCapacities:
    hosts = [
        PhysicalServer(
            host_id=f"h{index}",
            spec=ServerSpec(cpu_rpe2=100.0, memory_gb=100.0),
        )
        for index in range(4)
    ]
    return HostCapacities(hosts, 1.0)


def _plan(cpu, assignment) -> IncrementalPlan:
    vm_ids = sorted(assignment)
    demands = [cpu[vm] for vm in vm_ids]
    return IncrementalPlan.from_assignment(
        _caps(),
        vm_ids,
        demands,
        [1.0] * len(vm_ids),  # memory never binds in these fixtures
        assignment,
    )


class TestReconcilePlan:
    def test_vacates_under_filled_hosts_rack_first(self) -> None:
        # h1 and h3 are under-filled tails; both fit inside their rack.
        cpu = {"a": 30.0, "b": 30.0, "c": 10.0, "d": 55.0, "e": 5.0}
        plan = _plan(
            cpu, {"a": "h0", "b": "h0", "c": "h1", "d": "h2", "e": "h3"}
        )
        moves = reconcile_plan(plan, _GROUP_OF_HOST)
        assert moves == 2
        result = plan.assignment()
        assert result["c"] == "h0"
        assert result["e"] == "h2"
        assert plan.active_hosts() == [0, 2]

    def test_cross_rack_vacate_when_rack_is_full(self) -> None:
        # h1's VM cannot fit on h0 (90+20 > 100) but fits on h2 in the
        # other rack: phase B must move it.
        cpu = {"a": 90.0, "b": 20.0, "c": 60.0}
        plan = _plan(cpu, {"a": "h0", "b": "h1", "c": "h2"})
        moves = reconcile_plan(plan, _GROUP_OF_HOST)
        assert moves == 1
        assert plan.assignment()["b"] == "h2"

    def test_vacate_is_all_or_nothing(self) -> None:
        # h1 holds two VMs; only one of them fits anywhere else.  A
        # partial move would strand the host active anyway, so the pass
        # must leave the assignment untouched.
        cpu = {"a": 80.0, "b": 30.0, "c": 18.0, "d": 85.0, "e": 82.0}
        plan = _plan(
            cpu,
            {"a": "h0", "b": "h1", "c": "h1", "d": "h2", "e": "h3"},
        )
        before = plan.assignment()
        assert reconcile_plan(plan, _GROUP_OF_HOST) == 0
        assert plan.assignment() == before

    def test_respects_fill_threshold(self) -> None:
        # At threshold 0.05 nothing is "under-filled", so nothing moves.
        cpu = {"a": 30.0, "b": 10.0}
        plan = _plan(cpu, {"a": "h0", "b": "h1"})
        assert (
            reconcile_plan(plan, _GROUP_OF_HOST, fill_threshold=0.05) == 0
        )

    def test_rejects_bad_threshold(self) -> None:
        plan = _plan({"a": 10.0}, {"a": "h0"})
        with pytest.raises(PlacementError, match="fill_threshold"):
            reconcile_plan(plan, _GROUP_OF_HOST, fill_threshold=0.0)


class TestReconcileAssignment:
    def _table(self, cpu_by_vm) -> DemandTable:
        vm_ids = tuple(sorted(cpu_by_vm))
        column = np.array([[cpu_by_vm[vm]] for vm in vm_ids])
        return DemandTable(
            vm_ids=vm_ids,
            cpu_rpe2=column,
            memory_gb=np.full_like(column, 1.0),
            network_mbps=np.zeros_like(column),
            disk_mbps=np.zeros_like(column),
        )

    def test_moves_tail_vms_and_reports_count(self) -> None:
        table = self._table({"a": 30.0, "b": 30.0, "c": 10.0})
        assignment = {"a": "h0", "b": "h0", "c": "h1"}
        result, moves = reconcile_assignment(
            assignment, table, 0, _caps(), _GROUP_OF_HOST
        )
        assert moves == 1
        assert result["c"] == "h0"
        # The input assignment is never mutated.
        assert assignment["c"] == "h1"

    def test_prefilter_skips_balanced_intervals(self) -> None:
        table = self._table({"a": 60.0, "b": 70.0})
        assignment = {"a": "h0", "b": "h1"}
        result, moves = reconcile_assignment(
            assignment, table, 0, _caps(), _GROUP_OF_HOST
        )
        assert moves == 0
        assert result == assignment
