"""Tests for server specs and physical servers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.metrics.catalog import HS23_ELITE


class TestServerSpec:
    def test_from_model_copies_capacity(self):
        spec = ServerSpec.from_model(HS23_ELITE)
        assert spec.cpu_rpe2 == HS23_ELITE.cpu_rpe2
        assert spec.memory_gb == HS23_ELITE.memory_gb
        assert spec.model_name == "hs23-elite"

    def test_cpu_memory_ratio(self):
        spec = ServerSpec(cpu_rpe2=1600.0, memory_gb=10.0)
        assert spec.cpu_memory_ratio == 160.0

    def test_scaled_preserves_ratio(self):
        spec = ServerSpec(cpu_rpe2=1000.0, memory_gb=10.0)
        scaled = spec.scaled(0.8)
        assert scaled.cpu_rpe2 == pytest.approx(800.0)
        assert scaled.memory_gb == pytest.approx(8.0)
        assert scaled.cpu_memory_ratio == pytest.approx(spec.cpu_memory_ratio)

    def test_scaled_rejects_nonpositive(self):
        spec = ServerSpec(cpu_rpe2=1000.0, memory_gb=10.0)
        with pytest.raises(ConfigurationError):
            spec.scaled(0.0)

    @pytest.mark.parametrize("cpu,mem", [(0, 1), (-1, 1), (1, 0), (1, -2)])
    def test_invalid_capacity(self, cpu, mem):
        with pytest.raises(ConfigurationError):
            ServerSpec(cpu_rpe2=cpu, memory_gb=mem)


class TestPhysicalServer:
    def test_capacity_shortcuts(self):
        host = PhysicalServer(
            host_id="h1", spec=ServerSpec(cpu_rpe2=500.0, memory_gb=4.0)
        )
        assert host.cpu_rpe2 == 500.0
        assert host.memory_gb == 4.0

    def test_empty_host_id_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicalServer(
                host_id="", spec=ServerSpec(cpu_rpe2=1.0, memory_gb=1.0)
            )

    def test_topology_defaults_to_none(self):
        host = PhysicalServer(
            host_id="h1", spec=ServerSpec(cpu_rpe2=1.0, memory_gb=1.0)
        )
        assert host.rack is None
        assert host.subnet is None
