"""Tests for VM abstractions and sized demands."""

import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import VirtualMachine, VMDemand, WorkloadClass


class TestWorkloadClass:
    @pytest.mark.parametrize(
        "label,expected",
        [
            ("web", "web"),
            ("web-interactive", "web"),
            ("batch", "batch"),
            ("steady-batch", "batch"),
            ("scheduled-batch", "batch"),
            ("idle", "batch"),
        ],
    )
    def test_top_level_mapping(self, label, expected):
        assert WorkloadClass.top_level(label) == expected

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadClass.top_level("quantum")


class TestVirtualMachine:
    def test_labels_default_empty(self):
        vm = VirtualMachine(vm_id="vm1", memory_config_gb=4.0)
        assert dict(vm.labels) == {}

    def test_invalid_workload_class_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(
                vm_id="vm1", memory_config_gb=4.0, workload_class="bogus"
            )

    @pytest.mark.parametrize("mem", [0.0, -1.0])
    def test_invalid_memory(self, mem):
        with pytest.raises(ConfigurationError):
            VirtualMachine(vm_id="vm1", memory_config_gb=mem)

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(vm_id="", memory_config_gb=4.0)


class TestVMDemand:
    def test_totals_include_tail(self):
        demand = VMDemand(
            vm_id="vm1",
            cpu_rpe2=100.0,
            memory_gb=2.0,
            tail_cpu_rpe2=50.0,
            tail_memory_gb=0.5,
        )
        assert demand.total_cpu_rpe2 == 150.0
        assert demand.total_memory_gb == 2.5

    def test_tail_defaults_to_zero(self):
        demand = VMDemand(vm_id="vm1", cpu_rpe2=100.0, memory_gb=2.0)
        assert demand.total_cpu_rpe2 == demand.cpu_rpe2
        assert demand.total_memory_gb == demand.memory_gb

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            VMDemand(vm_id="vm1", cpu_rpe2=-1.0, memory_gb=2.0)
        with pytest.raises(ConfigurationError):
            VMDemand(vm_id="vm1", cpu_rpe2=1.0, memory_gb=2.0,
                     tail_memory_gb=-0.1)
