"""Tests for the facilities cost models."""

import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.costs import PowerCostModel, SpaceCostModel, normalize


class TestSpaceCostModel:
    def test_rack_count_rounds_up(self):
        model = SpaceCostModel(hosts_per_rack=14)
        assert model.racks_needed(0) == 0
        assert model.racks_needed(1) == 1
        assert model.racks_needed(14) == 1
        assert model.racks_needed(15) == 2

    def test_cost_components(self):
        model = SpaceCostModel(
            server_cost=10.0,
            rack_cost=100.0,
            floor_cost_per_rack=50.0,
            hosts_per_rack=2,
        )
        # 3 servers -> 2 racks: 3*10 + 2*(100+50) = 330.
        assert model.cost(3) == 330.0

    def test_monotone_in_server_count(self):
        model = SpaceCostModel()
        costs = [model.cost(n) for n in range(1, 50)]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    def test_negative_server_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceCostModel().cost(-1)


class TestPowerCostModel:
    def test_pue_multiplies(self):
        model = PowerCostModel(price_per_kwh=0.1, pue=2.0)
        assert model.cost(100.0) == pytest.approx(20.0)

    def test_pue_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerCostModel(pue=0.9)

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerCostModel().cost(-1.0)


class TestNormalize:
    def test_baseline_becomes_one(self):
        out = normalize({"a": 50.0, "b": 100.0}, "b")
        assert out == {"a": 0.5, "b": 1.0}

    def test_missing_baseline(self):
        with pytest.raises(ConfigurationError, match="baseline"):
            normalize({"a": 1.0}, "b")

    def test_zero_baseline(self):
        with pytest.raises(ConfigurationError, match="zero"):
            normalize({"a": 0.0}, "a")
