"""Tests for datacenter topology."""

import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.metrics.catalog import HS23_ELITE


def _host(host_id: str, rack: str = "r0") -> PhysicalServer:
    return PhysicalServer(
        host_id=host_id,
        spec=ServerSpec(cpu_rpe2=100.0, memory_gb=1.0),
        rack=rack,
    )


class TestDatacenter:
    def test_add_and_lookup(self):
        dc = Datacenter(name="dc")
        dc.add_host(_host("h1"))
        assert dc.host("h1").host_id == "h1"
        assert "h1" in dc
        assert len(dc) == 1

    def test_duplicate_host_rejected(self):
        dc = Datacenter(name="dc")
        dc.add_host(_host("h1"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            dc.add_host(_host("h1"))

    def test_unknown_host_raises(self):
        dc = Datacenter(name="dc")
        with pytest.raises(ConfigurationError, match="unknown host"):
            dc.host("missing")

    def test_iteration_preserves_insertion_order(self):
        dc = Datacenter(name="dc")
        for i in range(5):
            dc.add_host(_host(f"h{i}"))
        assert [h.host_id for h in dc] == [f"h{i}" for i in range(5)]

    def test_construction_with_initial_hosts(self):
        dc = Datacenter(name="dc", _hosts=[_host("a"), _host("b")])
        assert len(dc) == 2
        assert dc.host("b").host_id == "b"

    def test_racks_and_membership(self):
        dc = Datacenter(name="dc")
        dc.add_host(_host("h1", rack="r1"))
        dc.add_host(_host("h2", rack="r2"))
        dc.add_host(_host("h3", rack="r1"))
        assert dc.racks() == ("r1", "r2")
        assert [h.host_id for h in dc.hosts_in_rack("r1")] == ["h1", "h3"]

    def test_capacity_totals(self):
        dc = Datacenter(name="dc", _hosts=[_host("a"), _host("b")])
        assert dc.total_cpu_rpe2() == 200.0
        assert dc.total_memory_gb() == 2.0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Datacenter(name="")


class TestBuildTargetPool:
    def test_default_model_is_hs23(self):
        pool = build_target_pool("p", host_count=3)
        for host in pool:
            assert host.spec.cpu_memory_ratio == pytest.approx(160.0)
            assert host.model is HS23_ELITE

    def test_rack_assignment(self):
        pool = build_target_pool("p", host_count=30, hosts_per_rack=14)
        racks = pool.racks()
        assert len(racks) == 3  # ceil(30 / 14)
        assert len(pool.hosts_in_rack(racks[0])) == 14
        assert len(pool.hosts_in_rack(racks[-1])) == 2

    def test_custom_subnets_round_robin(self):
        pool = build_target_pool(
            "p", host_count=28, hosts_per_rack=14, subnets=["netA", "netB"]
        )
        subnets = {h.subnet for h in pool}
        assert subnets == {"netA", "netB"}

    def test_host_ids_unique_and_stable(self):
        pool = build_target_pool("p", host_count=5)
        assert [h.host_id for h in pool] == [f"p-h{i:04d}" for i in range(5)]

    @pytest.mark.parametrize("count", [0, -3])
    def test_invalid_host_count(self, count):
        with pytest.raises(ConfigurationError):
            build_target_pool("p", host_count=count)
