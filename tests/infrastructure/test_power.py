"""Tests for the linear power model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.infrastructure.power import LinearPowerModel
from repro.metrics.catalog import HS23_ELITE


class TestLinearPowerModel:
    def test_idle_and_peak_endpoints(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        assert model.power_watts(0.0) == 100.0
        assert model.power_watts(1.0) == 300.0

    def test_linear_midpoint(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        assert model.power_watts(0.5) == 200.0

    def test_inactive_server_draws_nothing(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        assert model.power_watts(0.5, active=False) == 0.0

    def test_utilization_clipped(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        # Contended demand cannot draw more than the loaded server.
        assert model.power_watts(1.7) == 300.0
        assert model.power_watts(-0.2) == 100.0

    def test_vectorized_matches_scalar(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        utils = np.array([0.0, 0.25, 0.5, 1.0, 1.5])
        vector = model.power_watts_array(utils)
        scalar = [model.power_watts(u) for u in utils]
        assert np.allclose(vector, scalar)

    def test_energy_kwh(self):
        model = LinearPowerModel(idle_watts=100.0, peak_watts=300.0)
        # Two hours at idle and one at peak: (100+100+300) * 1h = 0.5 kWh.
        assert model.energy_kwh([0.0, 0.0, 1.0], 1.0) == pytest.approx(0.5)

    def test_from_model(self):
        model = LinearPowerModel.from_model(HS23_ELITE)
        assert model.idle_watts == HS23_ELITE.idle_watts
        assert model.peak_watts == HS23_ELITE.peak_watts

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinearPowerModel(idle_watts=-1.0, peak_watts=100.0)
        with pytest.raises(ConfigurationError):
            LinearPowerModel(idle_watts=200.0, peak_watts=100.0)
        model = LinearPowerModel(idle_watts=1.0, peak_watts=2.0)
        with pytest.raises(ConfigurationError):
            model.energy_kwh([0.5], 0.0)
