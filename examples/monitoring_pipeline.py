#!/usr/bin/env python3
"""The full monitoring-to-planning pipeline (paper §3.1).

Walks the data path a real engagement follows:

1. per-server monitoring agents sample Table-1 metrics every minute
   (some servers drop samples; one has no hardware record in the CMDB),
2. the central warehouse aggregates to hourly averages, applies its
   30-day retention policy, and tracks completeness,
3. the export step filters unusable servers (the paper's §3.2 filter),
4. candidate analysis (Bobroff-style) identifies which servers dynamic
   placement could actually help,
5. the exported trace set feeds consolidation planning as usual.

Along the way the agents measure the intra-interval burst premium that
grounds dynamic consolidation's sizing factor.

Run:  python examples/monitoring_pipeline.py
"""

import numpy as np

from repro import (
    ConsolidationPlanner,
    SemiStaticConsolidation,
    DynamicConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.analysis import rank_candidates
from repro.core.dynamic import DynamicConsolidation as _Dynamic
from repro.experiments.formatting import format_table
from repro.monitoring import DataWarehouse, MonitoringAgent, TABLE1_METRICS


def main() -> None:
    # Ground truth: what the servers actually did.
    ground_truth = generate_datacenter("beverage", scale=0.08)
    print(
        f"Estate: {len(ground_truth)} servers; agents collect "
        f"{len(TABLE1_METRICS)} metrics every minute (Table 1)."
    )

    # 1-2. Agents ship minute samples; the warehouse aggregates.
    warehouse = DataWarehouse(retention_days=30)
    premiums = []
    for index, trace in enumerate(ground_truth):
        drop = 0.30 if index % 17 == 0 else 0.0   # a few flaky agents
        agent = MonitoringAgent(trace, seed=index, drop_probability=drop)
        warehouse.ingest_agent(agent, spec_available=(index % 23 != 5))
        if index < 20:
            premiums.append(agent.burst_premium(window_hours=2)[0])
    print(
        f"Measured intra-2h burst premium: mean {np.mean(premiums):.2f} "
        f"(dynamic consolidation sizes with factor "
        f"{_Dynamic().cpu_burst_factor})"
    )

    # 3. Export with the paper's filter.
    planning_set, excluded = warehouse.export_trace_set(
        "beverage-plan", min_completeness=0.9
    )
    print(
        f"Export: {len(planning_set)} plannable servers; "
        f"{len(excluded)} excluded (incomplete data or missing specs)."
    )

    # 4. Who would dynamic placement actually help?
    ranked = rank_candidates(planning_set)
    good = [s for s in ranked if s.is_good_candidate]
    print(
        f"Candidate analysis: {len(good)}/{len(ranked)} servers are "
        "good dynamic-placement candidates."
    )

    # 5. Plan on the warehouse export.
    pool = build_target_pool("pool", host_count=max(12, len(planning_set) // 2))
    planner = ConsolidationPlanner(traces=planning_set, datacenter=pool)
    results = planner.compare(
        [SemiStaticConsolidation(), DynamicConsolidation()]
    )
    rows = [
        (
            name,
            result.provisioned_servers,
            f"{result.energy_kwh:.0f} kWh",
            result.total_migrations(),
        )
        for name, result in results.items()
    ]
    print()
    print(format_table(["scheme", "servers", "energy(14d)", "migrations"], rows))


if __name__ == "__main__":
    main()
