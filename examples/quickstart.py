#!/usr/bin/env python3
"""Quickstart: plan and compare VM consolidation for one datacenter.

Generates a scaled-down version of the paper's Banking datacenter,
builds a pool of HS23 virtualization blades, runs the paper's three
consolidation variants over the same 14-day window, and prints the
headline comparison (Fig. 7's rows for one workload).

Run:  python examples/quickstart.py
"""

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    SemiStaticConsolidation,
    StochasticConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.experiments.formatting import format_table
from repro.infrastructure import PowerCostModel, SpaceCostModel, normalize


def main() -> None:
    # 1. Monitoring: 30 days of hourly traces for a Banking-like estate
    #    (scale=0.2 -> ~163 servers; scale=1.0 reproduces all 816).
    traces = generate_datacenter("banking", scale=0.2)
    print(
        f"Generated {len(traces)} servers, "
        f"mean CPU utilization {traces.mean_cpu_utilization():.1%}"
    )

    # 2. Target pool: identical HS23 Elite blades (128 GB, ratio 160).
    pool = build_target_pool("pool", host_count=len(traces) // 2)

    # 3. Plan with each variant and emulate over the evaluation window.
    planner = ConsolidationPlanner(traces=traces, datacenter=pool)
    results = planner.compare(
        [
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        ]
    )

    # 4. Report the paper's headline metrics.
    space_model, power_model = SpaceCostModel(), PowerCostModel()
    space = normalize(
        {k: space_model.cost(r.provisioned_servers) for k, r in results.items()},
        "semi-static",
    )
    power = normalize(
        {k: power_model.cost(r.energy_kwh) for k, r in results.items()},
        "semi-static",
    )
    rows = [
        (
            name,
            result.provisioned_servers,
            f"{space[name]:.2f}",
            f"{power[name]:.2f}",
            f"{result.contention_time_fraction():.4f}",
            result.total_migrations(),
        )
        for name, result in results.items()
    ]
    print()
    print(
        format_table(
            ["scheme", "servers", "space", "power", "contention", "migrations"],
            rows,
        )
    )
    print(
        "\nPaper's shape: stochastic matches/beats dynamic on space; "
        "dynamic wins on power for this bursty workload — at the price "
        "of migrations and contention risk."
    )


if __name__ == "__main__":
    main()
