#!/usr/bin/env python3
"""Live-migration reliability and the reservation rule (Observation 4).

Simulates populations of pre-copy live migrations across source-host
load levels, shows the reliability cliff (stable below ~80% CPU / ~85%
memory commit), derives the recommended reservation, and demonstrates
how the reservation feeds the dynamic-consolidation sensitivity study.

Run:  python examples/migration_study.py
"""

from repro.experiments.formatting import format_table
from repro.migration import (
    recommended_reservation,
    reliability_sweep,
    simulate_migration,
)


def single_migration_anatomy() -> None:
    print("One migration, three host-load situations (2 GB VM, 20 MB/s dirty):")
    rows = []
    for label, cpu, memory in (
        ("cool host", 0.40, 0.40),
        ("at the 80% bound", 0.78, 0.78),
        ("over the cliff", 0.95, 0.95),
    ):
        outcome = simulate_migration(
            2.0, 20.0, host_cpu_util=cpu, host_memory_util=memory
        )
        rows.append(
            (
                label,
                f"{cpu:.0%}",
                "ok" if outcome.success else "FAILED",
                f"{outcome.duration_s:.0f}s",
                f"{outcome.downtime_s * 1000:.0f}ms",
                outcome.rounds,
                f"{outcome.overhead_factor:.2f}x",
            )
        )
    print(
        format_table(
            ["situation", "host_load", "result", "duration", "downtime",
             "rounds", "bytes_moved"],
            rows,
        )
    )


def reservation_study() -> None:
    print("\nReliability vs host utilization (200 migrations per point):")
    points = reliability_sweep([0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95])
    rows = [
        (
            f"{p.host_cpu_util:.2f}",
            f"{p.success_rate:.1%}",
            f"{p.mean_duration_s:.0f}s",
            f"{p.p99_duration_s:.0f}s",
            "yes" if p.reliable() else "no",
        )
        for p in points
    ]
    print(
        format_table(
            ["host_util", "success", "mean", "p99", "reliable"], rows
        )
    )
    reservation = recommended_reservation()
    print(
        f"\nRecommended reservation: {reservation:.0%} of CPU and memory "
        "(paper's Observation 4: at least 20%)."
    )


def main() -> None:
    single_migration_anatomy()
    reservation_study()


if __name__ == "__main__":
    main()
