#!/usr/bin/env python3
"""Section-4 trace analysis across the four enterprise datacenters.

Reproduces the workload-characterization study: burstiness of CPU vs
memory (Observations 1 and 2) and the aggregate CPU:memory resource
ratio against the HS23 reference blade (Observation 3).

Run:  python examples/trace_analysis.py [scale]
"""

import sys

from repro.analysis import analyze_burstiness, analyze_resource_ratio
from repro.experiments.formatting import format_table
from repro.workloads import ALL_DATACENTERS, generate_datacenter


def main(scale: float = 0.2) -> None:
    burstiness_rows = []
    ratio_rows = []
    for config in ALL_DATACENTERS:
        traces = generate_datacenter(config.key, scale=scale)
        report = analyze_burstiness(traces, intervals_hours=(1.0, 2.0, 4.0))
        ratio = analyze_resource_ratio(traces)
        burstiness_rows.append(
            (
                config.label,
                config.industry,
                f"{report.median_p2a('cpu', 1.0):.1f}",
                f"{report.cov['cpu'].fraction_above(1.0):.0%}",
                f"{report.median_p2a('memory', 1.0):.2f}",
                f"{report.cov['memory'].fraction_above(1.0):.0%}",
            )
        )
        ratio_rows.append(
            (
                config.label,
                f"{ratio.median_ratio:.0f}",
                f"{ratio.cdf.quantile(0.95):.0f}",
                f"{ratio.fraction_memory_constrained:.0%}",
            )
        )

    print("Observation 1 & 2 — CPU is bursty, memory is not:")
    print(
        format_table(
            [
                "dc",
                "industry",
                "cpu_p2a_med",
                "cpu_heavy_tail",
                "mem_p2a_med",
                "mem_heavy_tail",
            ],
            burstiness_rows,
        )
    )
    print()
    print(
        "Observation 3 — consolidated datacenters are memory-constrained\n"
        "(aggregate RPE2-per-GB demand vs the HS23 blade's 160):"
    )
    print(
        format_table(
            ["dc", "ratio_median", "ratio_p95", "mem_constrained"],
            ratio_rows,
        )
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
