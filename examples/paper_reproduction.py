#!/usr/bin/env python3
"""Regenerate the complete paper reproduction as one markdown report.

Runs every table, figure, observation and extension study in the
paper's order and writes a self-contained markdown document — the
machine-generated counterpart of EXPERIMENTS.md.  The heavy sweeps fan
out over a process pool and land in the runner's content-addressed
cache, so a rerun (or a later benchmark session) reuses them; pass
``--serial`` to execute everything in-process instead.  Set scale to
1.0 (and bring some patience) for the full 3373-server reproduction.

Run:  python examples/paper_reproduction.py [output.md] [--scale 0.15]
          [--serial | --workers N] [--cache-dir PATH]
"""

import argparse
import time

from repro.experiments.report import generate_report
from repro.experiments.settings import ExperimentSettings
from repro.runner import ExperimentRunner


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "output",
        nargs="?",
        default="reproduction_report.md",
        help="output markdown path",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="datacenter scale (1.0 = the paper's sizes)",
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="run everything in-process (no worker pool)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: auto)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-runner)",
    )
    return parser.parse_args(argv)


def main(args: argparse.Namespace) -> None:
    settings = ExperimentSettings(scale=args.scale)
    runner = ExperimentRunner(
        workers=args.workers, serial=args.serial, cache_dir=args.cache_dir
    )
    mode = "serially" if runner.serial else f"on {runner.workers} workers"
    print(
        f"Reproducing every figure/table at scale {args.scale} {mode} "
        f"({settings.evaluation_days}-day window, "
        f"{settings.reservation:.0%} migration reservation)..."
    )
    started = time.perf_counter()
    report = generate_report(settings, runner=runner)
    elapsed = time.perf_counter() - started
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(report)
    sections = report.count("\n## ")
    print(
        f"Wrote {args.output}: {sections} experiments, "
        f"{len(report.splitlines())} lines, {elapsed:.0f}s."
    )
    if runner.cache_dir is not None:
        print(f"Result cache: {runner.cache_dir} (rerun to reuse it).")
    print("Compare against EXPERIMENTS.md for the paper-vs-measured bands.")


if __name__ == "__main__":
    main(parse_args())
