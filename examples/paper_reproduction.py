#!/usr/bin/env python3
"""Regenerate the complete paper reproduction as one markdown report.

Runs every table, figure, observation and extension study in the
paper's order and writes a self-contained markdown document — the
machine-generated counterpart of EXPERIMENTS.md.  At the default scale
this takes a couple of minutes; set ``REPRO_SCALE=1.0`` (and some
patience) for the full 3373-server reproduction.

Run:  python examples/paper_reproduction.py [output.md] [scale]
"""

import sys
import time

from repro.experiments.report import generate_report
from repro.experiments.settings import ExperimentSettings


def main(output_path: str = "reproduction_report.md", scale: float = 0.15) -> None:
    settings = ExperimentSettings(scale=scale)
    print(
        f"Reproducing every figure/table at scale {scale} "
        f"({settings.evaluation_days}-day window, "
        f"{settings.reservation:.0%} migration reservation)..."
    )
    started = time.perf_counter()
    report = generate_report(settings)
    elapsed = time.perf_counter() - started
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    sections = report.count("\n## ")
    print(
        f"Wrote {output_path}: {sections} experiments, "
        f"{len(report.splitlines())} lines, {elapsed:.0f}s."
    )
    print("Compare against EXPERIMENTS.md for the paper-vs-measured bands.")


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "reproduction_report.md"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    main(out, scale)
