#!/usr/bin/env python3
"""Bring your own workload: custom profiles, archives, custom hardware.

Shows the extension points a downstream user needs to apply the library
to their own estate instead of the paper's four datacenters:

* define a custom workload class profile (a CI-farm: idle nights,
  correlated bursts during working hours),
* register custom source hardware in the catalog,
* generate a trace set with cross-server correlation,
* save it to a ``.npz`` archive and load it back (the exchange format),
* run a consolidation comparison on it.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    SemiStaticConsolidation,
    build_target_pool,
)
from repro.experiments.formatting import format_table
from repro.metrics import ServerModel, register_model
from repro.workloads import (
    CpuModel,
    CorrelationModel,
    MemoryModel,
    ScheduledJobSpec,
    WorkloadClassProfile,
    generate_trace_set,
    load_trace_set,
    save_trace_set,
)
from repro.infrastructure.vm import WorkloadClass


def build_ci_farm_profile() -> WorkloadClassProfile:
    """A CI build farm: bursty by day, nightly artifact builds."""
    return WorkloadClassProfile(
        name="ci-farm",
        workload_class=WorkloadClass.SCHEDULED_BATCH,
        mean_util=0.08,
        cpu=CpuModel(
            diurnal_amplitude=2.0,       # builds follow the workday
            weekend_factor=0.2,          # weekends are quiet
            lognormal_sigma=0.7,         # merge-queue bursts
            spike_rate_per_hour=0.01,    # release-day stampedes
            spike_scale=0.2,
            scheduled=ScheduledJobSpec(  # nightly full rebuild
                period_hours=24, start_hour=1, duration_hours=3, level=0.5
            ),
        ),
        memory=MemoryModel(base_frac=0.25, dynamic_frac=0.35),
        correlation_sensitivity=0.9,     # everyone merges at once
    )


def main() -> None:
    register_model(
        ServerModel(
            name="build-node",
            cpu_rpe2=6000.0,
            memory_gb=24.0,
            idle_watts=140.0,
            peak_watts=330.0,
            description="CI build node",
        ),
        replace=True,
    )
    from repro.metrics import get_model

    profile = build_ci_farm_profile()
    traces = generate_trace_set(
        "ci-farm",
        [(profile, get_model("build-node"), 60)],
        n_hours=30 * 24,
        seed=77,
        correlation=CorrelationModel(
            event_rate_per_day=0.4, event_participation=0.5
        ),
    )
    print(
        f"Generated {len(traces)} build nodes, mean CPU "
        f"{traces.mean_cpu_utilization():.1%}"
    )

    # Round-trip through the archive format (what a monitoring pipeline
    # would hand to the planner).
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace_set(traces, Path(tmp) / "ci-farm.npz")
        print(f"Archived to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB), reloading...")
        traces = load_trace_set(path)

    pool = build_target_pool("ci-pool", host_count=30)
    planner = ConsolidationPlanner(traces=traces, datacenter=pool)
    results = planner.compare(
        [SemiStaticConsolidation(), DynamicConsolidation()]
    )
    rows = [
        (
            name,
            r.provisioned_servers,
            f"{r.energy_kwh:.0f} kWh",
            f"{r.active_fraction_series().mean():.2f}",
        )
        for name, r in results.items()
    ]
    print()
    print(format_table(
        ["scheme", "servers", "energy(14d)", "mean_active_frac"], rows
    ))
    print(
        "\nA strongly diurnal farm is dynamic consolidation's best case: "
        "nights and weekends run on a fraction of the blades."
    )


if __name__ == "__main__":
    main()
