#!/usr/bin/env python3
"""A realistic consolidation-planning engagement with constraints.

Models the workflow the paper's team ran in 30+ engagements: pull a
month of monitoring data, apply the customer's deployment constraints
(HA anti-affinity, a pinned compliance box, a same-subnet application
group), compare consolidation variants, and sweep the live-migration
reservation to decide whether dynamic consolidation is worth its risk
for this estate (Figs. 7 and 13 in one run).

The seven planner runs (three baseline schemes + a four-point
reservation sweep) are independent, so they fan out as
``planning-run`` tasks over :class:`repro.runner.ExperimentRunner` —
sharing one cached trace set — unless ``--serial`` keeps them
in-process.

Run:  python examples/datacenter_planning.py [datacenter] [--scale S]
          [--serial | --workers N]
"""

import argparse

from repro import build_target_pool, generate_datacenter
from repro.experiments.formatting import format_table
from repro.runner import ExperimentRunner, planning_task

BASELINE_SCHEMES = ("semi-static", "stochastic", "dynamic")
RESERVATION_BOUNDS = (0.7, 0.8, 0.9, 1.0)


def parse_args(argv: "list[str] | None" = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("datacenter", nargs="?", default="beverage")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument(
        "--serial",
        action="store_true",
        help="run the planner tasks in-process (no worker pool)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: auto)",
    )
    return parser.parse_args(argv)


def main(args: argparse.Namespace) -> None:
    datacenter, scale = args.datacenter, args.scale
    traces = generate_datacenter(datacenter, scale=scale)
    pool_hosts = max(12, len(traces) // 2)
    # Mirror the pool the planning-run executor builds, so the pinned
    # host id below resolves inside the workers too.
    pool = build_target_pool(
        f"{datacenter}-pool", host_count=pool_hosts, hosts_per_rack=14
    )
    vm_ids = traces.vm_ids

    # The customer's deployment rules: two replicated tiers that must
    # not share a host, a compliance appliance pinned to blade 0, and a
    # three-tier application that must stay in one subnet.
    constraints = (
        {"type": "anti-colocate", "vms": [vm_ids[0], vm_ids[1]]},
        {"type": "anti-colocate", "vms": [vm_ids[2], vm_ids[3]]},
        {"type": "pin", "vm": vm_ids[4], "host": pool.hosts[0].host_id},
        {
            "type": "same-subnet",
            "vms": [vm_ids[5], vm_ids[6], vm_ids[7]],
        },
    )

    def plan(scheme: str, bound: float = 0.8):
        return planning_task(
            datacenter,
            scale=scale,
            algorithm=scheme,
            utilization_bound=bound,
            pool_hosts=pool_hosts,
            constraints=constraints,
        )

    # Baseline comparison at the 20% migration reservation (Table 3),
    # then the reservation sweep — one task list, one fan-out.
    tasks = [plan(scheme) for scheme in BASELINE_SCHEMES]
    tasks += [plan("dynamic", bound) for bound in RESERVATION_BOUNDS]

    runner = ExperimentRunner(workers=args.workers, serial=args.serial)
    print(
        f"Engagement: {datacenter}, {len(traces)} source servers, "
        f"{len(constraints)} deployment constraints, {len(tasks)} planner "
        f"runs ({'serial' if runner.serial else f'{runner.workers} workers'})"
        "\n"
    )
    report = runner.run(tasks)
    baseline = dict(zip(BASELINE_SCHEMES, report.results))
    sweep = dict(
        zip(RESERVATION_BOUNDS, report.results[len(BASELINE_SCHEMES):])
    )

    rows = [
        (
            name,
            r.provisioned_servers,
            f"{r.energy_kwh:.0f} kWh",
            f"{r.contention_time_fraction():.4f}",
            r.total_migrations(),
        )
        for name, r in baseline.items()
    ]
    print(format_table(
        ["scheme", "servers", "energy(14d)", "contention", "migrations"],
        rows,
    ))

    print("\nDynamic consolidation vs live-migration reservation:")
    sweep_rows = [
        (
            f"{1 - bound:.0%}",
            result.provisioned_servers,
            f"{result.energy_kwh:.0f} kWh",
            f"{result.contention_time_fraction():.4f}",
        )
        for bound, result in sweep.items()
    ]
    print(format_table(
        ["reservation", "servers", "energy(14d)", "contention"], sweep_rows
    ))
    stochastic_servers = baseline["stochastic"].provisioned_servers
    print(
        f"\nDecision aid: stochastic semi-static needs "
        f"{stochastic_servers} servers with zero migrations — dynamic "
        "must beat that within a reservation you can actually afford "
        "(the paper's Observation 4 says 20%)."
    )
    print(f"\n{report.describe()}")


if __name__ == "__main__":
    main(parse_args())
