#!/usr/bin/env python3
"""A realistic consolidation-planning engagement with constraints.

Models the workflow the paper's team ran in 30+ engagements: pull a
month of monitoring data, apply the customer's deployment constraints
(HA anti-affinity, a pinned compliance box, a same-subnet application
group), compare consolidation variants, and sweep the live-migration
reservation to decide whether dynamic consolidation is worth its risk
for this estate (Figs. 7 and 13 in one run).

Run:  python examples/datacenter_planning.py [datacenter] [scale]
"""

import sys

from repro import (
    ConsolidationPlanner,
    DynamicConsolidation,
    SemiStaticConsolidation,
    StochasticConsolidation,
    build_target_pool,
    generate_datacenter,
)
from repro.constraints import (
    AntiColocate,
    ConstraintSet,
    PinToHost,
    SameSubnet,
)
from repro.core import PlanningConfig
from repro.experiments.formatting import format_table


def main(datacenter: str = "beverage", scale: float = 0.15) -> None:
    traces = generate_datacenter(datacenter, scale=scale)
    pool = build_target_pool(
        "pool", host_count=max(12, len(traces) // 2), hosts_per_rack=14
    )
    vm_ids = traces.vm_ids

    # The customer's deployment rules: two replicated tiers that must
    # not share a host, a compliance appliance pinned to blade 0, and a
    # three-tier application that must stay in one subnet.
    constraints = ConstraintSet(
        [
            AntiColocate(vm_ids[0], vm_ids[1]),
            AntiColocate(vm_ids[2], vm_ids[3]),
            PinToHost(vm_ids[4], pool.hosts[0].host_id),
            SameSubnet(vm_ids[5], vm_ids[6], vm_ids[7]),
        ]
    )

    print(f"Engagement: {datacenter}, {len(traces)} source servers, "
          f"{len(constraints)} deployment constraints\n")

    # Baseline comparison at the 20% migration reservation (Table 3).
    planner = ConsolidationPlanner(
        traces=traces, datacenter=pool, constraints=constraints
    )
    results = planner.compare(
        [
            SemiStaticConsolidation(),
            StochasticConsolidation(),
            DynamicConsolidation(),
        ]
    )
    rows = [
        (
            name,
            r.provisioned_servers,
            f"{r.energy_kwh:.0f} kWh",
            f"{r.contention_time_fraction():.4f}",
            r.total_migrations(),
        )
        for name, r in results.items()
    ]
    print(format_table(
        ["scheme", "servers", "energy(14d)", "contention", "migrations"],
        rows,
    ))

    # Reservation sweep: is dynamic consolidation worth enabling here?
    print("\nDynamic consolidation vs live-migration reservation:")
    sweep_rows = []
    for bound in (0.7, 0.8, 0.9, 1.0):
        sweep_planner = ConsolidationPlanner(
            traces=traces,
            datacenter=pool,
            constraints=constraints,
            config=PlanningConfig(utilization_bound=bound),
        )
        result = sweep_planner.run(DynamicConsolidation())
        sweep_rows.append(
            (
                f"{1 - bound:.0%}",
                result.provisioned_servers,
                f"{result.energy_kwh:.0f} kWh",
                f"{result.contention_time_fraction():.4f}",
            )
        )
    print(format_table(
        ["reservation", "servers", "energy(14d)", "contention"], sweep_rows
    ))
    stochastic_servers = results["stochastic"].provisioned_servers
    print(
        f"\nDecision aid: stochastic semi-static needs "
        f"{stochastic_servers} servers with zero migrations — dynamic "
        "must beat that within a reservation you can actually afford "
        "(the paper's Observation 4 says 20%)."
    )


if __name__ == "__main__":
    dc = sys.argv[1] if len(sys.argv) > 1 else "beverage"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    main(dc, scale)
