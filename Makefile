# Developer entry points. CI runs `make check`; see .github/workflows/ci.yml.
#
# PYTHONPATH=src keeps everything runnable from a bare checkout without
# an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test check list-rules bench-smoke bench-baseline golden-regen

lint:
	$(PYTHON) -m repro.devtools src/repro

test:
	$(PYTHON) -m pytest -x -q

check: lint test

# Exercises the parallel runner end-to-end (serial vs parallel vs
# cache-warm over the four-datacenter sweep) without pytest-benchmark,
# plus a tiny kernel-benchmark pass that checks the vectorized demand
# kernels still agree with their scalar references.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_runner_sweep.py -q -s
	$(PYTHON) benchmarks/bench_kernels.py --smoke

# Re-pin the committed kernel benchmark numbers (paper-scale instances,
# see docs/PERFORMANCE.md); review the JSON diff like any other change.
bench-baseline:
	$(PYTHON) benchmarks/bench_kernels.py --out BENCH_kernels.json

# Re-pin the golden regression fixtures after an intentional change;
# review the JSON diff like any other code change.
golden-regen:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest tests/golden -q

list-rules:
	$(PYTHON) -m repro.devtools --list-rules
