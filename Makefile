# Developer entry points. CI runs `make check`; see .github/workflows/ci.yml.
#
# PYTHONPATH=src keeps everything runnable from a bare checkout without
# an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test check list-rules

lint:
	$(PYTHON) -m repro.devtools src/repro

test:
	$(PYTHON) -m pytest -x -q

check: lint test

list-rules:
	$(PYTHON) -m repro.devtools --list-rules
