# Developer entry points. CI runs `make check`; see .github/workflows/ci.yml.
#
# PYTHONPATH=src keeps everything runnable from a bare checkout without
# an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint lint-changed test check list-rules bench-smoke bench-baseline golden-regen soak

# Two lint gates: every rule on the library, then the whole-program
# rules (engine parity, cache purity, unit flow, dead exports) across
# the full tree — they need tests/examples/benchmarks in the semantic
# model to judge reachability and liveness.
lint:
	$(PYTHON) -m repro.devtools src/repro
	$(PYTHON) -m repro.devtools src/repro tests examples benchmarks \
		--select REPRO110,REPRO111,REPRO112,REPRO113

# Same gates, but report only files changed vs the merge base with
# origin/main (the whole tree is still analyzed for cross-module rules).
lint-changed:
	$(PYTHON) -m repro.devtools src/repro --changed
	$(PYTHON) -m repro.devtools src/repro tests examples benchmarks \
		--select REPRO110,REPRO111,REPRO112,REPRO113 --changed

test:
	$(PYTHON) -m pytest -x -q

check: lint test

# Exercises the parallel runner end-to-end (serial vs parallel vs
# cache-warm over the four-datacenter sweep) without pytest-benchmark,
# plus tiny kernel- and planner-benchmark passes that check the
# vectorized engines still agree with their scalar references and a
# 2-shard sharded plan (chunked store, 2 pool workers) checked against
# the unsharded array engine.
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_runner_sweep.py -q -s
	$(PYTHON) benchmarks/bench_kernels.py --smoke
	$(PYTHON) benchmarks/bench_generation.py --smoke
	$(PYTHON) benchmarks/bench_planners.py --smoke

# Re-pin the committed benchmark numbers (paper-scale instances, see
# docs/PERFORMANCE.md); review the JSON diffs like any other change.
bench-baseline:
	$(PYTHON) benchmarks/bench_kernels.py --out BENCH_kernels.json
	$(PYTHON) benchmarks/bench_generation.py --out BENCH_kernels.json
	$(PYTHON) benchmarks/bench_planners.py --out BENCH_planners.json

# Full soak of the online consolidation controller: 10k streamed
# updates through ingest → replan with fault injection, asserting
# bounded memory and bounded replan scope.  A scaled smoke variant of
# the same invariants runs in tier-1 on every `make test`.
soak:
	REPRO_SOAK=1 $(PYTHON) -m pytest tests/service/test_soak.py -q

# Re-pin the golden regression fixtures after an intentional change;
# review the JSON diff like any other code change.
golden-regen:
	REPRO_REGEN_GOLDEN=1 $(PYTHON) -m pytest tests/golden -q

list-rules:
	$(PYTHON) -m repro.devtools --list-rules
