"""Fig. 4: CDF of memory peak-to-average ratio.

Paper: much smaller than CPU — more than half of all servers below 1.5;
90% of Airlines and 60% of Natural Resources below 1.5; hardly any
server above 10.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig04_memory_peak_to_average(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig4", settings), rounds=1, iterations=1
    )
    print_report("Fig 4 (memory P2A CDFs)", report)
