"""Benchmark for the batched store-first workload generation engine.

Times ``generate_trace_set(engine="array")`` against the pinned scalar
reference on a paper-plus-scale fleet (10k servers, 720 trace hours,
banking mix), asserting bitwise equality before timing — the array
engine is only a win if it is *the same* generator, faster.  Both
timed paths include the columnar :class:`TraceStore` build, since the
store is what every downstream stage (sizing, packing, emulation)
consumes.

A second row streams a 100k-server fleet straight to a chunked on-disk
store through :func:`generate_chunked_store` and asserts — via
tracemalloc, which numpy feeds its array allocations — that peak heap
stays under half the on-disk matrix bytes: the fleet is generated
without ever materializing its demand matrices in RAM.

Plain script, no pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_generation.py --out BENCH_kernels.json
    PYTHONPATH=src python benchmarks/bench_generation.py --smoke

``--out`` *merges*: rows named ``generate*`` in an existing report are
replaced and all other rows kept, so ``make bench-baseline`` can pin
the generation numbers into ``BENCH_kernels.json`` next to the kernel
rows.  ``--smoke`` shrinks both fleets for CI: it checks equivalence
and the streaming-memory invariant, not that the speedup target holds.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from conftest import peak_rss_mb, reset_peak_rss
from repro.workloads.chunked import generate_chunked_store
from repro.workloads.datacenters import datacenter_specs
from repro.workloads.generator import generate_trace_set

# The banking preset has 816 servers at scale 1.0; express the bench
# fleet sizes as scales of it so the class mix stays the paper's.
_BANKING_SERVERS = 816
_SEED = 7


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_generate(
    n_servers: int, n_hours: int, repeats: int
) -> Dict[str, object]:
    """Array vs scalar engine, same process, store build included."""
    specs = datacenter_specs("banking", scale=n_servers / _BANKING_SERVERS)

    def build(engine: str):
        return generate_trace_set(
            "bench", specs, n_hours, _SEED, engine=engine
        ).store

    array_store = build("array")
    scalar_store = build("scalar")
    assert array_store.vm_ids == scalar_store.vm_ids
    assert np.array_equal(array_store.cpu_util, scalar_store.cpu_util)
    assert np.array_equal(array_store.cpu_rpe2, scalar_store.cpu_rpe2)
    assert np.array_equal(array_store.memory_gb, scalar_store.memory_gb)
    n = len(array_store.vm_ids)
    del array_store, scalar_store
    return {
        "benchmark": "generate",
        "n_servers": n,
        "n_hours": n_hours,
        "vectorized_s": round(_best_of(repeats, lambda: build("array")), 6),
        "reference_s": round(_best_of(repeats, lambda: build("scalar")), 6),
    }


def bench_generate_streamed(
    n_servers: int, n_hours: int, block_rows: int
) -> Dict[str, object]:
    """Stream a fleet to disk; prove the matrices never lived in RAM."""
    specs = datacenter_specs("banking", scale=n_servers / _BANKING_SERVERS)
    with tempfile.TemporaryDirectory(prefix="bench-gen-") as scratch:
        target = Path(scratch) / "fleet"
        tracemalloc.start()
        tracemalloc.reset_peak()
        start = time.perf_counter()
        generate_chunked_store(
            target, "banking", specs, n_hours, _SEED, block_rows=block_rows
        )
        elapsed = time.perf_counter() - start
        _, heap_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        disk_bytes = sum(
            matrix.stat().st_size for matrix in target.glob("*.npy")
        )
    assert heap_peak < disk_bytes / 2, (
        f"streaming generation materialized {heap_peak / 2**20:.0f}MB on "
        f"the heap against {disk_bytes / 2**20:.0f}MB of on-disk matrices"
    )
    return {
        "benchmark": "generate-streamed",
        "n_servers": n_servers,
        "n_hours": n_hours,
        "block_rows": block_rows,
        "streamed_s": round(elapsed, 6),
        "disk_mb": round(disk_bytes / 2**20, 1),
        "heap_peak_mb": round(heap_peak / 2**20, 1),
    }


def run(smoke: bool) -> Dict[str, object]:
    if smoke:
        repeats = 1
        cases = [
            lambda: bench_generate(200, 48, repeats),
            # Big enough that the on-disk matrices dwarf the fixed heap
            # floor (~2MB of imports/ctypes) plus the O(n) per-VM
            # metadata records, so the streaming invariant is still a
            # real assertion in CI.
            lambda: bench_generate_streamed(4_000, 336, block_rows=128),
        ]
    else:
        # The scalar reference takes seconds per run at this scale, so
        # best-of-3 bounds the baseline's wall time while still letting
        # the array engine shed first-call warmup (kernel dlopen).
        repeats = 3
        cases = [
            lambda: bench_generate(10_000, 720, repeats),
            lambda: bench_generate_streamed(100_000, 168, block_rows=2048),
        ]
    results: List[Dict[str, object]] = []
    for case in cases:
        reset_peak_rss()
        entry = case()
        entry["peak_rss_mb"] = peak_rss_mb()
        if "reference_s" in entry:
            entry["speedup"] = round(
                entry["reference_s"] / entry["vectorized_s"], 2
            )
            print(
                f"{entry['benchmark']:18s} n={entry['n_servers']:6d} "
                f"T={entry['n_hours']:4d}h  "
                f"array {entry['vectorized_s']:.4f}s  "
                f"scalar {entry['reference_s']:.4f}s  "
                f"speedup {entry['speedup']:.2f}x  "
                f"rss {entry['peak_rss_mb']:.0f}MB"
            )
        else:
            print(
                f"{entry['benchmark']:18s} n={entry['n_servers']:6d} "
                f"T={entry['n_hours']:4d}h  "
                f"streamed {entry['streamed_s']:.4f}s  "
                f"disk {entry['disk_mb']:.0f}MB  "
                f"heap peak {entry['heap_peak_mb']:.0f}MB  "
                f"rss {entry['peak_rss_mb']:.0f}MB"
            )
        results.append(entry)
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "smoke" if smoke else "full",
        "repeats_best_of": repeats,
        "results": results,
    }


def _merge_into(out: Path, report: Dict[str, object]) -> Dict[str, object]:
    """Replace ``generate*`` rows in an existing report, keep the rest."""
    if not out.exists():
        return report
    existing = json.loads(out.read_text())
    kept = [
        row
        for row in existing.get("results", [])
        if not str(row.get("benchmark", "")).startswith("generate")
    ]
    existing["results"] = kept + list(report["results"])
    return existing


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fleets for CI: equivalence + streaming memory invariant",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results as JSON (merged into an existing report)",
    )
    options = parser.parse_args()
    report = run(options.smoke)
    if options.out is not None:
        merged = _merge_into(options.out, report)
        options.out.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"wrote {options.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
