"""Fig. 6: CDF of aggregate CPU:memory demand ratio vs the HS23 blade.

Paper (Observation 3): Banking memory-constrained ~30% of intervals;
Airlines and Natural Resources essentially always; Beverage > 90%.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig06_resource_ratio(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig6", settings), rounds=1, iterations=1
    )
    print_report("Fig 6 (CPU:memory ratio CDFs, reference 160)", report)
