"""Table 2: workload types — server counts and mean CPU utilization."""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_table2_workloads(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("table2", settings), rounds=1, iterations=1
    )
    print_report("Table 2 (paper: A=816@5%, B=445@1%, C=1390@12%, D=722@6%)",
                 report)
