"""Fig. 9: CDF of CPU contention magnitude under dynamic consolidation.

Paper: Banking's bursty CPU leads to very high contention (the
distribution reaches a large fraction of server capacity); Airlines has
no contention at all (absent line).
"""

from conftest import print_report

from repro.experiments.formatting import format_cdf


def test_fig09_contention_cdf(benchmark, comparisons):
    grid = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0)

    def tabulate():
        lines = []
        for key, comparison in comparisons.items():
            cdf = comparison.dynamic().cpu_contention_cdf()
            if cdf is None:
                lines.append(f"{key}: no contention (absent line)")
            else:
                lines.append(format_cdf(key, cdf, grid))
        return "\n".join(lines)

    report = benchmark.pedantic(tabulate, rounds=1, iterations=1)
    print_report(
        "Fig 9 (paper: Banking reaches high contention; Airlines absent)",
        report,
    )
