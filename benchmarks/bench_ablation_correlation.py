"""Ablation: cross-server correlation (DESIGN.md §4.0.1).

What happens to the Section-5 comparison if server demands were
independent (no shared business factor, no flash events)?  Statistical
multiplexing becomes unrealistically effective: consolidation packs far
tighter than the paper reports and dynamic consolidation's contention
disappears.  This ablation documents why the correlation model is
load-bearing for the reproduction.
"""

from conftest import print_report

from repro.experiments.ablations import run_correlation_ablation
from repro.experiments.formatting import format_table


def test_ablation_correlation(benchmark, settings):
    correlated, independent = benchmark.pedantic(
        lambda: run_correlation_ablation("banking", settings),
        rounds=1,
        iterations=1,
    )
    rows = []
    for label, comparison in (
        ("correlated (default)", correlated),
        ("independent (ablated)", independent),
    ):
        space = comparison.normalized_space_cost()
        for scheme in space:
            rows.append(
                (
                    label,
                    scheme,
                    f"{space[scheme]:.2f}",
                    f"{comparison.contention_fractions()[scheme]:.5f}",
                )
            )
    print_report(
        "Ablation: correlation (independent demands overstate "
        "multiplexing)",
        format_table(["traces", "scheme", "space_norm", "contention"], rows),
    )
