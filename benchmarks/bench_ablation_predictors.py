"""Ablation: demand predictors in dynamic consolidation.

The paper's dynamic scheme sizes at the *estimated* peak of the next
interval; the estimator choice trades footprint against contention.
The oracle bound separates packing effects from prediction error.
"""

from conftest import print_report

from repro.experiments.ablations import run_predictor_ablation
from repro.experiments.formatting import format_table


def test_ablation_predictors(benchmark, settings):
    results = benchmark.pedantic(
        lambda: run_predictor_ablation("banking", settings),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            label,
            result.provisioned_servers,
            f"{result.energy_kwh:.0f}",
            f"{result.contention_time_fraction():.5f}",
            result.total_migrations(),
        )
        for label, result in results.items()
    ]
    print_report(
        "Ablation: predictors (prediction error is the contention "
        "mechanism; the oracle is the no-contention bound)",
        format_table(
            ["predictor", "servers", "energy_kwh", "contention",
             "migrations"],
            rows,
        ),
    )
