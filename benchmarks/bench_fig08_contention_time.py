"""Fig. 8: fraction of time with resource contention per scheme.

Paper: contention is small everywhere except Banking under Dynamic
consolidation; Semi-static shows one isolated Natural-Resources case;
absence of a bar means zero contention.
"""

from conftest import print_report

from repro.experiments.formatting import format_table


def test_fig08_contention_time(benchmark, comparisons):
    def tabulate():
        rows = []
        for key, comparison in comparisons.items():
            for scheme, value in comparison.contention_fractions().items():
                rows.append((key, scheme, f"{value:.5f}"))
        return format_table(["workload", "scheme", "contention_fraction"], rows)

    report = benchmark.pedantic(tabulate, rounds=1, iterations=1)
    print_report(
        "Fig 8 (paper: contention concentrated in Banking x Dynamic)",
        report,
    )
