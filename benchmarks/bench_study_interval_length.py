"""§7 study: enabling shorter consolidation intervals.

Paper: "Improvements in network bandwidth as well as advances in live
migration implementation can allow shorter dynamic consolidation
intervals ... reducing the overall hardware footprint as well as
providing more opportunities for saving power."  The cost the paper
implies: more migrations per day.
"""

from conftest import print_report

from repro.experiments.formatting import format_table
from repro.experiments.intervals import run_interval_study


def test_study_interval_length(benchmark, settings):
    points = benchmark.pedantic(
        lambda: run_interval_study("banking", settings),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{p.interval_hours:.0f}h",
            p.provisioned_servers,
            f"{p.energy_kwh:.0f}",
            p.total_migrations,
            f"{p.contention_time_fraction:.5f}",
            f"{p.mean_active_fraction:.2f}",
        )
        for p in points
    ]
    print_report(
        "Interval-length study (paper §7: shorter intervals -> smaller "
        "footprint + more power savings, at more migrations)",
        format_table(
            ["interval", "servers", "energy_kwh", "migrations",
             "contention", "active_frac"],
            rows,
        ),
    )
