"""§1.3 headline: "from 10X to a much more modest 1.5X".

The intro's per-server argument (5% average, 50% peak -> provision 10x
less with perfect elasticity) deflates through statistical aggregation
and the memory bound to a modest realized gain; the paper's headline
claim is a mean of ~1.5x across real estates.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_potential_gain(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("potential", settings), rounds=1, iterations=1
    )
    print_report("Potential-savings deflation (paper: 10X -> ~1.5X)", report)
