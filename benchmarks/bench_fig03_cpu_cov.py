"""Fig. 3: CDF of CPU coefficient of variation.

Paper: >50% of Banking servers heavy-tailed (CoV >= 1); ~30% Airlines,
~15% Natural Resources; Beverage similar to Banking.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig03_cpu_cov(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig3", settings), rounds=1, iterations=1
    )
    print_report("Fig 3 (CPU CoV CDFs)", report)
