"""Fig. 10: CDF of average CPU utilization per provisioned server.

Paper: Airlines utilization is very low (memory-bound); semi-static
variants cannot push average utilization high for the bursty Banking
and Beverage workloads; Natural Resources looks alike under all schemes.
"""

from conftest import print_report

from repro.experiments.formatting import format_cdf


def test_fig10_average_utilization(benchmark, comparisons):
    grid = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

    def tabulate():
        lines = []
        for key, comparison in comparisons.items():
            for scheme, result in comparison.results.items():
                lines.append(
                    format_cdf(
                        f"{key}/{scheme}",
                        result.average_utilization_cdf(),
                        grid,
                    )
                )
        return "\n".join(lines)

    report = benchmark.pedantic(tabulate, rounds=1, iterations=1)
    print_report("Fig 10 (average CPU utilization CDFs)", report)
