"""Shared fixtures for the figure-reproduction benchmarks.

Every bench regenerates one table or figure of the paper and prints the
same rows/series the paper reports, timed with pytest-benchmark.  The
Section-5 figures (7-12) all derive from the same three-scheme
comparison, so that expensive computation runs once per session (the
``fig7`` bench times it; the others time their own tabulation) —
mirroring how the paper derives six figures from one experiment.

The heavy sweeps route through :class:`repro.runner.ExperimentRunner`,
so they fan out over a process pool and land in the content-addressed
cache — a second benchmark session reuses the generated traces and
emulations instead of recomputing them.  Environment knobs:

* ``REPRO_SCALE``       — datacenter scale (default 0.15; 1.0 = paper)
* ``REPRO_BENCH_SERIAL``  — any non-empty value forces serial execution
* ``REPRO_BENCH_WORKERS`` — process-pool size (default: auto)
* ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` — cache location / kill switch
"""

from __future__ import annotations

import os
import resource

import pytest

from repro.experiments.comparison import run_all
from repro.experiments.settings import ExperimentSettings
from repro.runner import ExperimentRunner, execute_cached, sensitivity_task


def reset_peak_rss() -> None:
    """Reset the kernel's peak-RSS watermark for this process.

    Linux resets ``VmHWM`` when ``5`` is written to
    ``/proc/self/clear_refs``; elsewhere this is a no-op and
    :func:`peak_rss_mb` falls back to the monotone ``ru_maxrss``.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:
        pass


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MB.

    Reads ``VmHWM`` (resettable, so per-benchmark peaks are possible on
    Linux); falls back to ``getrusage`` where ``/proc`` is unavailable.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return round(int(line.split()[1]) / 1024.0, 1)
    except OSError:
        pass
    return round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )


def children_peak_rss_mb() -> float:
    """Largest peak RSS among reaped child processes, in MB.

    Covers runner pool workers (each shard planner is a child); the
    counter is monotone over the process's life.
    """
    return round(
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0, 1
    )


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.15"))


def _bench_runner() -> ExperimentRunner:
    serial = bool(os.environ.get("REPRO_BENCH_SERIAL", ""))
    workers_env = os.environ.get("REPRO_BENCH_WORKERS", "")
    workers = int(workers_env) if workers_env else None
    return ExperimentRunner(workers=workers, serial=serial)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(scale=_bench_scale())


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared experiment runner (parallel + cached by default)."""
    return _bench_runner()


@pytest.fixture(scope="session")
def comparisons(settings, runner):
    """The Section-5 baseline experiment, shared across Figs. 7-12."""
    return run_all(settings, runner=runner)


def cached_sensitivity(datacenter: str, settings: ExperimentSettings):
    """One datacenter's bound sweep through the shared runner cache."""
    return execute_cached(sensitivity_task(datacenter, settings))


def print_report(header: str, body: str) -> None:
    print()
    print("=" * 72)
    print(header)
    print("=" * 72)
    print(body)
