"""Shared fixtures for the figure-reproduction benchmarks.

Every bench regenerates one table or figure of the paper and prints the
same rows/series the paper reports, timed with pytest-benchmark.  The
Section-5 figures (7-12) all derive from the same three-scheme
comparison, so that expensive computation runs once per session (the
``fig7`` bench times it; the others time their own tabulation) —
mirroring how the paper derives six figures from one experiment.

Scale defaults to 0.15 (fast, statistically stable); set
``REPRO_SCALE=1.0`` to reproduce at the paper's full datacenter sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.comparison import run_all
from repro.experiments.settings import ExperimentSettings


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.15"))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings(scale=_bench_scale())


@pytest.fixture(scope="session")
def comparisons(settings):
    """The Section-5 baseline experiment, shared across Figs. 7-12."""
    return run_all(settings)


def print_report(header: str, body: str) -> None:
    print()
    print("=" * 72)
    print(header)
    print("=" * 72)
    print(body)
