"""Extension study: BrownMap-style power budgets over dynamic consolidation.

The paper's tool lineage includes BrownMap (reference [28], "enforcing
power budget in shared data centers").  This study caps the facility
power at fractions of dynamic consolidation's natural peak and reports
the compliance/risk trade: forced consolidation cuts peak power but
adds migrations and (for deep caps) contention from packing into the
migration reservation.
"""

from conftest import print_report

from repro.core import ConsolidationPlanner, DynamicConsolidation
from repro.core.powercap import PowerBudgetedConsolidation
from repro.experiments.formatting import format_table
from repro.workloads import generate_datacenter


def test_study_power_budget(benchmark, settings):
    def run():
        traces = generate_datacenter("banking", scale=settings.scale)
        pool = settings.build_pool(traces)
        planner = ConsolidationPlanner(
            traces=traces, datacenter=pool,
            config=settings.planning_config(),
        )
        baseline = planner.run(DynamicConsolidation())
        peak = baseline.power_watts.sum(axis=0).max()
        rows = [
            (
                "uncapped",
                f"{peak:.0f}",
                f"{baseline.energy_kwh:.0f}",
                baseline.total_migrations(),
                f"{baseline.contention_time_fraction():.5f}",
            )
        ]
        for fraction in (0.9, 0.75, 0.6):
            algo = PowerBudgetedConsolidation(budget_watts=peak * fraction)
            result = planner.run(algo)
            rows.append(
                (
                    f"cap at {fraction:.0%} of peak",
                    f"{result.power_watts.sum(axis=0).max():.0f}",
                    f"{result.energy_kwh:.0f}",
                    result.total_migrations(),
                    f"{result.contention_time_fraction():.5f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_report(
        "Power-budget study (BrownMap lineage): compliance vs risk",
        format_table(
            ["budget", "peak_watts", "energy_kwh", "migrations",
             "contention"],
            rows,
        ),
    )
