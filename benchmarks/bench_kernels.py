"""Microbenchmarks for the vectorized demand kernels.

Times the three columnar hot paths against their retained scalar
references on paper-scale instances (~100 and ~1000 servers, 720 trace
hours):

* **replay** — :class:`ConsolidationEmulator` (scatter-add) vs
  :class:`ReferenceConsolidationEmulator` (per-VM loop) replaying a
  daily consolidation schedule;
* **pack** — ``pack(engine="auto")`` (the shipped default: BinArray
  masks above the size crossover, scalar below) vs ``pack(
  engine="scalar")`` (per-bin Python scan), FFD and BFD;
* **assemble** — ``TraceStore.from_traces`` vs per-trace ``np.vstack``
  reassembly of the demand matrices.

Plain script, no pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_kernels.py --out BENCH_kernels.json
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke

``--smoke`` shrinks the instances for CI: it checks the kernels run and
agree, not that the speedup target holds.  The committed
``BENCH_kernels.json`` is regenerated with ``make bench-baseline``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from conftest import peak_rss_mb, reset_peak_rss
from repro.emulator import (
    ConsolidationEmulator,
    PlacementSchedule,
    ReferenceConsolidationEmulator,
)
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.placement.binpacking import pack
from repro.placement.plan import Placement
from repro.sizing.estimator import SizeEstimator
from repro.sizing.functions import BodyTailSizing
from repro.workloads.datacenters import generate_datacenter
from repro.workloads.store import TraceStore

# The banking preset has 816 servers at scale 1.0; scale the other
# sizes off that so per-server statistics stay the paper's.
_BANKING_SERVERS = 816


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pool(n_hosts: int) -> Datacenter:
    datacenter = Datacenter(name="bench-pool")
    for index in range(n_hosts):
        datacenter.add_host(
            PhysicalServer(
                host_id=f"h{index:04d}",
                spec=ServerSpec(cpu_rpe2=50_000.0, memory_gb=256.0),
            )
        )
    return datacenter


def _daily_schedule(traces, datacenter) -> PlacementSchedule:
    """One rotated placement per day, like dynamic consolidation."""
    host_ids = [host.host_id for host in datacenter]
    vm_ids = list(traces.vm_ids)
    n_days = int(traces.duration_hours // 24)
    placements = []
    for day in range(n_days):
        placements.append(
            Placement(
                assignment={
                    vm_id: host_ids[(row + day) % len(host_ids)]
                    for row, vm_id in enumerate(vm_ids)
                }
            )
        )
    return PlacementSchedule.periodic(placements, 24.0)


def bench_replay(traces, repeats: int) -> Dict[str, float]:
    datacenter = _pool(max(4, len(traces) // 4))
    schedule = _daily_schedule(traces, datacenter)
    vectorized = ConsolidationEmulator(traces, datacenter)
    reference = ReferenceConsolidationEmulator(traces, datacenter)
    got = vectorized.evaluate(schedule, scheme="bench")
    expected = reference.evaluate(schedule, scheme="bench")
    assert np.array_equal(got.cpu_demand, expected.cpu_demand)
    assert np.array_equal(got.power_watts, expected.power_watts)
    return {
        "vectorized_s": _best_of(
            repeats, lambda: vectorized.evaluate(schedule, scheme="bench")
        ),
        "reference_s": _best_of(
            repeats, lambda: reference.evaluate(schedule, scheme="bench")
        ),
    }


def bench_pack(traces, strategy: str, repeats: int) -> Dict[str, float]:
    estimator = SizeEstimator(sizing=BodyTailSizing())
    demands = estimator.estimate_all(traces)
    hosts = _pool(len(demands)).hosts
    kwargs = dict(utilization_bound=0.8, strategy=strategy)
    # The shipped default is engine="auto" (size-aware crossover); time
    # that against the scalar reference so the committed numbers reflect
    # what callers actually get — auto must never lose to scalar.
    auto = pack(demands, hosts, engine="auto", **kwargs)
    array = pack(demands, hosts, engine="array", **kwargs)
    scalar = pack(demands, hosts, engine="scalar", **kwargs)
    assert auto.assignment == array.assignment == scalar.assignment
    return {
        "vectorized_s": _best_of(
            repeats,
            lambda: pack(demands, hosts, engine="auto", **kwargs),
        ),
        "reference_s": _best_of(
            repeats,
            lambda: pack(demands, hosts, engine="scalar", **kwargs),
        ),
    }


def bench_assemble(traces, repeats: int) -> Dict[str, float]:
    trace_list = list(traces)

    def stacked():
        # Per-trace reassembly of the full columnar product — the same
        # three matrices ``TraceStore.from_traces`` builds, including
        # the per-trace ``cpu_rpe2`` derivation (a multiply + temporary
        # per row on this path, one broadcast multiply on the bulk one).
        cpu_util = np.vstack([t.cpu_util.values for t in trace_list])
        cpu_rpe2 = np.vstack([t.cpu_rpe2 for t in trace_list])
        memory = np.vstack([t.memory_gb.values for t in trace_list])
        return cpu_util, cpu_rpe2, memory

    reference_matrices = stacked()
    store = TraceStore.from_traces(trace_list)
    assert np.array_equal(store.cpu_util, reference_matrices[0])
    assert np.array_equal(store.cpu_rpe2, reference_matrices[1])
    assert np.array_equal(store.memory_gb, reference_matrices[2])
    # Drop the verification artifacts before timing: holding four extra
    # (n, T) matrices inflates allocator/page-fault noise at these
    # millisecond scales.
    del reference_matrices, store
    return {
        "vectorized_s": _best_of(
            repeats, lambda: TraceStore.from_traces(trace_list)
        ),
        "reference_s": _best_of(repeats, stacked),
    }


def run(smoke: bool) -> Dict[str, object]:
    if smoke:
        sizes, days, repeats = [50], 3, 1
    else:
        # Best-of-9: these kernels run in single-digit milliseconds, so
        # scheduler noise at best-of-3 can swing a true-tie row (e.g.
        # pack below its auto crossover, where auto *is* the scalar
        # path) a few percent either side of 1.0x.
        sizes, days, repeats = [100, 1000], 30, 9
    results: List[Dict[str, object]] = []
    for n_servers in sizes:
        traces = generate_datacenter(
            "banking", scale=n_servers / _BANKING_SERVERS, days=days, seed=7
        )
        traces.store  # columnar build is shared setup, not replay time
        cases = [
            ("replay", lambda: bench_replay(traces, repeats)),
            ("pack-ffd", lambda: bench_pack(traces, "ffd", repeats)),
            ("pack-bfd", lambda: bench_pack(traces, "bfd", repeats)),
            ("assemble", lambda: bench_assemble(traces, repeats)),
        ]
        for name, runner in cases:
            reset_peak_rss()
            timings = runner()
            rss = peak_rss_mb()
            speedup = timings["reference_s"] / timings["vectorized_s"]
            entry = {
                "benchmark": name,
                "n_servers": len(traces),
                "n_hours": int(traces.duration_hours),
                "vectorized_s": round(timings["vectorized_s"], 6),
                "reference_s": round(timings["reference_s"], 6),
                "speedup": round(speedup, 2),
                "peak_rss_mb": rss,
            }
            results.append(entry)
            print(
                f"{name:10s} n={len(traces):5d} T={entry['n_hours']:4d}h  "
                f"vectorized {entry['vectorized_s']:.4f}s  "
                f"reference {entry['reference_s']:.4f}s  "
                f"speedup {entry['speedup']:.2f}x  "
                f"rss {rss:.0f}MB"
            )
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "smoke" if smoke else "full",
        "repeats_best_of": repeats,
        "results": results,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances for CI: correctness + plumbing, not speedups",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results as JSON"
    )
    options = parser.parse_args()
    report = run(options.smoke)
    if options.out is not None:
        options.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {options.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
