"""§2.2 study: static vs rolling semi-static consolidation.

"Semi-static consolidation allows higher resource utilization by
allowing consolidation to be performed at coarse-grained intervals" —
visible only when demand evolves across periods.  A shared seasonal
factor drives the estate; semi-static re-plans each period and rides
the trough, static holds its lifetime-peak plan throughout.
"""

from conftest import print_report

from repro.experiments.formatting import format_table
from repro.experiments.multiperiod import run_multiperiod


def test_study_multiperiod(benchmark, settings):
    result = benchmark.pedantic(
        lambda: run_multiperiod(
            "beverage", settings, include_dynamic=True
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            "static (lifetime peak + margin)",
            result.static_servers,
            f"{result.static.energy_kwh:.0f}",
            f"{result.static.contention_time_fraction():.5f}",
        ),
        (
            "semi-static (re-plan each period)",
            "/".join(str(s) for s in result.semi_static_servers_per_period),
            f"{result.semi_static.energy_kwh:.0f}",
            f"{result.semi_static.contention_time_fraction():.5f}",
        ),
        (
            "dynamic (2h intervals, 20% reservation)",
            result.dynamic.provisioned_servers,
            f"{result.dynamic.energy_kwh:.0f}",
            f"{result.dynamic.contention_time_fraction():.5f}",
        ),
    ]
    print_report(
        f"Multi-period study ({result.n_periods} x "
        f"{result.period_days}-day periods; semi-static saves "
        f"{result.energy_saving:.0%} energy)",
        format_table(["scheme", "servers", "energy_kwh", "contention"], rows),
    )
