"""§5.2 emulator verification: RuBiS and daxpy error bounds.

Paper: "the 99 percentile error bound of our emulator is 5% for RuBIS
and 2% for daxpy" — reproduced by replaying random traces through the
workload-plus-micro-benchmark testbed simulator.
"""

from conftest import print_report

from repro.emulator.verification import (
    DAXPY_MODEL,
    RUBIS_MODEL,
    verify_emulator_accuracy,
)
from repro.experiments.formatting import format_table


def test_emulator_verification(benchmark):
    def run():
        return [
            verify_emulator_accuracy(model)
            for model in (RUBIS_MODEL, DAXPY_MODEL)
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            r.workload,
            r.n_points,
            f"{r.mean_error:.2%}",
            f"{r.p99_error:.2%}",
            f"{r.max_error:.2%}",
        )
        for r in reports
    ]
    print_report(
        "Emulator verification (paper: p99 error 5% RuBiS / 2% daxpy)",
        format_table(
            ["workload", "points", "mean_err", "p99_err", "max_err"], rows
        ),
    )
