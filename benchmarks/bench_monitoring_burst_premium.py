"""Monitoring-substrate grounding of the dynamic burst premium.

DESIGN.md §4.0.3 gives dynamic consolidation a CPU burst premium
(default 1.12) because minute-level peaks exceed hourly averages.  The
monitoring agents measure that premium directly from their minute
samples; this bench reports the measured distribution next to the
configured default.
"""

import numpy as np
from conftest import print_report

from repro.core.dynamic import DynamicConsolidation
from repro.experiments.formatting import format_table
from repro.monitoring import MonitoringAgent
from repro.workloads import generate_datacenter


def test_monitoring_burst_premium(benchmark, settings):
    def run():
        rows = []
        for key in ("banking", "natural-resources"):
            traces = generate_datacenter(
                key, scale=min(settings.scale, 0.1), days=7
            )
            premiums = [
                MonitoringAgent(trace, seed=1).burst_premium(2)[0]
                for trace in list(traces)[:25]
            ]
            rows.append(
                (
                    key,
                    f"{np.mean(premiums):.3f}",
                    f"{np.percentile(premiums, 95):.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    configured = DynamicConsolidation().cpu_burst_factor
    print_report(
        f"Intra-interval burst premium (configured cpu_burst_factor = "
        f"{configured})",
        format_table(["workload", "mean_premium", "p95_premium"], rows),
    )
