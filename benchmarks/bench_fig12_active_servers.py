"""Fig. 12: distribution of running servers under dynamic consolidation.

Paper: Banking switches off up to 70% of deployed servers in some
intervals; Beverage keeps only ~50% active for 90% of intervals;
Airlines and Natural Resources barely vary.
"""

from conftest import print_report

from repro.experiments.formatting import format_cdf


def test_fig12_active_servers(benchmark, comparisons):
    grid = (0.2, 0.3, 0.5, 0.7, 0.9, 1.0)

    def tabulate():
        lines = []
        for key, comparison in comparisons.items():
            result = comparison.dynamic()
            cdf = result.active_fraction_cdf()
            lines.append(format_cdf(key, cdf, grid))
            lines.append(
                f"  min active fraction: {cdf.sorted_values[0]:.2f}, "
                f"mean: {result.active_fraction_series().mean():.2f}"
            )
        return "\n".join(lines)

    report = benchmark.pedantic(tabulate, rounds=1, iterations=1)
    print_report(
        "Fig 12 (paper: Banking dips to ~0.3 active; Airlines flat)",
        report,
    )
