"""End-to-end planner benchmarks: array engines vs scalar references.

Times whole ``plan()`` calls — prediction, sizing, packing, vacate
sweeps, schedule assembly — on paper-scale instances (~100 and ~1000
servers, 48 h history + 720 h evaluation at 2 h intervals):

* **dynamic-plan** — ``DynamicConsolidation(engine="array")`` (peak
  tables, incremental sticky repack, array vacate sweeps) vs
  ``engine="scalar"`` (per-VM predict/size + from-scratch ``pack()``
  per interval);
* **stochastic-plan** — ``StochasticConsolidation(engine="array")``
  (vectorized pooled-tail prefilter, matrix peak clustering) vs
  ``engine="scalar"`` (per-bin cluster-tail scan).

Every case asserts schedule equality between the engines before timing
anything: the speedup is only meaningful because the answers are
bit-identical.

Plain script, no pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_planners.py --out BENCH_planners.json
    PYTHONPATH=src python benchmarks/bench_planners.py --smoke

``--smoke`` shrinks the instances for CI: it checks the engines run and
agree, not that the speedup target (>=5x on the 1000-server dynamic
plan) holds.  The committed ``BENCH_planners.json`` is regenerated with
``make bench-baseline``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.workloads.datacenters import generate_datacenter

# The banking preset has 816 servers at scale 1.0 (see bench_kernels).
_BANKING_SERVERS = 816
_HISTORY_HOURS = 48


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pool(n_hosts: int) -> Datacenter:
    datacenter = Datacenter(name="bench-pool")
    for index in range(n_hosts):
        datacenter.add_host(
            PhysicalServer(
                host_id=f"h{index:04d}",
                spec=ServerSpec(cpu_rpe2=50_000.0, memory_gb=256.0),
            )
        )
    return datacenter


def _context(traces) -> PlanningContext:
    hours = int(traces.duration_hours)
    return PlanningContext(
        history=traces.window(0, _HISTORY_HOURS),
        evaluation=traces.window(_HISTORY_HOURS, hours),
        datacenter=_pool(max(4, len(traces) // 2)),
        config=PlanningConfig(),
    )


def _assert_schedules_identical(scalar, array) -> None:
    assert len(scalar) == len(array)
    for left, right in zip(scalar.segments, array.segments):
        assert left.placement.assignment == right.placement.assignment


def bench_dynamic(context: PlanningContext, repeats: int) -> Dict[str, float]:
    scalar = DynamicConsolidation(engine="scalar")
    array = DynamicConsolidation(engine="array")
    _assert_schedules_identical(scalar.plan(context), array.plan(context))
    return {
        "vectorized_s": _best_of(repeats, lambda: array.plan(context)),
        "reference_s": _best_of(repeats, lambda: scalar.plan(context)),
    }


def bench_stochastic(
    context: PlanningContext, repeats: int
) -> Dict[str, float]:
    scalar = StochasticConsolidation(engine="scalar")
    array = StochasticConsolidation(engine="array")
    left = scalar.plan(context).segments[0].placement
    right = array.plan(context).segments[0].placement
    assert left.assignment == right.assignment
    return {
        "vectorized_s": _best_of(repeats, lambda: array.plan(context)),
        "reference_s": _best_of(repeats, lambda: scalar.plan(context)),
    }


def run(smoke: bool) -> Dict[str, object]:
    if smoke:
        sizes, days, repeats = [50], 4, 1
    else:
        sizes, days, repeats = [100, 1000], 32, 3
    results: List[Dict[str, object]] = []
    for n_servers in sizes:
        traces = generate_datacenter(
            "banking", scale=n_servers / _BANKING_SERVERS, days=days, seed=7
        )
        context = _context(traces)
        cases = [
            ("dynamic-plan", lambda: bench_dynamic(context, repeats)),
            ("stochastic-plan", lambda: bench_stochastic(context, repeats)),
        ]
        eval_hours = int(context.evaluation.duration_hours)
        for name, runner in cases:
            timings = runner()
            speedup = timings["reference_s"] / timings["vectorized_s"]
            entry = {
                "benchmark": name,
                "n_servers": len(traces),
                "n_hours": eval_hours,
                "vectorized_s": round(timings["vectorized_s"], 6),
                "reference_s": round(timings["reference_s"], 6),
                "speedup": round(speedup, 2),
            }
            results.append(entry)
            print(
                f"{name:16s} n={len(traces):5d} T={eval_hours:4d}h  "
                f"vectorized {entry['vectorized_s']:.4f}s  "
                f"reference {entry['reference_s']:.4f}s  "
                f"speedup {entry['speedup']:.2f}x"
            )
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "smoke" if smoke else "full",
        "repeats_best_of": repeats,
        "results": results,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances for CI: correctness + plumbing, not speedups",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results as JSON"
    )
    options = parser.parse_args()
    report = run(options.smoke)
    if options.out is not None:
        options.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {options.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
