"""End-to-end planner benchmarks: array engines vs scalar references.

Times whole ``plan()`` calls — prediction, sizing, packing, vacate
sweeps, schedule assembly — on paper-scale instances (~100 and ~1000
servers, 48 h history + 720 h evaluation at 2 h intervals):

* **dynamic-plan** — ``DynamicConsolidation(engine="array")`` (peak
  tables, incremental sticky repack, array vacate sweeps) vs
  ``engine="scalar"`` (per-VM predict/size + from-scratch ``pack()``
  per interval);
* **stochastic-plan** — ``StochasticConsolidation(engine="array")``
  (vectorized pooled-tail prefilter, matrix peak clustering) vs
  ``engine="scalar"`` (per-bin cluster-tail scan);
* **sharded-dynamic-plan** (full mode) — a 10k-server × 720 h plan
  through :func:`repro.sharding.run_sharded_plan` (chunked on-disk
  store, 16 topology shards fanned over the runner pool, cross-shard
  reconciliation) vs the unsharded array engine on the same fleet.

Every engine-vs-engine case asserts schedule equality before timing
anything: the speedup is only meaningful because the answers are
bit-identical.  The sharded case instead pins the consolidation-quality
gap (mean active hosts vs the unsharded plan) alongside its speedup.

Each row also reports ``peak_rss_mb`` — the process's peak resident set
while that case ran (``VmHWM``, reset per case; see
``benchmarks/conftest.py``).

Plain script, no pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_planners.py --out BENCH_planners.json
    PYTHONPATH=src python benchmarks/bench_planners.py --smoke
    PYTHONPATH=src python benchmarks/bench_planners.py --scale-out

``--smoke`` shrinks the instances for CI: it checks the engines run and
agree, not that the speedup target (>=5x on the 1000-server dynamic
plan) holds; it also runs a small sharded plan (2 shards x 100 servers,
2 workers) end to end.  ``--scale-out`` is the 100k-row smoke: it
streams a 100k-server fleet into a chunked store and plans it sharded,
asserting (via tracemalloc) that the fleet's trace matrices are never
materialized in the parent — they stay on disk behind ``np.memmap``.
The committed ``BENCH_planners.json`` is regenerated with
``make bench-baseline``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from conftest import children_peak_rss_mb, peak_rss_mb, reset_peak_rss
from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.stochastic import StochasticConsolidation
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.runner import ExperimentRunner
from repro.sharding import chunked_source, run_sharded_plan
from repro.workloads.chunked import (
    ChunkedTraceWriter,
    vm_record,
    write_trace_set,
)
from repro.workloads.datacenters import generate_datacenter

# The banking preset has 816 servers at scale 1.0 (see bench_kernels).
_BANKING_SERVERS = 816
_HISTORY_HOURS = 48


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _pool(n_hosts: int) -> Datacenter:
    datacenter = Datacenter(name="bench-pool")
    for index in range(n_hosts):
        datacenter.add_host(
            PhysicalServer(
                host_id=f"h{index:04d}",
                spec=ServerSpec(cpu_rpe2=50_000.0, memory_gb=256.0),
            )
        )
    return datacenter


def _context(traces) -> PlanningContext:
    hours = int(traces.duration_hours)
    return PlanningContext(
        history=traces.window(0, _HISTORY_HOURS),
        evaluation=traces.window(_HISTORY_HOURS, hours),
        datacenter=_pool(max(4, len(traces) // 2)),
        config=PlanningConfig(),
    )


def _assert_schedules_identical(scalar, array) -> None:
    assert len(scalar) == len(array)
    for left, right in zip(scalar.segments, array.segments):
        assert left.placement.assignment == right.placement.assignment


def bench_dynamic(context: PlanningContext, repeats: int) -> Dict[str, float]:
    scalar = DynamicConsolidation(engine="scalar")
    array = DynamicConsolidation(engine="array")
    _assert_schedules_identical(scalar.plan(context), array.plan(context))
    return {
        "vectorized_s": _best_of(repeats, lambda: array.plan(context)),
        "reference_s": _best_of(repeats, lambda: scalar.plan(context)),
    }


def bench_stochastic(
    context: PlanningContext, repeats: int
) -> Dict[str, float]:
    scalar = StochasticConsolidation(engine="scalar")
    array = StochasticConsolidation(engine="array")
    left = scalar.plan(context).segments[0].placement
    right = array.plan(context).segments[0].placement
    assert left.assignment == right.assignment
    return {
        "vectorized_s": _best_of(repeats, lambda: array.plan(context)),
        "reference_s": _best_of(repeats, lambda: scalar.plan(context)),
    }


def bench_sharded(
    n_servers: int, days: int, n_shards: int, workers: int
) -> Dict[str, object]:
    """Sharded runner-pool plan vs the unsharded array engine.

    The fleet is spilled to a chunked on-disk store first — the sharded
    side plans from memory-mapped rows, exactly as a scale-out caller
    would.  Both sides plan the same (48 h history, rest evaluation)
    window onto the same consolidation pool.
    """
    traces = generate_datacenter(
        "banking", scale=n_servers / _BANKING_SERVERS, days=days, seed=7
    )
    hours = int(traces.duration_hours)
    pool_hosts = max(4, len(traces) // 2)
    context = PlanningContext(
        history=traces.window(0, _HISTORY_HOURS),
        evaluation=traces.window(_HISTORY_HOURS, hours),
        datacenter=build_target_pool("bench", host_count=pool_hosts),
        config=PlanningConfig(),
    )
    start = time.perf_counter()
    flat = DynamicConsolidation(engine="array").plan(context)
    reference_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory(prefix="bench-sharded-") as tmp:
        write_trace_set(traces, tmp)
        source = chunked_source(tmp)
        runner = ExperimentRunner(workers=workers, use_cache=False)
        start = time.perf_counter()
        run = run_sharded_plan(
            source,
            n_shards=n_shards,
            pool_hosts=pool_hosts,
            pool_name="bench",
            evaluation_days=(hours - _HISTORY_HOURS) // 24,
            runner=runner,
        )
        vectorized_s = time.perf_counter() - start
    sharded = run.schedule
    assert len(sharded) == len(flat)
    for left, right in zip(flat, sharded):
        assert (left.start_hour, left.end_hour) == (
            right.start_hour,
            right.end_hour,
        )
        assert left.placement.assignment.keys() == (
            right.placement.assignment.keys()
        )
    gap = float(
        np.mean([s.placement.active_host_count for s in sharded])
        - np.mean([s.placement.active_host_count for s in flat])
    )
    return {
        "vectorized_s": vectorized_s,
        "reference_s": reference_s,
        "n_servers": len(traces),
        "n_hours": hours - _HISTORY_HOURS,
        "n_shards": run.report.n_shards,
        "reconcile_moves": run.report.reconcile_moves,
        "active_host_gap": round(gap, 2),
    }


def run(smoke: bool) -> Dict[str, object]:
    if smoke:
        sizes, days, repeats = [50], 4, 1
    else:
        sizes, days, repeats = [100, 1000], 32, 3
    results: List[Dict[str, object]] = []
    for n_servers in sizes:
        traces = generate_datacenter(
            "banking", scale=n_servers / _BANKING_SERVERS, days=days, seed=7
        )
        context = _context(traces)
        cases = [
            ("dynamic-plan", lambda: bench_dynamic(context, repeats)),
            ("stochastic-plan", lambda: bench_stochastic(context, repeats)),
        ]
        eval_hours = int(context.evaluation.duration_hours)
        for name, runner in cases:
            reset_peak_rss()
            timings = runner()
            rss = peak_rss_mb()
            speedup = timings["reference_s"] / timings["vectorized_s"]
            entry = {
                "benchmark": name,
                "n_servers": len(traces),
                "n_hours": eval_hours,
                "vectorized_s": round(timings["vectorized_s"], 6),
                "reference_s": round(timings["reference_s"], 6),
                "speedup": round(speedup, 2),
                "peak_rss_mb": rss,
            }
            results.append(entry)
            print(
                f"{name:20s} n={len(traces):5d} T={eval_hours:4d}h  "
                f"vectorized {entry['vectorized_s']:.4f}s  "
                f"reference {entry['reference_s']:.4f}s  "
                f"speedup {entry['speedup']:.2f}x  "
                f"rss {rss:.0f}MB"
            )
    # Sharded scale-out case: small in smoke (plumbing through the
    # process pool), 10k servers x 720 h in full mode.  Best-of-1: at
    # this size the run is seconds-to-minutes, not microseconds.
    if smoke:
        shard_args = dict(n_servers=100, days=4, n_shards=2, workers=2)
    else:
        shard_args = dict(n_servers=10_000, days=32, n_shards=16, workers=2)
    reset_peak_rss()
    timings = bench_sharded(**shard_args)
    rss = max(peak_rss_mb(), children_peak_rss_mb())
    speedup = timings["reference_s"] / timings["vectorized_s"]
    entry = {
        "benchmark": "sharded-dynamic-plan",
        "n_servers": timings["n_servers"],
        "n_hours": timings["n_hours"],
        "vectorized_s": round(timings["vectorized_s"], 6),
        "reference_s": round(timings["reference_s"], 6),
        "speedup": round(speedup, 2),
        "peak_rss_mb": rss,
        "n_shards": timings["n_shards"],
        "reconcile_moves": timings["reconcile_moves"],
        "active_host_gap": timings["active_host_gap"],
    }
    results.append(entry)
    print(
        f"{'sharded-dynamic-plan':20s} n={entry['n_servers']:5d} "
        f"T={entry['n_hours']:4d}h  "
        f"sharded {entry['vectorized_s']:.4f}s  "
        f"unsharded {entry['reference_s']:.4f}s  "
        f"speedup {entry['speedup']:.2f}x  rss {rss:.0f}MB  "
        f"gap {entry['active_host_gap']:+.2f} hosts"
    )
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "smoke" if smoke else "full",
        "repeats_best_of": repeats,
        "results": results,
    }


def run_scale_out() -> Dict[str, object]:
    """The 100k-row smoke: plan a chunked fleet that never fits a pass.

    Streams a 100k-server, 32-day fleet into a chunked store block by
    block (no full matrix ever exists in this process), then plans it
    sharded from the memory-mapped store.  ``tracemalloc`` watches the
    parent's *allocated* memory: the run must peak well under the
    on-disk matrix bytes, proving the store was consumed as memmap
    views — schedules, demand tables, and trace metadata are all the
    parent ever holds.
    """
    blocks = 10
    days = 32
    writer = None
    with tempfile.TemporaryDirectory(prefix="bench-scale-out-") as tmp:
        start = time.perf_counter()
        for index in range(blocks):
            block = generate_datacenter(
                "banking",
                scale=10_000 / _BANKING_SERVERS,
                days=days,
                seed=101 + index,
            )
            traces = list(block)
            if writer is None:
                writer = ChunkedTraceWriter(
                    tmp,
                    name="scale-out-100k",
                    n_servers=blocks * len(traces),
                    n_points=block.n_points,
                    interval_hours=block.interval_hours,
                )
            records = []
            for trace in traces:
                record = vm_record(trace.vm, trace.source_spec)
                record["vm_id"] = f"c{index:02d}:{record['vm_id']}"
                records.append(record)
            writer.append_block(
                records,
                np.stack([t.cpu_util.values for t in traces]),
                np.stack([t.memory_gb.values for t in traces]),
            )
            print(
                f"block {index + 1}/{blocks} written "
                f"({writer.rows_written} rows)",
                flush=True,
            )
        assert writer is not None
        writer.close()
        build_s = time.perf_counter() - start
        n_servers = writer.rows_written
        n_points = days * 24
        matrix_mb = 3 * n_servers * n_points * 8 / 2**20
        source = chunked_source(tmp)
        runner = ExperimentRunner(workers=2, use_cache=False)
        tracemalloc.start()
        start = time.perf_counter()
        run = run_sharded_plan(
            source,
            n_shards=64,
            pool_hosts=n_servers // 2,
            pool_name="scale-out",
            evaluation_days=2,
            runner=runner,
        )
        plan_s = time.perf_counter() - start
        traced_peak_mb = tracemalloc.get_traced_memory()[1] / 2**20
        tracemalloc.stop()
    assert run.report.n_shards == 64
    n_hours = int(
        run.schedule.segments[-1].end_hour - run.schedule.segments[0].start_hour
    )
    # The non-residency claim: planning 100k rows allocated a small
    # fraction of what the fleet's matrices occupy on disk.
    assert traced_peak_mb < matrix_mb / 2, (
        f"parent allocated {traced_peak_mb:.0f}MB against "
        f"{matrix_mb:.0f}MB of on-disk matrices"
    )
    entry = {
        "benchmark": "scale-out-100k",
        "n_servers": n_servers,
        "n_hours": n_hours,
        "build_s": round(build_s, 2),
        "plan_s": round(plan_s, 2),
        "n_shards": run.report.n_shards,
        "reconcile_moves": run.report.reconcile_moves,
        "matrix_disk_mb": round(matrix_mb, 1),
        "traced_peak_mb": round(traced_peak_mb, 1),
        "peak_rss_mb": max(peak_rss_mb(), children_peak_rss_mb()),
    }
    print(
        f"scale-out-100k  n={n_servers} T={n_hours}h shards=64  "
        f"build {build_s:.1f}s  plan {plan_s:.1f}s  "
        f"matrices on disk {matrix_mb:.0f}MB, parent allocated peak "
        f"{traced_peak_mb:.0f}MB"
    )
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "mode": "scale-out",
        "repeats_best_of": 1,
        "results": [entry],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances for CI: correctness + plumbing, not speedups",
    )
    parser.add_argument(
        "--scale-out",
        action="store_true",
        help="100k-row chunked-store smoke: memory bounds, not speedups",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="write results as JSON"
    )
    options = parser.parse_args()
    report = run_scale_out() if options.scale_out else run(options.smoke)
    if options.out is not None:
        options.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {options.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
