"""Ablation: PCP tail-overlap factor (DESIGN.md §4.0.2).

Sweeps the stochastic scheme's cross-cluster tail reserve from 0 (trust
the peak clustering completely) to 1 (degenerate to max sizing).  The
default 0.55 reproduces the paper's ~15-30% gain over vanilla; 0 shows
the over-optimistic packing a naive PCP would produce, and the
contention it risks.
"""

from conftest import print_report

from repro.experiments.ablations import run_tail_overlap_ablation
from repro.experiments.formatting import format_table


def test_ablation_tail_overlap(benchmark, settings):
    results = benchmark.pedantic(
        lambda: run_tail_overlap_ablation("banking", settings),
        rounds=1,
        iterations=1,
    )
    vanilla_servers = results["vanilla"].provisioned_servers
    rows = [
        (
            label,
            result.provisioned_servers,
            f"{result.provisioned_servers / vanilla_servers:.2f}",
            f"{result.contention_time_fraction():.5f}",
        )
        for label, result in results.items()
    ]
    print_report(
        "Ablation: PCP tail overlap (0 = trust clustering fully, "
        "1 = max sizing)",
        format_table(["scheme", "servers", "vs_vanilla", "contention"], rows),
    )
