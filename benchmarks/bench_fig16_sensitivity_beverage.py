"""Fig. 16: beverage — servers vs utilization bound (sensitivity).

Paper note: Beverage:tracks-Banking.  For a bound U, (1-U) of every host's CPU and
memory is reserved for live migration; semi-static and stochastic hold
no reservation and appear as flat reference lines.
"""

from conftest import cached_sensitivity, print_report

from repro.experiments.formatting import format_table


def test_fig16_sensitivity_beverage(benchmark, settings):
    result = benchmark.pedantic(
        lambda: cached_sensitivity("beverage", settings),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{r['utilization_bound']:.2f}",
            r["dynamic_servers"],
            r["semi_static_servers"],
            r["stochastic_servers"],
        )
        for r in result.rows()
    ]
    body = format_table(
        ["bound", "dynamic", "semi-static", "stochastic"], rows
    )
    body += (
        f"\ncrossover bound vs stochastic: {result.crossover_bound()}"
        f"\nimprovement over stochastic at U=1.0: "
        f"{result.improvement_at_full_bound():.0%}"
    )
    print_report("Fig 16 (beverage sensitivity)", body)
