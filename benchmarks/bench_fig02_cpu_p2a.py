"""Fig. 2: CDF of CPU peak-to-average ratio at 1/2/4 h intervals.

Paper: Banking median > 5 at 1-2 h intervals with >30% of servers above
10 at 1 h; Airlines/Natural-Resources modest (>50% above 2); Beverage
similar to Banking.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig02_cpu_peak_to_average(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig2", settings), rounds=1, iterations=1
    )
    print_report("Fig 2 (CPU P2A CDFs)", report)
