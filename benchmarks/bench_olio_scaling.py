"""§4.1 Olio aside: 6x throughput -> 7.9x CPU but only 3x memory."""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_olio_scaling(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("olio", settings), rounds=1, iterations=1
    )
    print_report("Olio scaling (paper: 6x -> 7.9x CPU, 3x memory)", report)
