"""Runner smoke bench: parallel fan-out + cache round-trip.

Times the four-datacenter sensitivity sweep three ways — serial,
parallel, and a cache-warm rerun — asserting what must hold everywhere
(identical results, all-hit warm rerun) and *reporting* the measured
speedup, which depends on the host's core count.  Deliberately uses
plain ``time.perf_counter`` instead of pytest-benchmark so the smoke
runs on a bare pytest install (``make bench-smoke`` / CI).

Scale is tiny by default so the smoke stays in seconds; raise
``REPRO_SCALE`` to stress it.
"""

from __future__ import annotations

import os
import time

from conftest import print_report

from repro.experiments.settings import ExperimentSettings
from repro.runner import ExperimentRunner, sensitivity_sweep


def _smoke_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.05"))


def _workers() -> int:
    return max(2, min(4, os.cpu_count() or 1))


def test_runner_sweep_smoke(tmp_path):
    settings = ExperimentSettings(scale=_smoke_scale())
    tasks = sensitivity_sweep(settings)

    serial_cache = tmp_path / "serial-cache"
    parallel_cache = tmp_path / "parallel-cache"
    serial = ExperimentRunner(serial=True, cache_dir=serial_cache)
    parallel = ExperimentRunner(
        workers=_workers(), cache_dir=parallel_cache
    )

    started = time.perf_counter()
    serial_report = serial.run(tasks)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_report = parallel.run(tasks)
    parallel_s = time.perf_counter() - started

    started = time.perf_counter()
    warm_report = parallel.run(tasks)
    warm_s = time.perf_counter() - started

    assert serial_report.results == parallel_report.results
    assert parallel_report.results == warm_report.results
    assert warm_report.cache_hits == len(tasks)
    assert warm_report.cache_misses == 0

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    body = (
        f"tasks: {len(tasks)} (4 datacenters x bound sweep)\n"
        f"serial:       {serial_s:8.2f}s\n"
        f"parallel({parallel.workers}):  {parallel_s:8.2f}s "
        f"(speedup {speedup:.2f}x on {os.cpu_count()} cores)\n"
        f"cache-warm:   {warm_s:8.2f}s "
        f"({warm_report.cache_hits} hits / {warm_report.cache_misses} "
        f"misses)\n\n{parallel_report.describe()}"
    )
    print_report("Runner sweep smoke (serial vs parallel vs warm)", body)
