"""Fig. 5: CDF of memory coefficient of variation.

Paper: ~20% of Banking servers heavy-tailed; none in Airlines or
Natural Resources; <10% in Beverage (Observation 2).
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig05_memory_cov(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig5", settings), rounds=1, iterations=1
    )
    print_report("Fig 5 (memory CoV CDFs)", report)
