"""Fig. 7: normalized space and power cost of the three schemes.

Paper: Stochastic outperforms Dynamic on space everywhere; Dynamic
beats vanilla semi-static on space for 3 of 4 workloads; Dynamic's
power is ~50% below Stochastic for Banking, large for Beverage, muted
for Airlines / Natural Resources.

This bench times the full Section-5 experiment (all four datacenters,
three schemes each); Figs. 8-12 reuse its cached results.
"""

from conftest import print_report

from repro.experiments.comparison import run_all
from repro.experiments.formatting import format_table


def test_fig07_infrastructure_cost(benchmark, settings, runner, comparisons):
    fresh = benchmark.pedantic(
        lambda: run_all(settings, runner=runner), rounds=1, iterations=1
    )
    rows = []
    for key, comparison in fresh.items():
        space = comparison.normalized_space_cost()
        power = comparison.normalized_power_cost()
        for scheme in space:
            rows.append(
                (key, scheme, f"{space[scheme]:.2f}", f"{power[scheme]:.2f}")
            )
    print_report(
        "Fig 7 (normalized to vanilla; paper: stochastic <= dynamic <= 1 "
        "on space except airlines-dynamic > 1)",
        format_table(["workload", "scheme", "space", "power"], rows),
    )
