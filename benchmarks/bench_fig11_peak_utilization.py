"""Fig. 11: CDF of peak CPU utilization per provisioned server.

Paper: Banking under Dynamic has the highest peaks — about 15% of its
servers cross 100% CPU utilization (the contention cases); all other
variants stay below 1.
"""

from conftest import print_report

from repro.experiments.formatting import format_cdf


def test_fig11_peak_utilization(benchmark, comparisons):
    grid = (0.25, 0.5, 0.75, 0.9, 1.0, 1.25)

    def tabulate():
        lines = []
        for key, comparison in comparisons.items():
            for scheme, result in comparison.results.items():
                cdf = result.peak_utilization_cdf()
                lines.append(format_cdf(f"{key}/{scheme}", cdf, grid))
        banking = comparisons["banking"].dynamic().peak_utilization_cdf()
        lines.append(
            "banking/dynamic fraction above 1.0: "
            f"{banking.fraction_above(1.0):.2f} (paper: ~0.15)"
        )
        return "\n".join(lines)

    report = benchmark.pedantic(tabulate, rounds=1, iterations=1)
    print_report("Fig 11 (peak CPU utilization CDFs)", report)
