"""Fig. 1: burstiness of two randomly picked Banking servers.

Paper: both servers average below 5% CPU utilization while peaking
above 50% — the headline motivation for dynamic consolidation.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_fig01_bursty_servers(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("fig1", settings), rounds=1, iterations=1
    )
    print_report("Fig 1 (paper: avg < 5%, peak > 50%)", report)
