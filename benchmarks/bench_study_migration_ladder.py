"""§7 study: improving live migration efficiency (Observation 7).

Re-derives the required migration reservation under better migration
technology (10 GbE fabric, target-side copy offload, RDMA), then re-runs
the Banking sensitivity experiment at each technology's reservation —
quantifying Observation 7: "if the resources reserved for live migration
can be reduced ... dynamic consolidation can achieve space and hardware
savings as well."
"""

from conftest import print_report

from repro.experiments.formatting import format_table
from repro.experiments.sensitivity import run_sensitivity
from repro.migration.whatif import reservation_ladder
from repro.workloads import generate_datacenter


def test_study_migration_ladder(benchmark, settings):
    def run():
        ladder = reservation_ladder()
        traces = generate_datacenter("banking", scale=settings.scale)
        bounds = sorted({round(1.0 - r, 2) for _, r in ladder})
        sweep = run_sensitivity(
            "banking", settings, bounds=bounds, trace_set=traces
        )
        return ladder, sweep

    ladder, sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for key, reservation in ladder:
        bound = round(1.0 - reservation, 2)
        servers = sweep.dynamic_servers_by_bound[bound]
        rows.append(
            (
                key,
                f"{reservation:.0%}",
                servers,
                sweep.stochastic_servers,
                "yes" if servers <= sweep.stochastic_servers else "no",
            )
        )
    print_report(
        "Migration-technology ladder (Obs. 7: cheaper migration -> "
        "smaller reservation -> dynamic wins on space too)",
        format_table(
            ["technology", "required_reservation", "dynamic_servers",
             "stochastic_servers", "dynamic_wins_space"],
            rows,
        ),
    )
