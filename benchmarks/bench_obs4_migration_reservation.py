"""Observation 4: resources reserved for reliable live migration.

Paper: live migration is reliable below ~80% host CPU / ~85% memory
commit; the study recommends reserving >= 20% of server resources.
"""

from conftest import print_report

from repro.experiments.figures import run_figure


def test_obs4_migration_reservation(benchmark, settings):
    report = benchmark.pedantic(
        lambda: run_figure("obs4", settings), rounds=1, iterations=1
    )
    print_report("Obs 4 (paper: reserve >= 20%)", report)
