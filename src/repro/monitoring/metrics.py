"""The monitored metric catalog (paper Table 1).

"The monitoring agent collects a wide variety of metrics every minute
for each operating system instance in the data center."  Table 1 lists
them; this module encodes the catalog so agents and the warehouse share
one schema, with the two planning-relevant metrics (processor time and
committed memory) flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "MetricDefinition",
    "TABLE1_METRICS",
    "CPU_TOTAL",
    "MEMORY_COMMITTED",
    "get_metric",
    "planning_metrics",
]


@dataclass(frozen=True)
class MetricDefinition:
    """One row of the paper's Table 1."""

    key: str
    description: str
    unit: str
    #: Consolidation planning optimizes CPU and memory (§3.1); the rest
    #: are collected but only used as constraints or ignored.
    used_for_planning: bool = False

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("metric key must be non-empty")


CPU_TOTAL = MetricDefinition(
    key="pct_total_processor_time",
    description="Total Processor Time",
    unit="percent",
    used_for_planning=True,
)

MEMORY_COMMITTED = MetricDefinition(
    key="memory_committed_mb",
    description="Memory Committed in Bytes (MB)",
    unit="MB",
    used_for_planning=True,
)

#: The full Table 1 catalog, in the paper's order.
TABLE1_METRICS: Tuple[MetricDefinition, ...] = (
    CPU_TOTAL,
    MetricDefinition(
        key="pct_priv",
        description="Percent time spent in System mode",
        unit="percent",
    ),
    MetricDefinition(
        key="pct_user",
        description="Percent time spent in User mode",
        unit="percent",
    ),
    MetricDefinition(
        key="proc_queue_length",
        description="Processor Queue Length",
        unit="count",
    ),
    MetricDefinition(
        key="pages_per_sec",
        description="Pages In Per Second",
        unit="pages/s",
    ),
    MEMORY_COMMITTED,
    MetricDefinition(
        key="memory_average_pct",
        description="% of Memory Committed Used",
        unit="percent",
    ),
    MetricDefinition(
        key="dasd_pct_free",
        description="% time DAS Device is free",
        unit="percent",
    ),
    MetricDefinition(
        key="log_vol_reads",
        description="# Log Vol Reads",
        unit="count",
    ),
    MetricDefinition(
        key="tcpip_conn",
        description="Number of TCP/IP Packets transferred",
        unit="packets/s",
    ),
    MetricDefinition(
        key="tcpip_conn_v6",
        description="Number of IPv6 Packets transferred",
        unit="packets/s",
    ),
)

_BY_KEY: Mapping[str, MetricDefinition] = {
    metric.key: metric for metric in TABLE1_METRICS
}


def get_metric(key: str) -> MetricDefinition:
    """Look up a Table-1 metric by key."""
    try:
        return _BY_KEY[key]
    except KeyError:
        known = ", ".join(sorted(_BY_KEY))
        raise ConfigurationError(
            f"unknown metric {key!r}; known: {known}"
        ) from None


def planning_metrics() -> Tuple[MetricDefinition, ...]:
    """The metrics the consolidation planner actually consumes."""
    return tuple(m for m in TABLE1_METRICS if m.used_for_planning)
