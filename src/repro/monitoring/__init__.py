"""Agent-based monitoring pipeline: metrics, agents, warehouse (§3.1)."""

from repro.monitoring.agent import (
    MINUTES_PER_HOUR,
    IntraHourModel,
    MinuteRecord,
    MonitoringAgent,
)
from repro.monitoring.metrics import (
    CPU_TOTAL,
    MEMORY_COMMITTED,
    TABLE1_METRICS,
    MetricDefinition,
    get_metric,
    planning_metrics,
)
from repro.monitoring.warehouse import DataWarehouse, WarehouseRecord

__all__ = [
    "CPU_TOTAL",
    "DataWarehouse",
    "IntraHourModel",
    "MEMORY_COMMITTED",
    "MINUTES_PER_HOUR",
    "MetricDefinition",
    "MinuteRecord",
    "MonitoringAgent",
    "TABLE1_METRICS",
    "WarehouseRecord",
    "get_metric",
    "planning_metrics",
]
