"""The per-server monitoring agent (paper §3.1).

"Each source server (physical or virtual) periodically collects system
usage data and sends it to a central server."  The agent samples every
minute; the warehouse later aggregates to the hourly averages planning
uses.

Our trace generators produce the *hourly ground truth*; the agent fills
in minute-level texture around it (mean-preserving multiplicative noise
with intra-hour autocorrelation), which lets the reproduction measure a
quantity the hourly traces hide: the **intra-interval burst premium** —
how much higher the minute-level peak of a consolidation window is than
the peak of its hourly averages.  That measurement grounds the
``cpu_burst_factor`` used by dynamic consolidation (DESIGN.md §4.0.3).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.numerics import approx_ne
from repro.workloads import models
from repro.workloads.trace import ServerTrace

__all__ = ["IntraHourModel", "MonitoringAgent", "MinuteRecord"]

MINUTES_PER_HOUR = 60


@dataclass(frozen=True)
class IntraHourModel:
    """Minute-level texture inside each monitored hour.

    The texture is a mean-one multiplicative series (lognormal i.i.d. ×
    exp(AR(1))) re-normalized per hour, so the warehouse's hourly
    average reproduces the ground truth exactly — aggregation loses the
    bursts, not the mean, exactly as in real monitoring pipelines.
    """

    lognormal_sigma: float = 0.05
    ar1_phi: float = 0.80
    ar1_sigma: float = 0.03
    #: Memory drifts within the hour far less than CPU (Obs. 2).
    memory_sigma: float = 0.01

    def __post_init__(self) -> None:
        if self.lognormal_sigma < 0 or self.ar1_sigma < 0:
            raise ConfigurationError("sigmas must be >= 0")
        if not -1 < self.ar1_phi < 1:
            raise ConfigurationError("ar1_phi must be in (-1, 1)")
        if self.memory_sigma < 0:
            raise ConfigurationError("memory_sigma must be >= 0")


@dataclass(frozen=True)
class MinuteRecord:
    """One Table-1 record as the agent ships it to the warehouse."""

    vm_id: str
    minute_index: int
    cpu_pct: float
    memory_committed_mb: float
    pct_priv: float
    pct_user: float
    tcpip_packets: float


class MonitoringAgent:
    """Produces minute-level samples for one server.

    Deterministic given ``(trace, seed)``; minute matrices are generated
    lazily per hour block and cached.
    """

    def __init__(
        self,
        trace: ServerTrace,
        *,
        model: IntraHourModel = IntraHourModel(),
        seed: int = 0,
        drop_probability: float = 0.0,
    ) -> None:
        if approx_ne(trace.interval_hours, 1.0):
            raise ConfigurationError(
                "MonitoringAgent needs hourly ground-truth traces"
            )
        if not 0 <= drop_probability < 1:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self.trace = trace
        self.model = model
        self.drop_probability = drop_probability
        # crc32, not hash(): Python string hashing is randomized per
        # process and would make agents irreproducible across runs.
        self._rng = np.random.default_rng(
            np.random.SeedSequence(
                (seed, zlib.crc32(trace.vm_id.encode("utf-8")))
            )
        )
        self._cpu_minutes: "np.ndarray | None" = None
        self._memory_minutes: "np.ndarray | None" = None
        self._dropped: "np.ndarray | None" = None

    @property
    def vm_id(self) -> str:
        return self.trace.vm_id

    @property
    def n_hours(self) -> int:
        return len(self.trace)

    def _generate(self) -> None:
        if self._cpu_minutes is not None:
            return
        n_hours = self.n_hours
        total_minutes = n_hours * MINUTES_PER_HOUR
        texture = models.lognormal_noise(
            total_minutes, self.model.lognormal_sigma, self._rng
        ) * np.exp(
            models.ar1_noise(
                total_minutes,
                self.model.ar1_phi,
                self.model.ar1_sigma,
                self._rng,
            )
        )
        texture = texture.reshape(n_hours, MINUTES_PER_HOUR)
        texture /= texture.mean(axis=1, keepdims=True)  # exact hourly mean
        hourly_cpu = self.trace.cpu_util.values[:, None]
        self._cpu_minutes = np.clip(hourly_cpu * texture, 0.0, 1.0)

        memory_noise = models.lognormal_noise(
            total_minutes, self.model.memory_sigma, self._rng
        ).reshape(n_hours, MINUTES_PER_HOUR)
        memory_noise /= memory_noise.mean(axis=1, keepdims=True)
        hourly_memory = self.trace.memory_gb.values[:, None]
        self._memory_minutes = hourly_memory * memory_noise

        if self.drop_probability > 0:
            self._dropped = (
                self._rng.random((n_hours, MINUTES_PER_HOUR))
                < self.drop_probability
            )
        else:
            self._dropped = np.zeros(
                (n_hours, MINUTES_PER_HOUR), dtype=bool
            )

    def minute_cpu_util(self) -> np.ndarray:
        """(n_hours, 60) CPU utilization fractions at minute resolution."""
        self._generate()
        assert self._cpu_minutes is not None
        return self._cpu_minutes

    def minute_memory_gb(self) -> np.ndarray:
        self._generate()
        assert self._memory_minutes is not None
        return self._memory_minutes

    def dropped_mask(self) -> np.ndarray:
        """(n_hours, 60) True where the sample was lost in transit."""
        self._generate()
        assert self._dropped is not None
        return self._dropped

    def records_for_hour(self, hour: int) -> Iterator[MinuteRecord]:
        """The Table-1 records the agent ships for one hour.

        Derived metrics follow typical Windows-box relationships: system
        time is ~30% of total, packets scale with web activity.
        """
        if not 0 <= hour < self.n_hours:
            raise ConfigurationError(
                f"hour {hour} out of range [0, {self.n_hours})"
            )
        cpu = self.minute_cpu_util()[hour]
        memory = self.minute_memory_gb()[hour]
        dropped = self.dropped_mask()[hour]
        for minute in range(MINUTES_PER_HOUR):
            if dropped[minute]:
                continue
            cpu_pct = float(cpu[minute] * 100.0)
            yield MinuteRecord(
                vm_id=self.vm_id,
                minute_index=hour * MINUTES_PER_HOUR + minute,
                cpu_pct=cpu_pct,
                memory_committed_mb=float(memory[minute] * 1024.0),
                pct_priv=cpu_pct * 0.3,
                pct_user=cpu_pct * 0.7,
                tcpip_packets=cpu_pct * 40.0,
            )

    # ------------------------------------------------------------------

    def burst_premium(self, window_hours: int = 2) -> Tuple[float, float]:
        """Measured intra-window burst premium (mean, p95).

        For each consolidation window: (peak minute sample) / (peak
        hourly average) — the factor by which hourly planning data
        understates the demand a dynamic consolidation system must
        provision.  Grounds ``DynamicConsolidation.cpu_burst_factor``.
        """
        if window_hours <= 0:
            raise ConfigurationError(
                f"window_hours must be > 0, got {window_hours}"
            )
        usable_hours = (self.n_hours // window_hours) * window_hours
        if usable_hours == 0:
            raise ConfigurationError("trace shorter than one window")
        minutes = self.minute_cpu_util()[:usable_hours]
        hourly = self.trace.cpu_util.values[:usable_hours]
        minute_windows = minutes.reshape(
            -1, window_hours * MINUTES_PER_HOUR
        )
        hourly_windows = hourly.reshape(-1, window_hours)
        minute_peaks = minute_windows.max(axis=1)
        hourly_peaks = hourly_windows.max(axis=1)
        safe = hourly_peaks > 1e-9
        premiums = minute_peaks[safe] / hourly_peaks[safe]
        return float(premiums.mean()), float(np.percentile(premiums, 95))
