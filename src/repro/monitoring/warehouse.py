"""The central monitoring data warehouse (paper §3.1).

"The central server acts as a data warehouse for the monitored data and
maintains data with policies on retention and expiration.  We get
monitored data for consolidation planning from the data warehouse."

The warehouse ingests agents' minute samples, aggregates them into the
hourly averages planning consumes, enforces a retention window, tracks
per-server completeness, and exports a
:class:`~repro.workloads.trace.TraceSet` — applying the paper's §3.2
filter: "We filter out any servers for which monitoring data or the
specifications of the server is not available in the data warehouse."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.infrastructure.server import ServerSpec
from repro.infrastructure.vm import VirtualMachine
from repro.monitoring.agent import MINUTES_PER_HOUR, MonitoringAgent
from repro.workloads.trace import ResourceTrace, ServerTrace, TraceSet

__all__ = ["WarehouseRecord", "DataWarehouse"]


@dataclass
class WarehouseRecord:
    """Aggregated hourly data for one server."""

    vm: VirtualMachine
    spec: Optional[ServerSpec]
    hourly_cpu_util: np.ndarray
    hourly_memory_gb: np.ndarray
    samples_received: np.ndarray  # per hour, of MINUTES_PER_HOUR expected

    @property
    def n_hours(self) -> int:
        return int(self.hourly_cpu_util.size)

    def completeness(self) -> float:
        """Fraction of expected minute samples that actually arrived."""
        expected = self.n_hours * MINUTES_PER_HOUR
        return float(self.samples_received.sum() / expected) if expected else 0.0


@dataclass
class DataWarehouse:
    """Ingests agents, aggregates hourly, retains, filters, exports.

    Parameters
    ----------
    retention_days:
        Hours beyond ``retention_days * 24`` are expired on ingest —
        the paper plans from "the most recent 30 days".
    """

    retention_days: int = 30
    _records: Dict[str, WarehouseRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.retention_days <= 0:
            raise ConfigurationError(
                f"retention_days must be > 0, got {self.retention_days}"
            )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, vm_id: object) -> bool:
        return vm_id in self._records

    def ingest_agent(
        self,
        agent: MonitoringAgent,
        *,
        spec_available: bool = True,
    ) -> WarehouseRecord:
        """Pull an agent's full stream, aggregate, apply retention.

        ``spec_available=False`` models servers whose hardware record is
        missing from the CMDB — they are retained as monitoring rows but
        excluded from planning exports (the §3.2 filter).
        """
        if agent.vm_id in self._records:
            raise ConfigurationError(
                f"agent {agent.vm_id!r} already ingested"
            )
        minutes_cpu = agent.minute_cpu_util()
        minutes_memory = agent.minute_memory_gb()
        received = ~agent.dropped_mask()

        # Hourly average over *received* samples only; hours with no
        # samples at all surface as NaN and count against completeness.
        counts = received.sum(axis=1)
        with np.errstate(invalid="ignore"):
            cpu = np.where(
                counts > 0,
                np.where(received, minutes_cpu, 0.0).sum(axis=1)
                / np.maximum(counts, 1),
                np.nan,
            )
            memory = np.where(
                counts > 0,
                np.where(received, minutes_memory, 0.0).sum(axis=1)
                / np.maximum(counts, 1),
                np.nan,
            )

        keep = self.retention_days * 24
        if cpu.size > keep:
            cpu, memory, counts = cpu[-keep:], memory[-keep:], counts[-keep:]

        record = WarehouseRecord(
            vm=agent.trace.vm,
            spec=agent.trace.source_spec if spec_available else None,
            hourly_cpu_util=cpu,
            hourly_memory_gb=memory,
            samples_received=counts,
        )
        self._records[agent.vm_id] = record
        return record

    def record(self, vm_id: str) -> WarehouseRecord:
        try:
            return self._records[vm_id]
        except KeyError:
            raise TraceError(f"no warehouse record for {vm_id!r}") from None

    def completeness(self, vm_id: str) -> float:
        return self.record(vm_id).completeness()

    # ------------------------------------------------------------------

    def export_trace_set(
        self,
        name: str,
        *,
        min_completeness: float = 0.95,
    ) -> Tuple[TraceSet, Tuple[str, ...]]:
        """Build the planning trace set, filtering unusable servers.

        Returns ``(trace_set, excluded_vm_ids)``.  A server is excluded
        when its spec is missing, its sample completeness falls below
        ``min_completeness``, or any retained hour has no samples at all
        (NaN hourly average) — the paper's filter, §3.2.
        """
        if not 0 < min_completeness <= 1:
            raise ConfigurationError(
                f"min_completeness must be in (0, 1], got {min_completeness}"
            )
        trace_set = TraceSet(name=name)
        excluded = []
        for vm_id, record in self._records.items():
            if record.spec is None:
                excluded.append(vm_id)
                continue
            if record.completeness() < min_completeness:
                excluded.append(vm_id)
                continue
            if np.isnan(record.hourly_cpu_util).any():
                excluded.append(vm_id)
                continue
            trace_set.add(
                ServerTrace(
                    vm=record.vm,
                    source_spec=record.spec,
                    cpu_util=ResourceTrace(
                        record.hourly_cpu_util, unit="fraction"
                    ),
                    memory_gb=ResourceTrace(
                        record.hourly_memory_gb, unit="GB"
                    ),
                )
            )
        return trace_set, tuple(excluded)
