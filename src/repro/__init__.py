"""repro — reproduction of *Virtual Machine Consolidation in the Wild*
(Verma, Bagrodia, Jaiswal; ACM/IFIP/USENIX Middleware 2014).

The library contains everything the paper's evaluation needs, built from
scratch:

* calibrated synthetic workloads for the paper's four enterprise
  datacenters (:mod:`repro.workloads`),
* the Section-4 trace analysis (:mod:`repro.analysis`),
* a pre-copy live-migration simulator and the reservation study behind
  Observation 4 (:mod:`repro.migration`),
* the consolidation emulator (:mod:`repro.emulator`),
* static / semi-static / stochastic (PCP) / dynamic consolidation
  algorithms with real-world deployment constraints (:mod:`repro.core`,
  :mod:`repro.constraints`, :mod:`repro.placement`, :mod:`repro.sizing`),
* per-figure experiment runners for every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        ConsolidationPlanner, DynamicConsolidation,
        StochasticConsolidation, SemiStaticConsolidation,
        build_target_pool, generate_datacenter,
    )

    traces = generate_datacenter("banking", scale=0.2)
    pool = build_target_pool("pool", host_count=80)
    planner = ConsolidationPlanner(traces=traces, datacenter=pool)
    result = planner.run(DynamicConsolidation())
    print(result.summary())
"""

from repro.core import (
    ConsolidationAlgorithm,
    ConsolidationPlanner,
    DynamicConsolidation,
    PlanningConfig,
    PlanningContext,
    SemiStaticConsolidation,
    StaticConsolidation,
    StochasticConsolidation,
    split_window,
)
from repro.emulator import ConsolidationEmulator, EmulationResult, PlacementSchedule
from repro.exceptions import (
    ConfigurationError,
    ConstraintViolation,
    EmulationError,
    PlacementError,
    ReproError,
    TraceError,
)
from repro.infrastructure import (
    Datacenter,
    PhysicalServer,
    ServerSpec,
    VirtualMachine,
    VMDemand,
    build_target_pool,
)
from repro.placement import Placement
from repro.workloads import TraceSet, generate_datacenter

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ConsolidationAlgorithm",
    "ConsolidationEmulator",
    "ConsolidationPlanner",
    "ConstraintViolation",
    "Datacenter",
    "DynamicConsolidation",
    "EmulationError",
    "EmulationResult",
    "PhysicalServer",
    "Placement",
    "PlacementError",
    "PlacementSchedule",
    "PlanningConfig",
    "PlanningContext",
    "ReproError",
    "SemiStaticConsolidation",
    "ServerSpec",
    "StaticConsolidation",
    "StochasticConsolidation",
    "TraceError",
    "TraceSet",
    "VMDemand",
    "VirtualMachine",
    "__version__",
    "build_target_pool",
    "generate_datacenter",
    "split_window",
]
