"""Hierarchical sharded planning for datacenter-scale fleets.

A single centralized planner is the scaling bottleneck once the fleet
outgrows a few thousand servers: every displaced VM scans every host.
This package partitions the fleet along the ``Datacenter`` rack/subnet
topology (:mod:`repro.sharding.partition`), plans each shard
independently through the existing vectorized engines
(:mod:`repro.sharding.planner`), and then runs a hierarchical
cross-shard reconciliation pass (:mod:`repro.sharding.reconcile`) —
pack intra-rack first, then consolidate residual under-filled hosts
across racks — so the consolidation ratio stays close to the unsharded
plan.  :mod:`repro.sharding.tasks` fans shards across the
:mod:`repro.runner` process pool and feeds them from chunked
memory-mapped trace stores (:mod:`repro.workloads.chunked`) so no
worker ever holds the whole fleet's matrices.
"""

from repro.sharding.partition import ShardSpec, partition_fleet
from repro.sharding.planner import (
    ShardedConsolidation,
    ShardedPlanReport,
    build_demand_table,
)
from repro.sharding.reconcile import reconcile_assignment
from repro.sharding.tasks import (
    KIND_SHARD_PLAN,
    ShardedPlanRun,
    chunked_source,
    generated_source,
    preset_source,
    run_sharded_plan,
    shard_plan_task,
)

__all__ = [
    "ShardSpec",
    "partition_fleet",
    "ShardedConsolidation",
    "ShardedPlanReport",
    "build_demand_table",
    "reconcile_assignment",
    "KIND_SHARD_PLAN",
    "ShardedPlanRun",
    "chunked_source",
    "generated_source",
    "preset_source",
    "shard_plan_task",
    "run_sharded_plan",
]
