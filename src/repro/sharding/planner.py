"""Sharded consolidation planning.

:class:`ShardedConsolidation` is a :class:`ConsolidationAlgorithm` that
wraps any inner algorithm: it partitions the fleet along the datacenter
topology (:func:`~repro.sharding.partition.partition_fleet`), plans each
shard independently on its own sub-context — per-shard host scans are
what makes planning superlinear, so ``S`` shards of ``n/S`` VMs are
substantially cheaper than one plan of ``n`` — merges the per-interval
placements (shards are disjoint, so the merge is a union), and finally
runs the hierarchical reconciliation pass of
:mod:`repro.sharding.reconcile` so the merged plan's active-host count
stays close to the unsharded plan's.

With one shard the pipeline degenerates to the inner algorithm on the
original inputs (reconciliation is cross-shard by definition and is
skipped), so a 1-shard plan is **bitwise identical** to the unsharded
plan — the property the equivalence suite pins.

Reconciliation needs the fleet-wide sized demand of every interval.
For :class:`~repro.core.dynamic.DynamicConsolidation` inner planners
that table is rebuilt here with the *same* prediction/sizing pipeline
the shards used (all of it is per-VM-row, so the global table is
bit-identical to the shard tables stacked) — in row blocks, so a
memory-mapped fleet store is never materialized whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import ConsolidationAlgorithm, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.incremental import HostCapacities
from repro.emulator.schedule import PlacementSchedule, ScheduledPlacement
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.placement.plan import Placement
from repro.sharding.partition import ShardSpec, host_groups, partition_fleet
from repro.sharding.reconcile import reconcile_assignment
from repro.sizing.estimator import DemandTable, SizeEstimator
from repro.sizing.functions import MaxSizing
from repro.sizing.prediction import build_peak_table
from repro.workloads.store import TraceStore

__all__ = [
    "ShardedConsolidation",
    "ShardedPlanReport",
    "build_demand_table",
    "merge_shard_schedules",
    "shard_context",
]

#: Row-block size for the blockwise demand-table build: large enough to
#: amortize kernel dispatch, small enough that a 100k-row memory-mapped
#: fleet never has more than one block's full-width slice resident.
_TABLE_BLOCK_ROWS = 4096


@dataclass(frozen=True)
class ShardedPlanReport:
    """Diagnostics of one sharded plan (exposed for benches and tests)."""

    shards: Tuple[ShardSpec, ...]
    reconcile_moves: int
    active_hosts_before: Tuple[int, ...]
    active_hosts_after: Tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)


def build_demand_table(
    algorithm: DynamicConsolidation,
    history_store: TraceStore,
    evaluation_store: TraceStore,
    workload_classes: Sequence[Optional[str]],
    context: PlanningContext,
    *,
    block_rows: int = _TABLE_BLOCK_ROWS,
) -> DemandTable:
    """Fleet-wide per-interval sized demands, built in row blocks.

    Reproduces the dynamic array engine's table
    (``core/dynamic_vector.py``) bit-identically: prediction and sizing
    are per-VM-row operations, so processing ``block_rows`` rows at a
    time yields exactly the same floats as one whole-matrix pass —
    while keeping peak memory at one block's history+evaluation slice
    (the fleet store itself may be memory-mapped).
    """
    points = context.points_per_interval
    history_points = history_store.n_points
    n_intervals = context.n_intervals
    starts = [history_points + i * points for i in range(n_intervals)]
    estimator = SizeEstimator(
        sizing=MaxSizing(),
        overhead=context.config.overhead,
        network=context.config.network,
        disk=context.config.disk,
    )
    vm_ids = history_store.vm_ids
    n_vms = len(vm_ids)
    blocks: List[DemandTable] = []
    for start in range(0, n_vms, block_rows):
        stop = min(start + block_rows, n_vms)
        cpu_full = np.hstack(
            [
                history_store.cpu_rpe2[start:stop],
                evaluation_store.cpu_rpe2[start:stop],
            ]
        )
        memory_full = np.hstack(
            [
                history_store.memory_gb[start:stop],
                evaluation_store.memory_gb[start:stop],
            ]
        )
        cpu_table = algorithm.cpu_burst_factor * build_peak_table(
            algorithm.predictor, cpu_full, points, starts
        )
        memory_table = build_peak_table(
            algorithm.predictor, memory_full, points, starts
        )
        blocks.append(
            estimator.estimate_matrix(
                vm_ids[start:stop],
                cpu_table,
                memory_table,
                list(workload_classes[start:stop]),
            )
        )
    if len(blocks) == 1:
        return blocks[0]
    return DemandTable(
        vm_ids=vm_ids,
        cpu_rpe2=np.concatenate([b.cpu_rpe2 for b in blocks]),
        memory_gb=np.concatenate([b.memory_gb for b in blocks]),
        network_mbps=np.concatenate([b.network_mbps for b in blocks]),
        disk_mbps=np.concatenate([b.disk_mbps for b in blocks]),
    )


def merge_shard_schedules(
    schedules: Sequence[PlacementSchedule],
) -> PlacementSchedule:
    """Union the per-shard schedules segment by segment.

    Shards cover disjoint VM sets, so each segment's merged placement is
    a plain dict union; all shard schedules must tile the evaluation
    window identically (same segment boundaries).
    """
    if not schedules:
        raise ConfigurationError("no shard schedules to merge")
    boundaries = [
        tuple((s.start_hour, s.end_hour) for s in schedule)
        for schedule in schedules
    ]
    if len(set(boundaries)) != 1:
        raise ConfigurationError(
            "shard schedules tile the window differently; cannot merge"
        )
    segments = []
    for index, segment in enumerate(schedules[0]):
        assignment: Dict[str, str] = {}
        for schedule in schedules:
            shard_segment = schedule.segments[index]
            overlap = assignment.keys() & shard_segment.placement.assignment.keys()
            if overlap:
                raise ConfigurationError(
                    f"shards overlap on VMs {sorted(overlap)[:3]}"
                )
            assignment.update(shard_segment.placement.assignment)
        segments.append(
            ScheduledPlacement(
                placement=Placement(assignment=assignment),
                start_hour=segment.start_hour,
                end_hour=segment.end_hour,
            )
        )
    return PlacementSchedule(segments=tuple(segments))


@dataclass
class ShardedConsolidation(ConsolidationAlgorithm):
    """Partition → per-shard plan → merge → reconcile.

    Parameters
    ----------
    n_shards:
        Shard count; must not exceed the number of topology groups.
    by:
        Topology label shards align to (``"rack"`` or ``"subnet"``).
    algorithm_factory:
        Builds one fresh inner planner per shard (instances keep
        per-plan caches, so shards must not share one).
    reconcile:
        Run the cross-shard reconciliation pass.  Requires the inner
        planner to be a :class:`DynamicConsolidation` (its sizing
        pipeline is what rebuilds the fleet-wide demand table).
    fill_threshold / max_reconcile_sweeps:
        Reconciliation knobs (see :mod:`repro.sharding.reconcile`).
    plan_shards:
        Optional override executing the whole shard batch — the runner
        fan-out hook (:mod:`repro.sharding.tasks` submits one task per
        shard to the process pool).  Defaults to planning each shard
        in-process.
    """

    name: str = "sharded-dynamic"
    n_shards: int = 4
    by: str = "rack"
    algorithm_factory: Callable[[], ConsolidationAlgorithm] = field(
        default=DynamicConsolidation
    )
    reconcile: bool = True
    fill_threshold: float = 0.5
    max_reconcile_sweeps: int = 2
    plan_shards: Optional[
        Callable[
            [Tuple[ShardSpec, ...], PlanningContext],
            Sequence[PlacementSchedule],
        ]
    ] = None
    #: Diagnostics of the most recent :meth:`plan` call.
    last_report: Optional[ShardedPlanReport] = field(
        default=None, repr=False, compare=False
    )

    def plan(self, context: PlanningContext) -> PlacementSchedule:
        if context.constraints:
            raise ConfigurationError(
                "sharded planning does not support deployment constraints "
                "(a constraint can bind VMs across shard boundaries)"
            )
        weights = context.history.store.cpu_rpe2.mean(axis=1)
        shards = partition_fleet(
            context.evaluation.vm_ids,
            context.datacenter,
            self.n_shards,
            by=self.by,
            vm_weights=weights,
        )
        if self.plan_shards is not None:
            schedules = list(self.plan_shards(shards, context))
        else:
            schedules = [
                self.algorithm_factory().plan(shard_context(shard, context))
                for shard in shards
            ]
        merged = merge_shard_schedules(schedules)
        active_before = tuple(
            segment.placement.active_host_count for segment in merged
        )
        moves = 0
        if self.reconcile and len(shards) > 1:
            merged, moves = self._reconcile(merged, context)
        self.last_report = ShardedPlanReport(
            shards=shards,
            reconcile_moves=moves,
            active_hosts_before=active_before,
            active_hosts_after=tuple(
                segment.placement.active_host_count for segment in merged
            ),
        )
        return merged

    # ------------------------------------------------------------------

    def _reconcile(
        self, merged: PlacementSchedule, context: PlanningContext
    ) -> Tuple[PlacementSchedule, int]:
        inner = self.algorithm_factory()
        if not isinstance(inner, DynamicConsolidation):
            raise ConfigurationError(
                "reconcile=True requires a DynamicConsolidation inner "
                "planner; pass reconcile=False for other algorithms"
            )
        classes = [
            trace.vm.workload_class for trace in context.evaluation
        ]
        table = build_demand_table(
            inner,
            context.history.store,
            context.evaluation.store,
            classes,
            context,
        )
        caps = HostCapacities(
            list(context.datacenter.hosts), context.config.utilization_bound
        )
        group_of_host = _group_index(context.datacenter, self.by, caps)
        segments = []
        total_moves = 0
        for column, segment in enumerate(merged):
            assignment, moves = reconcile_assignment(
                segment.placement.assignment,
                table,
                column,
                caps,
                group_of_host,
                fill_threshold=self.fill_threshold,
                max_sweeps=self.max_reconcile_sweeps,
            )
            total_moves += moves
            segments.append(
                ScheduledPlacement(
                    placement=(
                        Placement(assignment=assignment)
                        if moves
                        else segment.placement
                    ),
                    start_hour=segment.start_hour,
                    end_hour=segment.end_hour,
                )
            )
        return PlacementSchedule(segments=tuple(segments)), total_moves


def shard_context(
    shard: ShardSpec, context: PlanningContext
) -> PlanningContext:
    """The planning sub-problem one shard sees.

    History and evaluation restrict to the shard's VM rows (zero-copy
    row gathers of an already-built store); the datacenter restricts to
    the shard's hosts, preserving the fleet's host order so FFD scans
    inside the shard visit hosts exactly as the unsharded planner
    would.
    """
    datacenter = Datacenter(name=context.datacenter.name)
    for host_id in shard.host_ids:
        datacenter.add_host(context.datacenter.host(host_id))
    return PlanningContext(
        history=context.history.subset(shard.vm_ids),
        evaluation=context.evaluation.subset(shard.vm_ids),
        datacenter=datacenter,
        config=context.config,
    )


def _group_index(
    datacenter: Datacenter, by: str, caps: HostCapacities
) -> List[int]:
    """Map each host index onto its topology group's dense id."""
    group_of_host = [0] * caps.n
    for group_id, (_, hosts) in enumerate(host_groups(datacenter, by)):
        for host in hosts:
            group_of_host[caps.index_of[host.host_id]] = group_id
    return group_of_host
