"""Topology-driven fleet partitioning.

A shard is a set of whole racks (or subnets) plus a contiguous block of
VM rows whose total weight is proportional to the shard's host capacity.
Keeping racks intact aligns shard boundaries with the topology the
reconciliation pass packs within first, and contiguous VM blocks keep
shard trace access a zero-copy row slice of the fleet store
(:meth:`repro.workloads.store.TraceStore.rows`) — on a memory-mapped
store, a shard worker faults in only its own rows.

Everything here is deterministic: group order follows host insertion
order, shard boundaries follow cumulative capacity, and VM blocks follow
cumulative weight with largest-remainder boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer

__all__ = ["ShardSpec", "partition_fleet", "host_groups"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard: whole topology groups plus a contiguous VM block.

    Attributes
    ----------
    index:
        Shard number, dense from 0 in topology order.
    host_ids:
        Hosts of this shard, in datacenter insertion order.
    groups:
        The rack (or subnet) labels the hosts came from.
    vm_ids:
        The shard's VM block, in fleet row order.
    vm_start / vm_stop:
        The block's row range ``[vm_start, vm_stop)`` in the fleet's
        row order — shard trace access is a contiguous row slice.
    """

    index: int
    host_ids: Tuple[str, ...]
    groups: Tuple[str, ...]
    vm_ids: Tuple[str, ...]
    vm_start: int
    vm_stop: int

    def __post_init__(self) -> None:
        if self.vm_stop - self.vm_start != len(self.vm_ids):
            raise ConfigurationError(
                f"shard {self.index}: vm range [{self.vm_start}, "
                f"{self.vm_stop}) does not cover {len(self.vm_ids)} VMs"
            )

    @property
    def n_hosts(self) -> int:
        return len(self.host_ids)

    @property
    def n_vms(self) -> int:
        return len(self.vm_ids)


def host_groups(
    datacenter: Datacenter, by: str = "rack"
) -> List[Tuple[str, List[PhysicalServer]]]:
    """Hosts grouped by topology label, in first-seen order.

    ``by`` selects the label: ``"rack"`` or ``"subnet"``.  Hosts without
    the label form singleton groups (they can land on either side of a
    shard boundary without splitting real enclosures).
    """
    if by not in ("rack", "subnet"):
        raise ConfigurationError(
            f"unknown partition key {by!r}; expected 'rack' or 'subnet'"
        )
    groups: List[Tuple[str, List[PhysicalServer]]] = []
    index: dict = {}
    for host in datacenter:
        label = host.rack if by == "rack" else host.subnet
        if label is None:
            groups.append((f"host:{host.host_id}", [host]))
            continue
        if label not in index:
            index[label] = len(groups)
            groups.append((label, []))
        groups[index[label]][1].append(host)
    return groups


def partition_fleet(
    vm_ids: Sequence[str],
    datacenter: Datacenter,
    n_shards: int,
    *,
    by: str = "rack",
    vm_weights: Optional[Sequence[float]] = None,
) -> Tuple[ShardSpec, ...]:
    """Partition hosts and VMs into ``n_shards`` topology-aligned shards.

    Host side: topology groups (whole racks/subnets) are assigned to
    shards greedily along cumulative CPU capacity, so every shard gets a
    contiguous run of groups with roughly ``1/n_shards`` of the fleet's
    capacity and no group is ever split.

    VM side: the VM sequence is cut into contiguous blocks whose
    cumulative weight (default: equal weights; pass per-VM mean demand
    for tighter balance) matches each shard's capacity share, with every
    shard guaranteed at least one VM.
    """
    n_vms = len(vm_ids)
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if n_vms == 0:
        raise ConfigurationError("cannot partition zero VMs")
    if n_shards > n_vms:
        raise ConfigurationError(
            f"{n_shards} shards for {n_vms} VMs; every shard needs a VM"
        )
    groups = host_groups(datacenter, by)
    if n_shards > len(groups):
        raise ConfigurationError(
            f"{n_shards} shards but only {len(groups)} {by} groups; "
            f"sharding never splits a {by}"
        )
    if vm_weights is not None and len(vm_weights) != n_vms:
        raise ConfigurationError(
            f"{len(vm_weights)} vm_weights for {n_vms} VMs"
        )

    group_capacity = [
        sum(h.cpu_rpe2 for h in hosts) for _, hosts in groups
    ]
    total_capacity = sum(group_capacity)
    if total_capacity <= 0:
        raise ConfigurationError("datacenter has no CPU capacity")

    # Greedy contiguous assignment of groups to shards along cumulative
    # capacity: advance to the next shard once the running total crosses
    # the shard's ideal boundary (while keeping one group for each shard
    # still to come, and never leaving a shard empty).
    shard_of_group: List[int] = []
    shard = 0
    cumulative = 0.0
    assigned_current = 0
    for position in range(len(groups)):
        remaining_groups = len(groups) - position
        later_shards = n_shards - 1 - shard
        if assigned_current > 0 and later_shards > 0 and (
            remaining_groups <= later_shards
            or cumulative >= total_capacity * (shard + 1) / n_shards
        ):
            shard += 1
            assigned_current = 0
        shard_of_group.append(shard)
        cumulative += group_capacity[position]
        assigned_current += 1

    shard_capacity = [0.0] * n_shards
    for position, owner in enumerate(shard_of_group):
        shard_capacity[owner] += group_capacity[position]

    # VM boundaries: cumulative weight split proportionally to shard
    # capacity, then forced strictly increasing so no shard is empty.
    if vm_weights is None:
        weights = np.ones(n_vms)
    else:
        weights = np.asarray(vm_weights, dtype=float)
        if (weights < 0).any():
            raise ConfigurationError("vm_weights must be non-negative")
        if weights.sum() <= 0:
            weights = np.ones(n_vms)
    cumulative_weight = np.cumsum(weights)
    total_weight = float(cumulative_weight[-1])
    capacity_fractions = np.cumsum(shard_capacity) / total_capacity
    boundaries = np.searchsorted(
        cumulative_weight, capacity_fractions[:-1] * total_weight, side="left"
    ) + 1
    bounds = [0]
    for raw in boundaries.tolist():
        lower = bounds[-1] + 1
        upper = n_vms - (n_shards - len(bounds))
        bounds.append(min(max(raw, lower), upper))
    bounds.append(n_vms)

    shards = []
    for index in range(n_shards):
        members = [
            position
            for position, owner in enumerate(shard_of_group)
            if owner == index
        ]
        hosts: List[str] = []
        labels: List[str] = []
        for position in members:
            label, group_hosts = groups[position]
            labels.append(label)
            hosts.extend(h.host_id for h in group_hosts)
        start, stop = bounds[index], bounds[index + 1]
        shards.append(
            ShardSpec(
                index=index,
                host_ids=tuple(hosts),
                groups=tuple(labels),
                vm_ids=tuple(vm_ids[start:stop]),
                vm_start=start,
                vm_stop=stop,
            )
        )
    return tuple(shards)
