"""Hierarchical cross-shard reconciliation.

Per-shard planning leaves each shard with its own partially filled tail
hosts; with ``S`` shards that is up to ``S - 1`` extra active hosts per
interval versus the unsharded plan.  Reconciliation closes that gap on
the *merged* assignment: under-filled hosts are vacated all-or-nothing
into fuller hosts — first within their own rack (cheap, local moves),
then across racks for whatever is left.  Moves use the same fit rule as
the planners (``capacity + 1e-9`` slack via
:class:`~repro.core.incremental.IncrementalPlan`), so a reconciled
placement satisfies exactly the invariants the shard plans did.

The pass is deliberately greedy and bounded: sources are only hosts
below the fill threshold (the shard-boundary tail, a handful per shard),
each vacate is all-or-nothing and atomic
(:meth:`IncrementalPlan.apply_delta` rolls back on any misfit), and the
sweep count is capped.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.exceptions import PlacementError
from repro.sizing.estimator import DemandTable

__all__ = ["reconcile_assignment", "reconcile_plan"]


def _fill_fractions(
    plan: IncrementalPlan, hosts: Sequence[int]
) -> np.ndarray:
    """Worst-resource fill fraction of each host (bound-scaled caps)."""
    caps = plan.caps
    index = np.asarray(hosts, dtype=np.intp)
    body_cpu = np.array([plan.body_cpu[h] for h in hosts])
    body_mem = np.array([plan.body_mem[h] for h in hosts])
    return np.maximum(
        body_cpu / caps.cap_cpu_np[index],
        body_mem / caps.cap_mem_np[index],
    )


def _target_order(
    plan: IncrementalPlan, targets: List[int]
) -> List[int]:
    """Fullest-first: ascending normalized residual, stable on index."""
    caps = plan.caps
    index = np.asarray(targets, dtype=np.intp)
    residual = np.minimum(
        (caps.cap_cpu_np[index] - np.array([plan.body_cpu[h] for h in targets]))
        / caps.cap_cpu_np[index],
        (caps.cap_mem_np[index] - np.array([plan.body_mem[h] for h in targets]))
        / caps.cap_mem_np[index],
    )
    order = np.lexsort((index, residual))
    return [targets[int(i)] for i in order]


def _try_vacate(
    plan: IncrementalPlan, source: int, targets: List[int]
) -> int:
    """All-or-nothing vacate of ``source`` into ``targets``.

    Targets are scanned fullest-first per VM (largest first), counting
    this attempt's own pending moves; the commit is one atomic
    :meth:`~repro.core.incremental.IncrementalPlan.apply_delta`.
    Returns the number of VMs moved (0 when the vacate fails).
    """
    rows = sorted(
        plan.vm_rows_of_host[source], key=plan.cpu.__getitem__, reverse=True
    )
    if not rows:
        return 0
    ordered = _target_order(plan, [t for t in targets if t != source])
    if not ordered:
        return 0
    caps = plan.caps
    pend_cpu: Dict[int, float] = {}
    pend_mem: Dict[int, float] = {}
    pend_net: Dict[int, float] = {}
    pend_dsk: Dict[int, float] = {}
    moves: List[Tuple[int, int]] = []
    for row in rows:
        d_cpu = plan.cpu[row]
        d_mem = plan.mem[row]
        d_net = plan.net[row]
        d_dsk = plan.dsk[row]
        target = -1
        for host in ordered:
            if (
                plan.body_cpu[host] + pend_cpu.get(host, 0.0) + d_cpu
                <= caps.eps_cpu[host]
                and plan.body_mem[host] + pend_mem.get(host, 0.0) + d_mem
                <= caps.eps_mem[host]
                and plan.body_net[host] + pend_net.get(host, 0.0) + d_net
                <= caps.eps_net[host]
                and plan.body_dsk[host] + pend_dsk.get(host, 0.0) + d_dsk
                <= caps.eps_dsk[host]
            ):
                target = host
                break
        if target < 0:
            return 0
        moves.append((row, target))
        pend_cpu[target] = pend_cpu.get(target, 0.0) + d_cpu
        pend_mem[target] = pend_mem.get(target, 0.0) + d_mem
        pend_net[target] = pend_net.get(target, 0.0) + d_net
        pend_dsk[target] = pend_dsk.get(target, 0.0) + d_dsk
    try:
        plan.apply_delta(
            [plan.vm_ids[row] for row, _ in moves],
            [caps.host_ids[target] for _, target in moves],
        )
    except PlacementError:
        # The pending folds approximated the canonical folds the commit
        # re-checks; a last-ulp divergence aborts this vacate cleanly
        # (apply_delta restored every accumulator).
        return 0
    return len(moves)


def reconcile_plan(
    plan: IncrementalPlan,
    group_of_host: Sequence[int],
    *,
    fill_threshold: float = 0.5,
    max_sweeps: int = 2,
) -> int:
    """Hierarchical vacate pass over one interval's merged plan.

    Phase A visits each topology group (rack) and vacates its
    under-filled hosts into other active hosts *of the same group*;
    phase B retries the survivors against every active host.  Sources
    go emptiest-first so the cheapest hosts free up first; both phases
    repeat up to ``max_sweeps`` times or until a sweep changes nothing.
    Returns the total number of VM moves committed.
    """
    if not 0 < fill_threshold <= 1:
        raise PlacementError(
            f"fill_threshold must be in (0, 1], got {fill_threshold}"
        )
    moves = 0
    for _ in range(max_sweeps):
        changed = False
        active = plan.active_hosts()
        if len(active) <= 1:
            break
        fills = _fill_fractions(plan, active)
        under = [
            host
            for host, fill in zip(active, fills.tolist())
            if fill < fill_threshold
        ]
        if not under:
            break
        under.sort(key=lambda h: (len(plan.vm_rows_of_host[h]), plan.body_cpu[h]))

        # Phase A: intra-group (rack-local) vacates.
        active_in_group: Dict[int, List[int]] = {}
        for host in active:
            active_in_group.setdefault(group_of_host[host], []).append(host)
        for source in under:
            peers = active_in_group[group_of_host[source]]
            if len(peers) <= 1:
                continue
            moved = _try_vacate(plan, source, peers)
            if moved:
                moves += moved
                changed = True

        # Phase B: cross-group vacates for the residual under-filled.
        active = plan.active_hosts()
        survivors = [
            host
            for host in under
            if plan.vm_rows_of_host[host]
            and float(_fill_fractions(plan, [host])[0]) < fill_threshold
        ]
        for source in survivors:
            moved = _try_vacate(plan, source, active)
            if moved:
                moves += moved
                changed = True
                active = plan.active_hosts()
        if not changed:
            break
    return moves


def reconcile_assignment(
    assignment: Dict[str, str],
    table: DemandTable,
    column: int,
    caps: HostCapacities,
    group_of_host: Sequence[int],
    *,
    fill_threshold: float = 0.5,
    max_sweeps: int = 2,
) -> Tuple[Dict[str, str], int]:
    """Reconcile one interval's merged assignment; returns (result, moves).

    ``table`` holds the fleet-wide sized demands (one column per
    interval) and must cover every VM in ``assignment``.  A fast
    vectorized prefilter skips intervals with no under-filled active
    host without building any plan state.
    """
    n_hosts = caps.n
    rows_host = np.array(
        [caps.index_of[assignment[vm_id]] for vm_id in table.vm_ids],
        dtype=np.intp,
    )
    cpu_col = table.cpu_rpe2[:, column]
    mem_col = table.memory_gb[:, column]
    body_cpu = np.bincount(rows_host, weights=cpu_col, minlength=n_hosts)
    body_mem = np.bincount(rows_host, weights=mem_col, minlength=n_hosts)
    counts = np.bincount(rows_host, minlength=n_hosts)
    active = counts > 0
    fills = np.maximum(
        body_cpu / caps.cap_cpu_np, body_mem / caps.cap_mem_np
    )
    if active.sum() <= 1 or not (fills[active] < fill_threshold).any():
        return dict(assignment), 0

    plan = IncrementalPlan.from_assignment(
        caps,
        list(table.vm_ids),
        cpu_col.tolist(),
        mem_col.tolist(),
        assignment,
        table.network_mbps[:, column].tolist(),
        table.disk_mbps[:, column].tolist(),
    )
    moves = reconcile_plan(
        plan,
        group_of_host,
        fill_threshold=fill_threshold,
        max_sweeps=max_sweeps,
    )
    return plan.assignment(), moves
