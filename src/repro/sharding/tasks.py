"""Runner fan-out for sharded planning.

One ``shard-plan`` task plans one shard: it resolves only its own VM
rows (for chunked sources, a contiguous row range of a memory-mapped
store — the worker never touches the rest of the fleet's pages), builds
the shard's planning context, and runs the dynamic planner.  Shard tasks
are ordinary :class:`~repro.runner.task.ExperimentTask` specs, so the
process pool, the content-addressed result cache, and the determinism
guarantees of :mod:`repro.runner` all apply unchanged — a warm rerun of
a 100k-server plan is ``n_shards`` cache hits.

:func:`run_sharded_plan` is the orchestrator: partition in the parent,
fan the shard tasks out, then merge + reconcile through
:class:`~repro.sharding.planner.ShardedConsolidation` (whose
``plan_shards`` hook is where the pool plugs in).

Sources are declarative documents so cache keys cover them:

* ``{"kind": "preset", "datacenter": ..., "scale": ..., "days": ...,
  "seed": ...}`` — a calibrated preset resolved through the shared
  ``trace-set`` sub-task,
* ``{"kind": "generated", ...}`` — the same preset parameters, but each
  worker synthesizes *only its own rows* through the array engine's
  ``vm_range`` (bit-identical to the full fleet's rows by construction),
  so per-shard generation cost is proportional to the shard,
* ``{"kind": "chunked", "path": ...}`` — a chunked store directory
  (:mod:`repro.workloads.chunked`); the manifest's content hash is
  pinned into the task params so a rewritten store can never satisfy a
  stale cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.base import PlanningConfig, PlanningContext
from repro.core.dynamic import DynamicConsolidation
from repro.core.planner import split_window
from repro.emulator.schedule import PlacementSchedule
from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.runner.registry import RunnerContext, register_task_kind
from repro.runner.runner import ExperimentRunner, RunReport
from repro.runner.task import ExperimentTask
from repro.runner.tasks import trace_task
from repro.sharding.partition import ShardSpec
from repro.sharding.planner import ShardedConsolidation, ShardedPlanReport
from repro.workloads.chunked import MANIFEST_NAME, open_chunked_trace_set
from repro.workloads.trace import TraceSet

__all__ = [
    "KIND_SHARD_PLAN",
    "ShardedPlanRun",
    "chunked_source",
    "generated_source",
    "preset_source",
    "run_sharded_plan",
    "shard_plan_task",
]

KIND_SHARD_PLAN = "shard-plan"


# ----------------------------------------------------------------------
# Source documents

def preset_source(
    datacenter: str,
    *,
    scale: float,
    days: int = 30,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Source document for a calibrated datacenter preset."""
    return {
        "kind": "preset",
        "datacenter": str(datacenter),
        "scale": float(scale),
        "days": int(days),
        "seed": None if seed is None else int(seed),
    }


def generated_source(
    datacenter: str,
    *,
    scale: float,
    days: int = 30,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Source document generating each shard's rows on demand.

    Same parameters as :func:`preset_source`, different resolution: a
    shard worker calls the array engine with its ``vm_range`` and
    synthesizes only its own rows — bit-identical to the matching rows
    of the full fleet, per-VM streams being keyed by global index.  No
    worker ever generates (or caches) the whole fleet, which is the
    difference that matters at 100k servers.
    """
    return {
        "kind": "generated",
        "datacenter": str(datacenter),
        "scale": float(scale),
        "days": int(days),
        "seed": None if seed is None else int(seed),
    }


def chunked_source(directory: Union[str, Path]) -> Dict[str, object]:
    """Source document for a chunked on-disk store.

    The manifest hash rides in the document: it addresses the store's
    *content* (VM roster, geometry, matrix files are manifest-pinned),
    so shard-task cache entries are invalidated when the store is
    rewritten, and never by a mere path change.
    """
    path = Path(directory)
    manifest = path / MANIFEST_NAME
    if not manifest.is_file():
        raise ConfigurationError(f"no chunked store at {path}")
    return {
        "kind": "chunked",
        "path": str(path),
        "fingerprint": hashlib.sha256(manifest.read_bytes()).hexdigest(),
    }


def _resolve_shard_traces(
    source: Mapping[str, object],
    vm_start: int,
    vm_stop: int,
    ctx: RunnerContext,
) -> TraceSet:
    """A shard's VM rows as a trace set, through the shared cache."""
    kind = source.get("kind")
    if kind == "chunked":
        return open_chunked_trace_set(
            str(source["path"]), start=vm_start, stop=vm_stop
        )
    if kind == "generated":
        from repro.workloads.datacenters import generate_datacenter

        seed = source.get("seed")
        return generate_datacenter(
            str(source["datacenter"]),
            scale=float(source["scale"]),  # type: ignore[arg-type]
            days=int(source["days"]),  # type: ignore[arg-type]
            seed=None if seed is None else int(seed),  # type: ignore[arg-type]
            vm_range=(vm_start, vm_stop),
        )
    if kind == "preset":
        seed = source.get("seed")
        task = trace_task(
            str(source["datacenter"]),
            scale=float(source["scale"]),  # type: ignore[arg-type]
            days=int(source["days"]),  # type: ignore[arg-type]
            seed=None if seed is None else int(seed),  # type: ignore[arg-type]
        )
        full = ctx.run_task(task)
        assert isinstance(full, TraceSet)
        return full.subset(full.vm_ids[vm_start:vm_stop])
    raise ConfigurationError(
        f"unknown trace source kind {kind!r}; expected 'preset', "
        "'generated', or 'chunked'"
    )


# ----------------------------------------------------------------------
# Task factory + executor

def shard_plan_task(
    source: Mapping[str, object],
    shard: ShardSpec,
    *,
    pool_name: str,
    pool_hosts: int,
    hosts_per_rack: int = 14,
    utilization_bound: float = 0.8,
    interval_hours: float = 2.0,
    evaluation_days: int = 14,
) -> ExperimentTask:
    """Task planning one shard of a sharded consolidation run.

    The shard geometry travels as the VM row range plus the explicit
    host-id list — everything a worker needs to rebuild exactly the
    sub-problem :func:`repro.sharding.planner.shard_context` would hand
    an in-process shard.
    """
    return ExperimentTask(
        kind=KIND_SHARD_PLAN,
        params={
            "source": dict(source),
            "vm_start": int(shard.vm_start),
            "vm_stop": int(shard.vm_stop),
            "host_ids": list(shard.host_ids),
            "pool_name": str(pool_name),
            "pool_hosts": int(pool_hosts),
            "hosts_per_rack": int(hosts_per_rack),
            "utilization_bound": float(utilization_bound),
            "interval_hours": float(interval_hours),
            "evaluation_days": int(evaluation_days),
        },
        label=f"shard-plan:{shard.index}[{shard.vm_start}:{shard.vm_stop}]",
    )


@register_task_kind(KIND_SHARD_PLAN)
def _execute_shard_plan(
    params: Mapping[str, object], ctx: RunnerContext
) -> PlacementSchedule:
    traces = _resolve_shard_traces(
        params["source"],  # type: ignore[arg-type]
        int(params["vm_start"]),  # type: ignore[arg-type]
        int(params["vm_stop"]),  # type: ignore[arg-type]
        ctx,
    )
    history, evaluation = split_window(
        traces, int(params["evaluation_days"])  # type: ignore[arg-type]
    )
    pool = build_target_pool(
        str(params["pool_name"]),
        host_count=int(params["pool_hosts"]),  # type: ignore[arg-type]
        hosts_per_rack=int(params["hosts_per_rack"]),  # type: ignore[arg-type]
    )
    datacenter = Datacenter(name=f"{params['pool_name']}-shard")
    for host_id in params["host_ids"]:  # type: ignore[union-attr]
        datacenter.add_host(pool.host(str(host_id)))
    context = PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=datacenter,
        config=PlanningConfig(
            utilization_bound=float(params["utilization_bound"]),  # type: ignore[arg-type]
            interval_hours=float(params["interval_hours"]),  # type: ignore[arg-type]
        ),
    )
    return DynamicConsolidation().plan(context)


# ----------------------------------------------------------------------
# Orchestrator

@dataclass(frozen=True)
class ShardedPlanRun:
    """Everything one :func:`run_sharded_plan` call produced."""

    schedule: PlacementSchedule
    report: ShardedPlanReport
    run_report: RunReport


def run_sharded_plan(
    source: Mapping[str, object],
    *,
    n_shards: int,
    pool_hosts: int,
    hosts_per_rack: int = 14,
    pool_name: str = "pool",
    by: str = "rack",
    utilization_bound: float = 0.8,
    interval_hours: float = 2.0,
    evaluation_days: int = 14,
    reconcile: bool = True,
    fill_threshold: float = 0.5,
    max_reconcile_sweeps: int = 2,
    runner: Optional[ExperimentRunner] = None,
) -> ShardedPlanRun:
    """Plan a fleet sharded across the runner's process pool.

    The parent resolves the fleet once (for chunked sources: memory-
    mapped, nothing resident), partitions it, and submits one
    ``shard-plan`` task per shard; merge and cross-shard reconciliation
    then run in the parent on the pooled results.  Serial runners give
    the same schedule as parallel ones — shard tasks are pure and
    results come back in input order.
    """
    if runner is None:
        runner = ExperimentRunner()
    if source.get("kind") == "chunked":
        traces = open_chunked_trace_set(str(source["path"]))
    else:
        # "preset" and "generated" resolve identically in the parent —
        # the full fleet through the array engine; they differ only in
        # how workers resolve their rows.
        from repro.workloads.datacenters import generate_datacenter

        seed = source.get("seed")
        traces = generate_datacenter(
            str(source["datacenter"]),
            scale=float(source["scale"]),  # type: ignore[arg-type]
            days=int(source["days"]),  # type: ignore[arg-type]
            seed=None if seed is None else int(seed),  # type: ignore[arg-type]
        )
    history, evaluation = split_window(traces, evaluation_days)
    pool = build_target_pool(
        pool_name, host_count=pool_hosts, hosts_per_rack=hosts_per_rack
    )
    context = PlanningContext(
        history=history,
        evaluation=evaluation,
        datacenter=pool,
        config=PlanningConfig(
            utilization_bound=utilization_bound,
            interval_hours=interval_hours,
        ),
    )

    captured: Dict[str, RunReport] = {}

    def fan_out(
        shards: Tuple[ShardSpec, ...], _context: PlanningContext
    ) -> Sequence[PlacementSchedule]:
        tasks = [
            shard_plan_task(
                source,
                shard,
                pool_name=pool_name,
                pool_hosts=pool_hosts,
                hosts_per_rack=hosts_per_rack,
                utilization_bound=utilization_bound,
                interval_hours=interval_hours,
                evaluation_days=evaluation_days,
            )
            for shard in shards
        ]
        report = runner.run(tasks)
        captured["run"] = report
        schedules = []
        for task, result in zip(tasks, report.results):
            if not isinstance(result, PlacementSchedule):
                raise ConfigurationError(
                    f"{task.name} returned {type(result).__name__}, "
                    "expected PlacementSchedule"
                )
            schedules.append(result)
        return schedules

    algorithm = ShardedConsolidation(
        n_shards=n_shards,
        by=by,
        reconcile=reconcile,
        fill_threshold=fill_threshold,
        max_reconcile_sweeps=max_reconcile_sweeps,
        plan_shards=fan_out,
    )
    schedule = algorithm.plan(context)
    assert algorithm.last_report is not None
    return ShardedPlanRun(
        schedule=schedule,
        report=algorithm.last_report,
        run_report=captured["run"],
    )
