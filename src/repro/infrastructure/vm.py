"""Virtual machine abstractions.

In this study every VM corresponds to one source server being virtualized
(the paper analyses non-virtualized Windows servers as consolidation
candidates).  A :class:`VirtualMachine` carries identity and classification
metadata; its time-varying resource demand lives in the workload trace
(:mod:`repro.workloads`), and its scalar *sized* demand for a planning
window is a :class:`VMDemand` produced by :mod:`repro.sizing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ConfigurationError

__all__ = ["WorkloadClass", "VirtualMachine", "VMDemand"]


class WorkloadClass:
    """Coarse application labels used by the paper (Section 3.2).

    The paper classifies every server as hosting either a web-based
    workload or a computational/batch workload.  We keep the same two
    top-level labels and add the sub-classes the generators distinguish.
    """

    WEB = "web"
    BATCH = "batch"

    #: Generator sub-classes (each maps to one of the two paper labels).
    WEB_INTERACTIVE = "web-interactive"
    STEADY_BATCH = "steady-batch"
    SCHEDULED_BATCH = "scheduled-batch"
    IDLE = "idle"

    _TOP_LEVEL = {
        WEB: WEB,
        WEB_INTERACTIVE: WEB,
        BATCH: BATCH,
        STEADY_BATCH: BATCH,
        SCHEDULED_BATCH: BATCH,
        IDLE: BATCH,
    }

    @classmethod
    def top_level(cls, label: str) -> str:
        """Map any class label onto the paper's web/batch dichotomy."""
        try:
            return cls._TOP_LEVEL[label]
        except KeyError:
            raise ConfigurationError(f"unknown workload class {label!r}") from None


@dataclass(frozen=True)
class VirtualMachine:
    """One consolidation candidate (a virtualized source server).

    Attributes
    ----------
    vm_id:
        Unique identifier within a trace set / datacenter.
    memory_config_gb:
        Configured (allocated) memory of the VM.  Actual demand may be
        lower; sizing decides how much to reserve.
    workload_class:
        One of the :class:`WorkloadClass` labels.
    labels:
        Free-form metadata (application name, tier, ...) used by
        constraints and reports.
    """

    vm_id: str
    memory_config_gb: float
    workload_class: str = WorkloadClass.WEB
    labels: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.vm_id:
            raise ConfigurationError("vm_id must be a non-empty string")
        if self.memory_config_gb <= 0:
            raise ConfigurationError(
                f"memory_config_gb must be > 0, got {self.memory_config_gb}"
            )
        WorkloadClass.top_level(self.workload_class)  # validates the label


@dataclass(frozen=True)
class VMDemand:
    """Scalar sized resource demand of one VM for a planning window.

    This is what the Placement step consumes: after Prediction and Size
    Estimation collapse a window of trace points into one number per
    resource (Section 2.1 of the paper).

    Attributes
    ----------
    vm_id:
        The VM this demand belongs to.
    cpu_rpe2:
        Sized CPU demand in RPE2 units (virtualization overhead included
        if the size estimator applied one).
    memory_gb:
        Sized memory demand in GB.
    tail_cpu_rpe2 / tail_memory_gb:
        Optional *tail* demand above the body, used by stochastic (PCP)
        placement: the body is reserved per-VM, the largest tail is
        reserved once per host.  ``0.0`` for non-stochastic sizing.
    network_mbps / disk_mbps:
        Sized link-bandwidth and storage-throughput demands.  Used as
        placement constraints (paper §3.1), not as optimized resources;
        both default to 0 (unconstrained) when no I/O model is
        configured.
    """

    vm_id: str
    cpu_rpe2: float
    memory_gb: float
    tail_cpu_rpe2: float = 0.0
    tail_memory_gb: float = 0.0
    network_mbps: float = 0.0
    disk_mbps: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_rpe2 < 0 or self.memory_gb < 0:
            raise ConfigurationError(
                f"{self.vm_id}: sized demand must be non-negative "
                f"(cpu={self.cpu_rpe2}, mem={self.memory_gb})"
            )
        if self.tail_cpu_rpe2 < 0 or self.tail_memory_gb < 0:
            raise ConfigurationError(
                f"{self.vm_id}: tail demand must be non-negative"
            )
        if self.network_mbps < 0 or self.disk_mbps < 0:
            raise ConfigurationError(
                f"{self.vm_id}: I/O demand must be non-negative"
            )

    @property
    def total_cpu_rpe2(self) -> float:
        """Body plus tail CPU demand (worst-case reservation)."""
        return self.cpu_rpe2 + self.tail_cpu_rpe2

    @property
    def total_memory_gb(self) -> float:
        """Body plus tail memory demand (worst-case reservation)."""
        return self.memory_gb + self.tail_memory_gb
