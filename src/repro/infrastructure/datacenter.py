"""Datacenter topology: a pool of physical hosts organised into racks.

The consolidation target in the paper is a farm of identical
virtualization blades (HS23 Elite).  :func:`build_target_pool` constructs
such a farm with rack/subnet topology so that topology constraints have
something to bind to.  :class:`Datacenter` is a thin indexed container
over :class:`~repro.infrastructure.server.PhysicalServer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.metrics.catalog import HS23_ELITE, ServerModel

__all__ = ["Datacenter", "build_target_pool"]


@dataclass
class Datacenter:
    """An indexed collection of physical hosts.

    Hosts are kept in insertion order (placement heuristics rely on a
    stable iteration order for reproducibility) and indexed by
    ``host_id`` for O(1) lookup.
    """

    name: str
    _hosts: List[PhysicalServer] = field(default_factory=list)
    _by_id: Dict[str, PhysicalServer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("datacenter name must be non-empty")
        # Allow construction with an initial host list.
        hosts, self._hosts = list(self._hosts), []
        self._by_id = {}
        for host in hosts:
            self.add_host(host)

    def add_host(self, host: PhysicalServer) -> None:
        """Add a host; host_ids must be unique within the datacenter."""
        if host.host_id in self._by_id:
            raise ConfigurationError(
                f"duplicate host_id {host.host_id!r} in datacenter {self.name!r}"
            )
        self._hosts.append(host)
        self._by_id[host.host_id] = host

    @property
    def hosts(self) -> Tuple[PhysicalServer, ...]:
        return tuple(self._hosts)

    def host(self, host_id: str) -> PhysicalServer:
        try:
            return self._by_id[host_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown host {host_id!r} in datacenter {self.name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[PhysicalServer]:
        return iter(self._hosts)

    def __contains__(self, host_id: object) -> bool:
        return host_id in self._by_id

    def racks(self) -> Tuple[str, ...]:
        """Distinct rack labels, in first-seen order."""
        seen: Dict[str, None] = {}
        for host in self._hosts:
            if host.rack is not None:
                seen.setdefault(host.rack, None)
        return tuple(seen)

    def hosts_in_rack(self, rack: str) -> Tuple[PhysicalServer, ...]:
        return tuple(h for h in self._hosts if h.rack == rack)

    def total_cpu_rpe2(self) -> float:
        return sum(h.cpu_rpe2 for h in self._hosts)

    def total_memory_gb(self) -> float:
        return sum(h.memory_gb for h in self._hosts)


def build_target_pool(
    name: str,
    host_count: int,
    *,
    model: ServerModel = HS23_ELITE,
    hosts_per_rack: int = 14,
    subnets: Optional[Sequence[str]] = None,
) -> Datacenter:
    """Build a homogeneous consolidation target pool.

    Parameters
    ----------
    name:
        Datacenter name (used in host ids: ``{name}-h0001``).
    host_count:
        Number of identical blades to provision.  Consolidation planning
        typically over-provisions this pool and reports how many hosts a
        plan actually uses.
    model:
        Hardware model for every blade (default: the HS23 Elite anchor).
    hosts_per_rack:
        Blades per rack enclosure; 14 matches a BladeCenter H chassis.
    subnets:
        Optional subnet labels assigned round-robin per rack.  Defaults to
        one subnet per rack.
    """
    if host_count <= 0:
        raise ConfigurationError(f"host_count must be > 0, got {host_count}")
    if hosts_per_rack <= 0:
        raise ConfigurationError(
            f"hosts_per_rack must be > 0, got {hosts_per_rack}"
        )
    spec = ServerSpec.from_model(model)
    dc = Datacenter(name=name)
    for index in range(host_count):
        rack_index = index // hosts_per_rack
        rack = f"{name}-rack{rack_index:03d}"
        if subnets:
            subnet = subnets[rack_index % len(subnets)]
        else:
            subnet = f"{name}-net{rack_index:03d}"
        dc.add_host(
            PhysicalServer(
                host_id=f"{name}-h{index:04d}",
                spec=spec,
                rack=rack,
                subnet=subnet,
                model=model,
            )
        )
    return dc
