"""Datacenter infrastructure: servers, VMs, topology, power and cost models."""

from repro.infrastructure.costs import PowerCostModel, SpaceCostModel, normalize
from repro.infrastructure.datacenter import Datacenter, build_target_pool
from repro.infrastructure.power import LinearPowerModel
from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.infrastructure.vm import VirtualMachine, VMDemand, WorkloadClass

__all__ = [
    "Datacenter",
    "LinearPowerModel",
    "PhysicalServer",
    "PowerCostModel",
    "ServerSpec",
    "SpaceCostModel",
    "VMDemand",
    "VirtualMachine",
    "WorkloadClass",
    "build_target_pool",
    "normalize",
]
