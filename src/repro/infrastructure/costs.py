"""Facilities cost models.

Section 5.3 of the paper defines two infrastructure cost parameters:

* **Space and hardware** — "derived based on the number of servers and
  their specifications, the size of the racks and their occupancy, and
  the space cost of raised floor for the datacenter".
* **Power cost** — energy drawn by operational servers, priced per kWh.

Absolute prices are confidential in the paper; all reported results are
*normalized to the vanilla semi-static plan*, which this module supports
via :func:`normalize`.  Defaults below are publicly-typical 2012 values;
only ratios matter for reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ConfigurationError

__all__ = ["SpaceCostModel", "PowerCostModel", "normalize"]


@dataclass(frozen=True)
class SpaceCostModel:
    """Space + hardware cost as a function of provisioned server count.

    Cost components per the paper:

    * server hardware: ``server_cost`` each,
    * rack enclosures: ``ceil(servers / hosts_per_rack) * rack_cost``,
    * raised floor: ``racks * floor_cost_per_rack``.
    """

    server_cost: float = 8000.0
    rack_cost: float = 4000.0
    floor_cost_per_rack: float = 3000.0
    hosts_per_rack: int = 14

    def __post_init__(self) -> None:
        if self.hosts_per_rack <= 0:
            raise ConfigurationError(
                f"hosts_per_rack must be > 0, got {self.hosts_per_rack}"
            )
        for field_name in ("server_cost", "rack_cost", "floor_cost_per_rack"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    def racks_needed(self, server_count: int) -> int:
        if server_count < 0:
            raise ConfigurationError(
                f"server_count must be >= 0, got {server_count}"
            )
        return math.ceil(server_count / self.hosts_per_rack)

    def cost(self, server_count: int) -> float:
        """Total space + hardware cost for ``server_count`` servers."""
        racks = self.racks_needed(server_count)
        return (
            server_count * self.server_cost
            + racks * (self.rack_cost + self.floor_cost_per_rack)
        )


@dataclass(frozen=True)
class PowerCostModel:
    """Energy price; converts kWh into cost.

    ``pue`` (power usage effectiveness) multiplies IT energy to account
    for cooling and distribution overhead, as facilities bills do.
    """

    price_per_kwh: float = 0.10
    pue: float = 1.8

    def __post_init__(self) -> None:
        if self.price_per_kwh < 0:
            raise ConfigurationError(
                f"price_per_kwh must be >= 0, got {self.price_per_kwh}"
            )
        if self.pue < 1.0:
            raise ConfigurationError(f"pue must be >= 1.0, got {self.pue}")

    def cost(self, it_energy_kwh: float) -> float:
        if it_energy_kwh < 0:
            raise ConfigurationError(
                f"it_energy_kwh must be >= 0, got {it_energy_kwh}"
            )
        return it_energy_kwh * self.pue * self.price_per_kwh


def normalize(
    costs: Mapping[str, float], baseline_key: str
) -> "dict[str, float]":
    """Normalize a ``{scheme: cost}`` mapping to one scheme's cost.

    The paper reports all Fig. 7 costs "normalized with respect to the
    cost of the Vanilla semi-static approach".

    Raises
    ------
    ConfigurationError
        If the baseline key is missing or its cost is zero (nothing to
        normalize against).
    """
    if baseline_key not in costs:
        raise ConfigurationError(
            f"baseline {baseline_key!r} not in costs {sorted(costs)}"
        )
    base = costs[baseline_key]
    if base == 0:
        raise ConfigurationError(
            f"baseline {baseline_key!r} has zero cost; cannot normalize"
        )
    return {key: value / base for key, value in costs.items()}
