"""Server power model.

The paper computes power cost "based on the number of operational servers
and their utilization in a given consolidation interval" (Section 5.3).
We use the standard linear model from the power-management literature the
paper builds on (pMapper, BrownMap):

    P(u) = P_idle + (P_peak - P_idle) * u        for an active server
    P    = 0                                     for a powered-off server

Idle power dominating the curve is exactly what makes switching servers
off (dynamic consolidation's lever) valuable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.metrics.catalog import ServerModel

__all__ = ["LinearPowerModel"]


@dataclass(frozen=True)
class LinearPowerModel:
    """Linear-in-utilization power model for one server model."""

    idle_watts: float
    peak_watts: float

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ConfigurationError(
                f"idle_watts must be >= 0, got {self.idle_watts}"
            )
        if self.peak_watts < self.idle_watts:
            raise ConfigurationError(
                f"peak_watts ({self.peak_watts}) must be >= idle_watts "
                f"({self.idle_watts})"
            )

    @classmethod
    def from_model(cls, model: ServerModel) -> "LinearPowerModel":
        return cls(idle_watts=model.idle_watts, peak_watts=model.peak_watts)

    def power_watts(self, utilization: float, *, active: bool = True) -> float:
        """Power draw at a given CPU utilization fraction.

        Utilization is clipped to [0, 1]: demand beyond capacity cannot
        draw more power than the fully-loaded server.
        """
        if not active:
            return 0.0
        u = min(max(utilization, 0.0), 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def power_watts_array(self, utilizations: "np.ndarray") -> "np.ndarray":
        """Vectorized power for an array of *active* server utilizations."""
        u = np.clip(np.asarray(utilizations, dtype=float), 0.0, 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def energy_kwh(
        self, utilizations: Iterable[float], interval_hours: float
    ) -> float:
        """Total energy over a sequence of equal-length active intervals."""
        if interval_hours <= 0:
            raise ConfigurationError(
                f"interval_hours must be > 0, got {interval_hours}"
            )
        total_watts = float(
            np.sum(self.power_watts_array(np.fromiter(utilizations, dtype=float)))
        )
        return total_watts * interval_hours / 1000.0
