"""Physical server abstractions.

A :class:`ServerSpec` captures the two resources that VM consolidation
plans over in the paper (CPU in RPE2 units and memory in GB — enterprise
datacenters use SAN storage, so disk is not a server-owned resource).  A
:class:`PhysicalServer` is a spec plus identity and datacenter topology
placement (rack, subnet), which the constraint framework uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.metrics.catalog import ServerModel

__all__ = ["ServerSpec", "PhysicalServer"]


@dataclass(frozen=True)
class ServerSpec:
    """Capacity of one physical server.

    Attributes
    ----------
    cpu_rpe2:
        Compute capacity in RPE2 units.
    memory_gb:
        Installed RAM in GB.
    network_mbps / disk_mbps:
        Usable link and storage throughput.  The paper's planner "uses
        network and disk throughput as constraints to identify hosts
        with sufficient link bandwidth" (§3.1); these are those
        capacities.  Defaults model a 10 GbE converged fabric and an
        8 Gb FC SAN HBA — the virtualization-host I/O of the HS23 era.
    model_name:
        Catalog key this spec was derived from (informational).
    """

    cpu_rpe2: float
    memory_gb: float
    network_mbps: float = 10_000.0
    disk_mbps: float = 4_000.0
    model_name: str = "custom"

    def __post_init__(self) -> None:
        if self.cpu_rpe2 <= 0:
            raise ConfigurationError(f"cpu_rpe2 must be > 0, got {self.cpu_rpe2}")
        if self.memory_gb <= 0:
            raise ConfigurationError(f"memory_gb must be > 0, got {self.memory_gb}")
        if self.network_mbps <= 0:
            raise ConfigurationError(
                f"network_mbps must be > 0, got {self.network_mbps}"
            )
        if self.disk_mbps <= 0:
            raise ConfigurationError(
                f"disk_mbps must be > 0, got {self.disk_mbps}"
            )

    @classmethod
    def from_model(cls, model: ServerModel) -> "ServerSpec":
        """Build a spec from a catalog :class:`ServerModel`."""
        return cls(
            cpu_rpe2=model.cpu_rpe2,
            memory_gb=model.memory_gb,
            model_name=model.name,
        )

    @property
    def cpu_memory_ratio(self) -> float:
        """RPE2 per GB of RAM (Fig. 6 comparison metric)."""
        return self.cpu_rpe2 / self.memory_gb

    def scaled(self, factor: float) -> "ServerSpec":
        """Return a spec with all resources scaled by ``factor``.

        Used to express utilization bounds: a host packed to an 80% bound
        behaves like a host with ``spec.scaled(0.8)`` capacity.  Network
        scales too — live migration is itself a network consumer, so the
        reservation covers the link as well.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be > 0, got {factor}")
        return ServerSpec(
            cpu_rpe2=self.cpu_rpe2 * factor,
            memory_gb=self.memory_gb * factor,
            network_mbps=self.network_mbps * factor,
            disk_mbps=self.disk_mbps * factor,
            model_name=self.model_name,
        )


@dataclass(frozen=True)
class PhysicalServer:
    """One physical host in a datacenter.

    Attributes
    ----------
    host_id:
        Unique identifier within the datacenter.
    spec:
        Hardware capacity.
    rack / subnet:
        Topology labels used by affinity constraints.  ``None`` means
        "unspecified"; topology constraints on such hosts fail closed.
    model:
        Optional full catalog model (power curve lives here).
    """

    host_id: str
    spec: ServerSpec
    rack: Optional[str] = None
    subnet: Optional[str] = None
    model: Optional[ServerModel] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.host_id:
            raise ConfigurationError("host_id must be a non-empty string")

    @property
    def cpu_rpe2(self) -> float:
        return self.spec.cpu_rpe2

    @property
    def memory_gb(self) -> float:
        return self.spec.memory_gb
