"""Host-level inclusion/exclusion constraints.

The paper's examples: "affinity between two virtual machines, affinity
between a VM and a host ... constraints that place two VMs on the same
host ... or pin a VM to a specific host".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.constraints.base import Constraint, PlacementContext
from repro.exceptions import ConfigurationError
from repro.infrastructure.server import PhysicalServer

__all__ = ["Colocate", "AntiColocate", "PinToHost", "ExcludeHosts"]


class Colocate(Constraint):
    """All listed VMs must land on the same host.

    Greedy semantics: the first member placed fixes the host for the
    rest.  An unplaced partner never blocks a placement.
    """

    def __init__(self, *vm_ids: str) -> None:
        ids = self._require_vms(*vm_ids)
        if len(ids) < 2:
            raise ConfigurationError("Colocate needs at least two distinct VMs")
        self._vm_ids = ids

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        for partner in self._vm_ids:
            if partner == vm_id:
                continue
            partner_host = context.host_of(partner)
            if partner_host is not None and partner_host != host.host_id:
                return False
        return True

    def describe(self) -> str:
        return f"colocate({', '.join(sorted(self._vm_ids))})"


class AntiColocate(Constraint):
    """No two of the listed VMs may share a host.

    The classic HA rule: replicas of a service must not die together.
    """

    def __init__(self, *vm_ids: str) -> None:
        ids = self._require_vms(*vm_ids)
        if len(ids) < 2:
            raise ConfigurationError(
                "AntiColocate needs at least two distinct VMs"
            )
        self._vm_ids = ids

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        for partner in self._vm_ids:
            if partner == vm_id:
                continue
            if context.host_of(partner) == host.host_id:
                return False
        return True

    def describe(self) -> str:
        return f"anti-colocate({', '.join(sorted(self._vm_ids))})"


class PinToHost(Constraint):
    """The VM may only run on one specific host."""

    def __init__(self, vm_id: str, host_id: str) -> None:
        self._vm_ids = self._require_vms(vm_id)
        if not host_id:
            raise ConfigurationError("PinToHost needs a non-empty host_id")
        self.host_id = host_id

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        return host.host_id == self.host_id

    def describe(self) -> str:
        (vm_id,) = self._vm_ids
        return f"pin({vm_id} -> {self.host_id})"


class ExcludeHosts(Constraint):
    """The VM must avoid the listed hosts (license or compliance zones)."""

    def __init__(self, vm_id: str, host_ids: Iterable[str]) -> None:
        self._vm_ids = self._require_vms(vm_id)
        excluded = frozenset(host_ids)
        if not excluded:
            raise ConfigurationError("ExcludeHosts needs at least one host")
        self.host_ids = excluded

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        return host.host_id not in self.host_ids

    def describe(self) -> str:
        (vm_id,) = self._vm_ids
        return f"exclude({vm_id} from {', '.join(sorted(self.host_ids))})"
