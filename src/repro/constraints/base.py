"""Deployment constraint framework (paper §2.2.4).

"Enterprise applications often have deployment constraints, which
consolidation algorithms need to take into account.  Constraints are
broadly classified into inclusion and exclusion constraints."

A :class:`Constraint` answers one question during placement: *may this VM
go on this host, given what has been placed so far?*  Constraints are
evaluated greedily (placement algorithms consult them per candidate
host) and re-validated on the finished placement, so an ordering that
painted itself into a corner is reported rather than silently violated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Mapping

from repro.exceptions import ConfigurationError
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer

__all__ = ["Constraint", "PlacementContext"]


class PlacementContext:
    """What a constraint may inspect while placement is in progress.

    Attributes
    ----------
    assignment:
        VM → host_id for the VMs placed so far (read-only view).
    datacenter:
        Host topology (for rack/subnet constraints).
    """

    __slots__ = ("assignment", "datacenter")

    def __init__(
        self, assignment: Mapping[str, str], datacenter: Datacenter
    ) -> None:
        self.assignment = assignment
        self.datacenter = datacenter

    def host_of(self, vm_id: str) -> "str | None":
        """Host the VM is currently assigned to, or None if unplaced."""
        return self.assignment.get(vm_id)


class Constraint(ABC):
    """One deployment rule over a fixed set of VMs."""

    @property
    @abstractmethod
    def vm_ids(self) -> FrozenSet[str]:
        """The VMs this constraint mentions (used for indexing)."""

    @abstractmethod
    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        """May ``vm_id`` be placed on ``host`` in the current context?

        Must be *monotone with respect to information*: a constraint may
        allow a placement that later additions make violating (the final
        validation pass catches that), but it must never forbid a
        placement that is definitely legal.
        """

    @abstractmethod
    def describe(self) -> str:
        """Human-readable form for violation reports."""

    def applies_to(self, vm_id: str) -> bool:
        return vm_id in self.vm_ids

    @staticmethod
    def _require_vms(*vm_ids: str) -> FrozenSet[str]:
        """Validate and freeze a VM id list (shared by subclasses)."""
        if not vm_ids:
            raise ConfigurationError("constraint needs at least one VM id")
        for vm_id in vm_ids:
            if not vm_id:
                raise ConfigurationError("constraint VM ids must be non-empty")
        return frozenset(vm_ids)
