"""Constraint sets: indexing, feasibility checks, final validation."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.constraints.base import Constraint, PlacementContext
from repro.exceptions import ConstraintViolation
from repro.infrastructure.datacenter import Datacenter
from repro.infrastructure.server import PhysicalServer

__all__ = ["ConstraintSet"]


class ConstraintSet:
    """An indexed collection of constraints.

    Placement algorithms call :meth:`feasible` per (VM, candidate host);
    the index keeps that O(constraints touching this VM) instead of
    O(all constraints).  After placement, :meth:`validate` re-checks
    every constraint against the finished assignment and raises
    :class:`~repro.exceptions.ConstraintViolation` with the full list of
    violations — greedy checks are necessary but not sufficient for
    group constraints like Colocate.
    """

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints: List[Constraint] = []
        self._by_vm: Dict[str, List[Constraint]] = defaultdict(list)
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: Constraint) -> None:
        self._constraints.append(constraint)
        for vm_id in constraint.vm_ids:
            self._by_vm[vm_id].append(constraint)

    def __len__(self) -> int:
        return len(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    def constraints_for(self, vm_id: str) -> Tuple[Constraint, ...]:
        return tuple(self._by_vm.get(vm_id, ()))

    def feasible(
        self,
        vm_id: str,
        host: PhysicalServer,
        assignment: Mapping[str, str],
        datacenter: Datacenter,
    ) -> bool:
        """True if no constraint touching ``vm_id`` forbids ``host``."""
        relevant = self._by_vm.get(vm_id)
        if not relevant:
            return True
        context = PlacementContext(assignment, datacenter)
        return all(c.allows(vm_id, host, context) for c in relevant)

    def violations(
        self, assignment: Mapping[str, str], datacenter: Datacenter
    ) -> List[str]:
        """Descriptions of every constraint the assignment violates.

        Constraints mentioning unplaced VMs are skipped — an unplaced VM
        is a placement failure, not a constraint violation.
        """
        context = PlacementContext(assignment, datacenter)
        found = []
        for constraint in self._constraints:
            placed = [v for v in constraint.vm_ids if v in assignment]
            broken = any(
                not constraint.allows(
                    vm_id, datacenter.host(assignment[vm_id]), context
                )
                for vm_id in placed
            )
            if broken:
                found.append(constraint.describe())
        return found

    def validate(
        self, assignment: Mapping[str, str], datacenter: Datacenter
    ) -> None:
        """Raise :class:`ConstraintViolation` if any constraint is broken."""
        found = self.violations(assignment, datacenter)
        if found:
            raise ConstraintViolation(
                f"{len(found)} constraint(s) violated: " + "; ".join(found)
            )
