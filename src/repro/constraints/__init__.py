"""Real-world deployment constraints for consolidation placement."""

from repro.constraints.affinity import (
    AntiColocate,
    Colocate,
    ExcludeHosts,
    PinToHost,
)
from repro.constraints.base import Constraint, PlacementContext
from repro.constraints.manager import ConstraintSet
from repro.constraints.topology import (
    PinToRack,
    PinToSubnet,
    SameRack,
    SameSubnet,
)

__all__ = [
    "AntiColocate",
    "Colocate",
    "Constraint",
    "ConstraintSet",
    "ExcludeHosts",
    "PinToHost",
    "PinToRack",
    "PinToSubnet",
    "PlacementContext",
    "SameRack",
    "SameSubnet",
]
