"""Rack / subnet topology constraints.

The paper's inclusion constraints extend beyond hosts: "affinity between
a VM and a subnet ... place two VMs on the same host/subnet/rack or pin a
VM to a specific host/subnet/rack".  Hosts without the relevant topology
label fail closed: a constraint about racks cannot be satisfied by a
host whose rack is unknown.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional

from repro.constraints.base import Constraint, PlacementContext
from repro.exceptions import ConfigurationError
from repro.infrastructure.server import PhysicalServer

__all__ = ["SameRack", "SameSubnet", "PinToRack", "PinToSubnet"]


def _rack_of(host: PhysicalServer) -> Optional[str]:
    return host.rack


def _subnet_of(host: PhysicalServer) -> Optional[str]:
    return host.subnet


class _SameZone(Constraint):
    """Shared implementation: all VMs in the same topology zone."""

    _zone_of: Callable[[PhysicalServer], Optional[str]]
    _zone_name: str

    def __init__(self, *vm_ids: str) -> None:
        ids = self._require_vms(*vm_ids)
        if len(ids) < 2:
            raise ConfigurationError(
                f"{type(self).__name__} needs at least two distinct VMs"
            )
        self._vm_ids = ids

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        zone = type(self)._zone_of(host)
        if zone is None:
            return False  # unknown topology fails closed
        for partner in self._vm_ids:
            if partner == vm_id:
                continue
            partner_host_id = context.host_of(partner)
            if partner_host_id is None:
                continue
            partner_host = context.datacenter.host(partner_host_id)
            if type(self)._zone_of(partner_host) != zone:
                return False
        return True

    def describe(self) -> str:
        return (
            f"same-{self._zone_name}({', '.join(sorted(self._vm_ids))})"
        )


class SameRack(_SameZone):
    """All listed VMs must share a rack (low-latency east-west traffic)."""

    _zone_of = staticmethod(_rack_of)
    _zone_name = "rack"


class SameSubnet(_SameZone):
    """All listed VMs must share a subnet (no re-IP on migration)."""

    _zone_of = staticmethod(_subnet_of)
    _zone_name = "subnet"


class _PinToZone(Constraint):
    """Shared implementation: one VM pinned to a topology zone."""

    _zone_of: Callable[[PhysicalServer], Optional[str]]
    _zone_name: str

    def __init__(self, vm_id: str, zone: str) -> None:
        self._vm_ids = self._require_vms(vm_id)
        if not zone:
            raise ConfigurationError(
                f"{type(self).__name__} needs a non-empty zone label"
            )
        self.zone = zone

    @property
    def vm_ids(self) -> FrozenSet[str]:
        return self._vm_ids

    def allows(
        self, vm_id: str, host: PhysicalServer, context: PlacementContext
    ) -> bool:
        return type(self)._zone_of(host) == self.zone

    def describe(self) -> str:
        (vm_id,) = self._vm_ids
        return f"pin-{self._zone_name}({vm_id} -> {self.zone})"


class PinToRack(_PinToZone):
    """The VM may only run in one rack."""

    _zone_of = staticmethod(_rack_of)
    _zone_name = "rack"


class PinToSubnet(_PinToZone):
    """The VM may only run in one subnet."""

    _zone_of = staticmethod(_subnet_of)
    _zone_name = "subnet"
