"""Trace analysis: burstiness, CDFs, resource ratios, correlation."""

from repro.analysis.candidates import (
    CandidateScore,
    rank_candidates,
    score_candidate,
)
from repro.analysis.seasonality import (
    DIURNAL_LAG,
    WEEKLY_LAG,
    SeasonalityProfile,
    periodic_strength,
    seasonality_profile,
)
from repro.analysis.burstiness import (
    DEFAULT_INTERVALS_HOURS,
    BurstinessReport,
    analyze_burstiness,
    server_cov,
    server_peak_to_average,
)
from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.correlation import (
    PeakClusters,
    cluster_by_peaks,
    correlation_matrix,
    correlation_stability,
    envelope_similarity,
    peak_envelope,
)
from repro.analysis.resource_ratio import (
    REFERENCE_RATIO,
    ResourceRatioReport,
    analyze_resource_ratio,
    resource_ratio_series,
)
from repro.analysis.statistics import (
    SIZING_MAX,
    SIZING_MEAN,
    coefficient_of_variation,
    interval_demand,
    peak_to_average,
)

__all__ = [
    "CandidateScore",
    "DEFAULT_INTERVALS_HOURS",
    "DIURNAL_LAG",
    "SeasonalityProfile",
    "WEEKLY_LAG",
    "periodic_strength",
    "rank_candidates",
    "score_candidate",
    "seasonality_profile",
    "BurstinessReport",
    "EmpiricalCDF",
    "PeakClusters",
    "REFERENCE_RATIO",
    "ResourceRatioReport",
    "SIZING_MAX",
    "SIZING_MEAN",
    "analyze_burstiness",
    "analyze_resource_ratio",
    "cluster_by_peaks",
    "coefficient_of_variation",
    "correlation_matrix",
    "correlation_stability",
    "envelope_similarity",
    "interval_demand",
    "peak_envelope",
    "peak_to_average",
    "resource_ratio_series",
    "server_cov",
    "server_peak_to_average",
]
