"""Workload correlation and peak-clustering analysis.

Stochastic semi-static consolidation (the PCP algorithm of Verma et al.,
USENIX ATC 2009, which the paper uses as its *Stochastic* representative)
rests on two workload properties the paper re-confirms:

* pairwise correlation between workloads is **stable over time**, and
* workloads can be grouped into *peak clusters* — sets of servers whose
  demand peaks co-occur.  Placing members of the same cluster on
  different hosts lets each host be sized near the sum of *bodies*
  (90th percentiles) instead of the sum of peaks.

This module provides the correlation matrix, peak-envelope extraction,
and a greedy envelope-similarity clustering used by
:mod:`repro.core.stochastic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.workloads.trace import TraceSet

__all__ = [
    "correlation_matrix",
    "correlation_stability",
    "peak_envelope",
    "envelope_similarity",
    "PeakClusters",
    "cluster_by_peaks",
]


def correlation_matrix(demand_matrix: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlation between server demand rows.

    Constant rows (zero variance) get correlation 0 with everything —
    a flat server neither reinforces nor offsets anyone's peaks.
    """
    matrix = np.asarray(demand_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise TraceError(
            "correlation_matrix expects (n_servers, n_points>=2) input"
        )
    stds = matrix.std(axis=1)
    safe = np.where(stds > 0, stds, 1.0)
    centered = matrix - matrix.mean(axis=1, keepdims=True)
    normalized = centered / safe[:, None]
    corr = normalized @ normalized.T / matrix.shape[1]
    corr[stds == 0, :] = 0.0
    corr[:, stds == 0] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def correlation_stability(trace_set: TraceSet) -> float:
    """How stable pairwise correlations are across the trace window.

    Observation 5's stated premise: "correlation between workloads is
    stable over time" — the property that lets a PCP plan computed on
    one window keep holding on the next.  Measured as the Pearson
    correlation between the upper-triangle entries of the pairwise
    correlation matrices of the window's two halves: 1.0 means the
    correlation structure carried over perfectly.
    """
    if len(trace_set) < 3:
        raise TraceError(
            "correlation_stability needs at least 3 servers"
        )
    n_points = trace_set.n_points
    if n_points < 4:
        raise TraceError("correlation_stability needs at least 4 samples")
    half = n_points // 2
    matrix = trace_set.cpu_rpe2_matrix()
    first = correlation_matrix(matrix[:, :half])
    second = correlation_matrix(matrix[:, half:2 * half])
    index = np.triu_indices_from(first, k=1)
    a, b = first[index], second[index]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def peak_envelope(values: np.ndarray, body_quantile: float = 0.9) -> np.ndarray:
    """Boolean mask of the samples above the body quantile.

    The envelope marks *when* a server peaks; two servers whose envelopes
    overlap heavily peak together and belong in the same peak cluster.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise TraceError("peak_envelope expects a non-empty 1-D series")
    if not 0 < body_quantile < 1:
        raise TraceError(
            f"body_quantile must be in (0, 1), got {body_quantile}"
        )
    threshold = np.quantile(values, body_quantile)
    if threshold <= values.min():
        # Flat series: nothing is a peak.
        return np.zeros(values.size, dtype=bool)
    return values > threshold


def envelope_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two peak envelopes (1.0 = identical peaks)."""
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape != b.shape:
        raise TraceError(
            f"envelope shapes differ: {a.shape} vs {b.shape}"
        )
    union = np.logical_or(a, b).sum()
    if union == 0:
        return 0.0
    return float(np.logical_and(a, b).sum() / union)


@dataclass(frozen=True)
class PeakClusters:
    """Result of peak clustering: cluster index per VM."""

    vm_ids: Tuple[str, ...]
    cluster_of: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.vm_ids) != len(self.cluster_of):
            raise TraceError("vm_ids and cluster_of must have equal length")

    @property
    def n_clusters(self) -> int:
        return max(self.cluster_of) + 1 if self.cluster_of else 0

    def members(self, cluster: int) -> Tuple[str, ...]:
        return tuple(
            vm
            for vm, c in zip(self.vm_ids, self.cluster_of)
            if c == cluster
        )

    def cluster_for(self, vm_id: str) -> int:
        try:
            return self.cluster_of[self.vm_ids.index(vm_id)]
        except ValueError:
            raise TraceError(f"unknown vm_id {vm_id!r} in clusters") from None


def cluster_by_peaks(
    trace_set: TraceSet,
    *,
    body_quantile: float = 0.9,
    similarity_threshold: float = 0.25,
    engine: str = "auto",
) -> PeakClusters:
    """Greedy peak clustering on CPU demand envelopes.

    Servers are visited in descending demand order; each joins the first
    existing cluster whose *representative* (first member) envelope is at
    least ``similarity_threshold`` similar, otherwise it founds a new
    cluster.  Greedy single-pass clustering is what keeps PCP linear in
    the number of servers — the property that made it deployable on
    thousand-server engagements.

    ``engine="matrix"`` (what ``"auto"`` picks) evaluates each server's
    Jaccard similarity against *all* representatives in one masked
    count; the intersection/union counts are integers, so the decisions
    are bit-identical to the scalar :func:`envelope_similarity` scan
    (``"scalar"``).
    """
    if len(trace_set) == 0:
        raise TraceError(f"trace set {trace_set.name!r} is empty")
    if not 0 < similarity_threshold <= 1:
        raise TraceError(
            f"similarity_threshold must be in (0, 1], got "
            f"{similarity_threshold}"
        )
    if engine not in ("auto", "matrix", "scalar"):
        raise TraceError(
            f"unknown engine {engine!r}; expected 'auto', 'matrix' or "
            "'scalar'"
        )
    envelopes = {
        trace.vm_id: peak_envelope(trace.cpu_rpe2, body_quantile)
        for trace in trace_set
    }
    order = sorted(
        trace_set,
        key=lambda trace: float(trace.cpu_rpe2.max()),
        reverse=True,
    )
    assignment: dict = {}
    if engine == "scalar":
        representative_envelopes: List[np.ndarray] = []
        for trace in order:
            envelope = envelopes[trace.vm_id]
            chosen = None
            for index, representative in enumerate(representative_envelopes):
                if envelope_similarity(envelope, representative) >= (
                    similarity_threshold
                ):
                    chosen = index
                    break
            if chosen is None:
                chosen = len(representative_envelopes)
                representative_envelopes.append(envelope)
            assignment[trace.vm_id] = chosen
    else:
        n_points = next(iter(envelopes.values())).size
        representatives = np.empty((len(order), n_points), dtype=bool)
        n_reps = 0
        for trace in order:
            envelope = envelopes[trace.vm_id]
            chosen = None
            if n_reps:
                block = representatives[:n_reps]
                intersection = np.count_nonzero(block & envelope, axis=1)
                union = np.count_nonzero(block | envelope, axis=1)
                # Same integer counts as envelope_similarity, so the
                # quotient (0.0 on empty union) matches it bit for bit.
                similarity = np.where(
                    union == 0, 0.0, intersection / np.maximum(union, 1)
                )
                hits = similarity >= similarity_threshold
                first = int(np.argmax(hits))
                if hits[first]:
                    chosen = first
            if chosen is None:
                representatives[n_reps] = envelope
                chosen = n_reps
                n_reps += 1
            assignment[trace.vm_id] = chosen
    vm_ids = tuple(trace.vm_id for trace in trace_set)
    return PeakClusters(
        vm_ids=vm_ids,
        cluster_of=tuple(assignment[vm] for vm in vm_ids),
    )
