"""Seasonality detection: which variations can semi-static exploit?

Semi-static consolidation "takes advantage of intra-week variations ...
or intra-month variations" (paper §1); dynamic consolidation feeds on
what remains after those predictable cycles.  This module quantifies how
much of a server's demand variance is periodic:

* :func:`periodic_strength` — autocorrelation of the demand series at a
  given lag (24 h = diurnal, 168 h = weekly),
* :func:`seasonality_profile` — the full decomposition for one server,
* :func:`classify_periodicity` — a coarse label (diurnal / weekly /
  aperiodic) used by reports and the candidate scoring in
  :mod:`repro.analysis.candidates`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError
from repro.workloads.trace import HOURS_PER_DAY

__all__ = [
    "DIURNAL_LAG",
    "WEEKLY_LAG",
    "SeasonalityProfile",
    "periodic_strength",
    "seasonality_profile",
]

DIURNAL_LAG = HOURS_PER_DAY
WEEKLY_LAG = 7 * HOURS_PER_DAY


def periodic_strength(values: np.ndarray, lag: int) -> float:
    """Autocorrelation of a demand series at ``lag`` samples.

    1.0 means the series repeats exactly with that period; ~0 means the
    period carries no information.  Negative values (anti-periodicity)
    are clipped to 0 — they offer semi-static planning nothing.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise TraceError("periodic_strength expects a 1-D series")
    if lag <= 0:
        raise TraceError(f"lag must be > 0, got {lag}")
    if values.size < 2 * lag:
        raise TraceError(
            f"need at least {2 * lag} samples for lag {lag}, "
            f"got {values.size}"
        )
    head, tail = values[:-lag], values[lag:]
    if head.std() == 0 or tail.std() == 0:
        return 0.0
    correlation = float(np.corrcoef(head, tail)[0, 1])
    return max(correlation, 0.0)


@dataclass(frozen=True)
class SeasonalityProfile:
    """Periodic structure of one server's demand."""

    vm_id: str
    diurnal_strength: float
    weekly_strength: float
    cov: float

    @property
    def label(self) -> str:
        """Coarse classification for reports.

        ``diurnal`` / ``weekly`` when the respective cycle explains the
        series well; ``aperiodic`` when neither does — the servers whose
        variability only dynamic consolidation can chase.
        """
        if self.diurnal_strength >= 0.5:
            return "diurnal"
        if self.weekly_strength >= 0.5:
            return "weekly"
        return "aperiodic"


def seasonality_profile(
    vm_id: str, values: np.ndarray
) -> SeasonalityProfile:
    """Compute the seasonality profile of one demand series."""
    values = np.asarray(values, dtype=float)
    mean = values.mean()
    cov = float(values.std() / mean) if mean > 0 else 0.0
    diurnal = periodic_strength(values, DIURNAL_LAG)
    weekly = (
        periodic_strength(values, WEEKLY_LAG)
        if values.size >= 2 * WEEKLY_LAG
        else 0.0
    )
    return SeasonalityProfile(
        vm_id=vm_id,
        diurnal_strength=diurnal,
        weekly_strength=weekly,
        cov=cov,
    )
