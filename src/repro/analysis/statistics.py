"""Core demand statistics used throughout the paper's trace analysis.

The paper's two burstiness metrics (Section 4.1):

* **Peak-to-Average ratio** — computed over *consolidation-interval
  demands*: the trace is first collapsed into one demand value per
  consolidation interval (sizing function = max within the interval),
  then the ratio of the peak to the mean of that demand series is taken.
  Longer intervals raise the average (every interval demand is a maximum
  over more samples) and therefore lower the ratio — exactly the Fig. 2
  trend across 1 h / 2 h / 4 h intervals.
* **Coefficient of Variation** — std/mean of the raw sampled series; a
  CoV >= 1 marks a heavy-tailed server.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import TraceError

__all__ = [
    "interval_demand",
    "peak_to_average",
    "coefficient_of_variation",
    "SIZING_MAX",
    "SIZING_MEAN",
]


def SIZING_MAX(window: np.ndarray) -> float:
    """The paper's default sizing function: max over the window."""
    return float(window.max())


def SIZING_MEAN(window: np.ndarray) -> float:
    """Mean sizing — the idealized dynamic-consolidation lower bound."""
    return float(window.mean())


def interval_demand(
    values: np.ndarray,
    points_per_interval: int,
    sizing: Callable[[np.ndarray], float] = SIZING_MAX,
) -> np.ndarray:
    """Collapse a sampled trace into one demand value per interval.

    Parameters
    ----------
    values:
        Raw sampled trace (e.g. hourly CPU demand).
    points_per_interval:
        Samples per consolidation interval (2 for 2 h intervals on
        hourly data).  The trace length must be a multiple of it.
    sizing:
        Sizing function applied to each interval window (paper default:
        max; stochastic algorithms use percentiles).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise TraceError("interval_demand expects a non-empty 1-D trace")
    if points_per_interval <= 0:
        raise TraceError(
            f"points_per_interval must be > 0, got {points_per_interval}"
        )
    if values.size % points_per_interval != 0:
        raise TraceError(
            f"trace length {values.size} is not a multiple of "
            f"{points_per_interval} points per interval"
        )
    windows = values.reshape(-1, points_per_interval)
    if sizing is SIZING_MAX:
        return windows.max(axis=1)  # vectorized fast path
    if sizing is SIZING_MEAN:
        return windows.mean(axis=1)
    return np.array([sizing(window) for window in windows])


def peak_to_average(values: np.ndarray) -> float:
    """Peak-to-average ratio of a demand series.

    Returns 1.0 for an all-zero series (a flat idle server is not bursty).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise TraceError("peak_to_average expects a non-empty 1-D series")
    mean = values.mean()
    if mean == 0:
        return 1.0
    return float(values.max() / mean)


def coefficient_of_variation(values: np.ndarray) -> float:
    """CoV (std/mean) of a demand series; 0.0 for an all-zero series."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise TraceError(
            "coefficient_of_variation expects a non-empty 1-D series"
        )
    mean = values.mean()
    if mean == 0:
        return 0.0
    # std(values / mean) == std(values) / mean, but squaring the
    # normalized O(1) series cannot underflow to subnormals the way
    # squaring a tiny-magnitude series can, so the result is
    # scale-invariant at full double precision.
    return float((values / mean).std())
