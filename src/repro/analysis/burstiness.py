"""Burstiness analysis of a trace set (paper Section 4.1, Figs. 2-5).

For each server the analysis produces, per resource:

* peak-to-average ratio of the consolidation-interval demand series for
  each requested interval length (Figs. 2 and 4), and
* coefficient of variation of the raw hourly series (Figs. 3 and 5).

The results come back as :class:`BurstinessReport`, which exposes the
per-server samples as :class:`~repro.analysis.cdf.EmpiricalCDF` objects —
the exact objects the figure benches tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.statistics import (
    coefficient_of_variation,
    interval_demand,
    peak_to_average,
)
from repro.exceptions import TraceError
from repro.workloads.trace import ServerTrace, TraceSet

__all__ = [
    "BurstinessReport",
    "analyze_burstiness",
    "server_peak_to_average",
    "server_cov",
    "DEFAULT_INTERVALS_HOURS",
]

#: The paper studies consolidation intervals of 1, 2 and 4 hours.
DEFAULT_INTERVALS_HOURS: Tuple[float, ...] = (1.0, 2.0, 4.0)

_RESOURCES = ("cpu", "memory")


def _resource_values(trace: ServerTrace, resource: str) -> np.ndarray:
    if resource == "cpu":
        return trace.cpu_rpe2
    if resource == "memory":
        return trace.memory_gb.values
    raise TraceError(f"unknown resource {resource!r}; expected cpu or memory")


def server_peak_to_average(
    trace: ServerTrace, resource: str, interval_hours: float
) -> float:
    """One server's P2A ratio at a given consolidation interval length."""
    points = interval_hours / trace.interval_hours
    if points != int(points):
        raise TraceError(
            f"interval {interval_hours}h does not align to "
            f"{trace.interval_hours}h samples"
        )
    demand = interval_demand(_resource_values(trace, resource), int(points))
    return peak_to_average(demand)


def server_cov(trace: ServerTrace, resource: str) -> float:
    """One server's coefficient of variation on the raw sampled series."""
    return coefficient_of_variation(_resource_values(trace, resource))


@dataclass(frozen=True)
class BurstinessReport:
    """Per-datacenter burstiness distributions.

    Attributes
    ----------
    name:
        Trace set name.
    peak_to_average:
        ``{(resource, interval_hours): EmpiricalCDF}`` of per-server P2A.
    cov:
        ``{resource: EmpiricalCDF}`` of per-server CoV.
    """

    name: str
    peak_to_average: Mapping[Tuple[str, float], EmpiricalCDF]
    cov: Mapping[str, EmpiricalCDF]

    def fraction_heavy_tailed(self, resource: str) -> float:
        """Fraction of servers with CoV >= 1 (the paper's heavy-tail cut)."""
        return self.cov[resource].fraction_above(1.0) + (
            # fraction_above is strict; include CoV exactly 1.0
            0.0
        )

    def median_p2a(self, resource: str, interval_hours: float) -> float:
        return self.peak_to_average[(resource, interval_hours)].median

    def fraction_p2a_above(
        self, resource: str, interval_hours: float, threshold: float
    ) -> float:
        return self.peak_to_average[(resource, interval_hours)].fraction_above(
            threshold
        )


def analyze_burstiness(
    trace_set: TraceSet,
    intervals_hours: Sequence[float] = DEFAULT_INTERVALS_HOURS,
) -> BurstinessReport:
    """Run the full Section-4.1 analysis over a trace set."""
    if len(trace_set) == 0:
        raise TraceError(f"trace set {trace_set.name!r} is empty")
    p2a: Dict[Tuple[str, float], EmpiricalCDF] = {}
    cov: Dict[str, EmpiricalCDF] = {}
    for resource in _RESOURCES:
        for interval in intervals_hours:
            samples = np.array(
                [
                    server_peak_to_average(trace, resource, interval)
                    for trace in trace_set
                ]
            )
            p2a[(resource, float(interval))] = EmpiricalCDF(samples)
        cov[resource] = EmpiricalCDF(
            np.array([server_cov(trace, resource) for trace in trace_set])
        )
    return BurstinessReport(name=trace_set.name, peak_to_average=p2a, cov=cov)
