"""Empirical cumulative distribution functions.

Nearly every figure in the paper is a CDF (Figs. 2-6, 9-12).
:class:`EmpiricalCDF` wraps a sample with the handful of queries the
reproduction needs: evaluation at a point, quantiles, tail fractions, and
a fixed-grid tabulation for text reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError

__all__ = ["EmpiricalCDF"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """Right-continuous empirical CDF of a 1-D sample."""

    sorted_values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.sorted_values, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise TraceError("EmpiricalCDF needs a non-empty 1-D sample")
        if not np.all(np.isfinite(values)):
            raise TraceError("EmpiricalCDF sample contains NaN or Inf")
        values = np.sort(values)
        values.flags.writeable = False
        object.__setattr__(self, "sorted_values", values)

    @classmethod
    def from_sample(cls, sample: Sequence[float]) -> "EmpiricalCDF":
        return cls(sorted_values=np.asarray(sample, dtype=float))

    def __len__(self) -> int:
        return int(self.sorted_values.size)

    def at(self, x: float) -> float:
        """F(x) = fraction of the sample <= x."""
        return float(
            np.searchsorted(self.sorted_values, x, side="right") / len(self)
        )

    def fraction_above(self, x: float) -> float:
        """Fraction of the sample strictly greater than x.

        This is the query the paper's prose uses ("more than 30% of
        workloads exhibit a ratio greater than 10").
        """
        return 1.0 - self.at(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF at q in [0, 1]."""
        if not 0 <= q <= 1:
            raise TraceError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.sorted_values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def tabulate(
        self, grid: Sequence[float]
    ) -> Tuple[Tuple[float, float], ...]:
        """(x, F(x)) pairs over a grid — the text-report form of a figure."""
        return tuple((float(x), self.at(float(x))) for x in grid)
