"""Dynamic-placement candidate scoring (Bobroff et al., IM 2007).

The paper's related work (§6.2) credits Bobroff, Kochut and Beaty with
"a method to identify the servers that are good candidates for dynamic
placement" — and positions itself as making the consolidation choice
"at a more coarse level (e.g., data center or cluster) instead of
individual server".  This module implements the per-server view so the
two levels can be compared:

A server gains from dynamic placement when its peak demand is far above
what it needs most of the time *and* that gap is predictable enough to
act on.  The classic score:

    gain  = (peak - p_q) / peak          # reclaimable fraction
    score = gain * predictability        # discounted by forecastability

where ``p_q`` is a high percentile (the demand dynamic consolidation
would size to in a typical interval) and predictability comes from the
demand's periodic structure (:mod:`repro.analysis.seasonality`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.seasonality import seasonality_profile
from repro.exceptions import TraceError
from repro.workloads.trace import ServerTrace, TraceSet

__all__ = ["CandidateScore", "score_candidate", "rank_candidates"]


@dataclass(frozen=True)
class CandidateScore:
    """Dynamic-placement suitability of one server."""

    vm_id: str
    reclaimable_fraction: float
    predictability: float

    @property
    def score(self) -> float:
        return self.reclaimable_fraction * self.predictability

    @property
    def is_good_candidate(self) -> bool:
        """Bobroff-style cut: meaningful gain that can be forecast."""
        return self.reclaimable_fraction >= 0.3 and self.predictability >= 0.4


def score_candidate(
    trace: ServerTrace, *, body_percentile: float = 90.0
) -> CandidateScore:
    """Score one server's suitability for dynamic placement."""
    if not 0 < body_percentile < 100:
        raise TraceError(
            f"body_percentile must be in (0, 100), got {body_percentile}"
        )
    demand = trace.cpu_rpe2
    peak = float(demand.max())
    if peak <= 0:
        return CandidateScore(
            vm_id=trace.vm_id, reclaimable_fraction=0.0, predictability=0.0
        )
    body = float(np.percentile(demand, body_percentile))
    reclaimable = max(0.0, (peak - body) / peak)
    profile = seasonality_profile(trace.vm_id, demand)
    predictability = max(
        profile.diurnal_strength, profile.weekly_strength
    )
    return CandidateScore(
        vm_id=trace.vm_id,
        reclaimable_fraction=reclaimable,
        predictability=predictability,
    )


def rank_candidates(
    trace_set: TraceSet, *, body_percentile: float = 90.0
) -> Tuple[CandidateScore, ...]:
    """Score every server, best candidates first."""
    scores = [
        score_candidate(trace, body_percentile=body_percentile)
        for trace in trace_set
    ]
    return tuple(
        sorted(scores, key=lambda s: (s.score, s.vm_id), reverse=True)
    )
