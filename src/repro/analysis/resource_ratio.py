"""Aggregate CPU:memory resource-ratio analysis (paper §4.2, Fig. 6).

For every consolidation interval the total CPU demand (RPE2) and total
memory demand (GB) across all servers are computed; their ratio is
compared against a reference server's hardware ratio (the HS23 Elite
blade: 160 RPE2/GB).  Intervals whose demand ratio falls *below* the
reference are memory-constrained — the server's memory fills up before
its CPU does.

The headline result (Observation 3): consolidated datacenters are
memory-constrained most of the time even on extended-memory blades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.statistics import interval_demand
from repro.exceptions import TraceError
from repro.metrics.catalog import HS23_ELITE
from repro.workloads.trace import TraceSet

__all__ = [
    "ResourceRatioReport",
    "resource_ratio_series",
    "analyze_resource_ratio",
    "REFERENCE_RATIO",
]

#: HS23 Elite blade: 160 RPE2 per GB (Fig. 6 caption).
REFERENCE_RATIO = HS23_ELITE.cpu_memory_ratio


def resource_ratio_series(
    trace_set: TraceSet, interval_hours: float = 2.0
) -> np.ndarray:
    """Aggregate CPU:memory demand ratio per consolidation interval.

    Both resources are sized per interval with the max sizing function
    (the demand the interval must provision for), aggregated across all
    servers, and divided.
    """
    points = interval_hours / trace_set.interval_hours
    if points != int(points):
        raise TraceError(
            f"interval {interval_hours}h does not align to "
            f"{trace_set.interval_hours}h samples"
        )
    cpu_total = trace_set.aggregate_cpu_rpe2()
    memory_total = trace_set.aggregate_memory_gb()
    cpu_per_interval = interval_demand(cpu_total, int(points))
    memory_per_interval = interval_demand(memory_total, int(points))
    if np.any(memory_per_interval <= 0):
        raise TraceError("aggregate memory demand must be positive")
    return cpu_per_interval / memory_per_interval


@dataclass(frozen=True)
class ResourceRatioReport:
    """Resource-ratio distribution for one datacenter."""

    name: str
    interval_hours: float
    cdf: EmpiricalCDF
    reference_ratio: float = REFERENCE_RATIO

    @property
    def fraction_memory_constrained(self) -> float:
        """Fraction of intervals with demand ratio below the reference."""
        return self.cdf.at(self.reference_ratio)

    @property
    def fraction_cpu_constrained(self) -> float:
        return 1.0 - self.fraction_memory_constrained

    @property
    def median_ratio(self) -> float:
        return self.cdf.median


def analyze_resource_ratio(
    trace_set: TraceSet,
    *,
    interval_hours: float = 2.0,
    reference_ratio: float = REFERENCE_RATIO,
) -> ResourceRatioReport:
    """Run the Fig. 6 analysis for one trace set."""
    series = resource_ratio_series(trace_set, interval_hours)
    return ResourceRatioReport(
        name=trace_set.name,
        interval_hours=interval_hours,
        cdf=EmpiricalCDF(series),
        reference_ratio=reference_ratio,
    )
