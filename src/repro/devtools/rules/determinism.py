"""REPRO101: forbid global / unseeded random number generation.

The paper's results are reproducible only if every stochastic component
(workload generation, migration reliability sampling, monitoring noise)
draws from an explicitly seeded ``numpy.random.Generator`` that the
caller threads through.  Global state — ``np.random.rand``,
``np.random.seed``, the stdlib ``random`` module, or an *unseeded*
``default_rng()`` — makes two "identical" runs diverge silently.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.devtools.asthelpers import dotted_name
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

#: numpy.random attributes that are fine to *call* because they build
#: explicitly seeded generators (when given a seed — the zero-argument
#: forms draw OS entropy and are flagged separately).
_SEEDED_FACTORIES = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # legacy but seedable; unseeded use is still flagged
}

#: stdlib ``random`` module functions that mutate/read the hidden
#: global Mersenne-Twister instance.
_STDLIB_GLOBAL_FUNCS = {
    "seed",
    "random",
    "uniform",
    "randint",
    "randrange",
    "getrandbits",
    "randbytes",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "triangular",
}


@register
class GlobalRngRule(Rule):
    rule_id = "REPRO101"
    name = "global-rng"
    rationale = (
        "global or unseeded RNG use breaks run-to-run determinism; "
        "thread a seeded numpy.random.Generator through instead"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)

    def _check_import_from(
        self, module: Module, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            bad = [a.name for a in node.names if a.name in _STDLIB_GLOBAL_FUNCS]
            if bad:
                yield self.finding(
                    module,
                    node,
                    "importing global-state sampler(s) from the random "
                    f"module ({', '.join(bad)}); use a seeded "
                    "numpy.random.Generator parameter instead",
                )
        elif node.module == "numpy.random":
            bad = [
                a.name for a in node.names if a.name not in _SEEDED_FACTORIES
            ]
            if bad:
                yield self.finding(
                    module,
                    node,
                    "importing global numpy.random sampler(s) "
                    f"({', '.join(bad)}); use a seeded Generator instead",
                )

    def _check_call(
        self, module: Module, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        parts = dotted_name(node.func)
        if parts is None:
            return
        root = aliases.get(parts[0])
        canonical = [root, *parts[1:]] if root else parts
        if len(canonical) >= 2 and canonical[0] == "numpy.random":
            attr = canonical[1]
        elif (
            len(canonical) >= 3
            and canonical[0] == "numpy"
            and canonical[1] == "random"
        ):
            attr = canonical[2]
        elif canonical[0] == "random" and len(canonical) == 2:
            if canonical[1] in _STDLIB_GLOBAL_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"random.{canonical[1]}() uses the hidden global RNG; "
                    "thread a seeded numpy.random.Generator through instead",
                )
            elif canonical[1] == "Random" and not node.args:
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            return
        else:
            return
        if attr in _SEEDED_FACTORIES:
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    f"numpy.random.{attr}() without a seed draws OS entropy "
                    "and is nondeterministic; pass an explicit seed",
                )
        else:
            yield self.finding(
                module,
                node,
                f"numpy.random.{attr}() uses numpy's global RNG state; "
                "use a seeded numpy.random.Generator instead",
            )


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names onto the canonical modules they denote.

    Covers ``import numpy as np``, ``import numpy.random as npr``,
    ``from numpy import random``, ``import random``, and their aliased
    variants.  A ``from numpy import random`` binding shadows the stdlib
    module under the same name, which the mapping resolves correctly
    because later bindings overwrite earlier ones just as at runtime.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases[alias.asname or "numpy"] = "numpy"
                elif alias.name == "numpy.random":
                    if alias.asname:
                        aliases[alias.asname] = "numpy.random"
                    else:
                        aliases["numpy"] = "numpy"
                elif alias.name == "random":
                    aliases[alias.asname or "random"] = "random"
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases[alias.asname or "random"] = "numpy.random"
    return aliases
