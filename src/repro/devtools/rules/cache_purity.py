"""REPRO111: code reachable from runner task entry points stays pure.

The :mod:`repro.runner` cache is content-addressed: a task's result is
keyed by its ``(kind, params)`` document and nothing else.  That key is
only *sound* if executing the task twice with the same params produces
the same result — which breaks the moment anything reachable from a
task executor reads wall-clock time, samples a global or unseeded RNG,
consults the environment, or leans on mutable module state.  A stale
cache entry then silently stands in for a different answer, and every
golden/benchmark number downstream inherits the lie.

This rule walks the project call graph (``project.semantics``) from
every function decorated with ``@register_task_kind(...)`` and flags,
inside any reachable function:

* **wall-clock reads** — ``time.time()``, ``time.perf_counter()``,
  ``datetime.now()`` and friends;
* **global/unseeded RNG** — ``np.random.*`` module-level samplers,
  stdlib ``random.*`` samplers, argument-less ``default_rng()`` /
  ``SeedSequence()``;
* **environment reads outside the sanctioned accessors** —
  ``os.environ`` / ``os.getenv`` is allowed only when the key is a
  ``REPRO_*`` string literal or a module constant holding one (the
  ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` / ``REPRO_SCALE`` pattern:
  such reads are part of the runner's own configuration surface and are
  excluded from cache keys deliberately);
* **module-state mutation** — assigning a name declared ``global``.

The call graph is best-effort (dynamic dispatch via ``getattr`` is
invisible to it), so this is a ratchet, not a proof: it catches the
direct and one-annotation-hop chains that account for nearly all real
regressions.  Timing metadata that never lands in a cached payload
(the runner's own ``perf_counter`` bookkeeping) is sanctioned with
per-line pragmas at the site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register
from repro.devtools.semantics import (
    FunctionInfo,
    ModuleInfo,
    SemanticModel,
    walk_code,
)

_ENTRY_DECORATOR = "register_task_kind"

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_STDLIB_SAMPLERS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.seed",
        "random.getrandbits",
    }
)

#: numpy.random attributes that are *not* global samplers.
_NUMPY_RANDOM_OK = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "default_rng"}
)

_ENV_PREFIX = "REPRO_"


@register
class CachePurityRule(Rule):
    rule_id = "REPRO111"
    name = "cache-purity"
    rationale = (
        "functions reachable from @register_task_kind entry points must "
        "not read clocks, global RNG, or non-REPRO_* environment, nor "
        "mutate module state: the result cache keys on params alone"
    )

    def __init__(self) -> None:
        self._computed_for: Optional[int] = None
        self._by_rel: Dict[str, List[Finding]] = {}

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        model = project.semantics
        if model is None:
            return
        if self._computed_for != id(project):
            self._by_rel = self._analyze(model)
            self._computed_for = id(project)
        yield from self._by_rel.get(module.rel, [])

    # ------------------------------------------------------------------

    def _analyze(self, model: SemanticModel) -> Dict[str, List[Finding]]:
        roots = [
            key
            for key, fn in sorted(model.functions.items())
            if any(
                d.split(".")[-1] == _ENTRY_DECORATOR for d in fn.decorators
            )
        ]
        if not roots:
            return {}
        paths = model.reachable_from(roots)
        findings: Dict[str, List[Finding]] = {}
        for key in sorted(paths):
            fn = model.functions.get(key)
            if fn is None:
                continue
            info = model.modules.get(fn.module)
            if info is None:
                continue
            for node, problem in self._impurities(model, info, fn):
                findings.setdefault(info.rel, []).append(
                    Finding(
                        path=info.rel,
                        line=getattr(node, "lineno", 1),
                        col=getattr(node, "col_offset", 0),
                        rule_id=self.rule_id,
                        message=(
                            f"{problem} in {fn.qualname}(), which is "
                            f"{_route(paths[key])}: cached results must "
                            "depend on task params alone"
                        ),
                    )
                )
        return findings

    def _impurities(
        self, model: SemanticModel, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        mutated_globals = _mutated_globals(fn.node)
        for node in walk_code(fn.node):
            if isinstance(node, ast.Call):
                yield from self._impure_call(model, info, node)
            elif isinstance(node, ast.Subscript):
                target = _external_path(model, info, node.value)
                if target == "os.environ" and not _sanctioned_env_key(
                    model, info, node.slice
                ):
                    yield node, "os.environ read with a non-REPRO_* key"
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for name in _assigned_names(node):
                    if name in mutated_globals:
                        yield node, f"mutation of module-level state {name!r}"

    def _impure_call(
        self, model: SemanticModel, info: ModuleInfo, node: ast.Call
    ) -> Iterator[Tuple[ast.AST, str]]:
        target = _external_path(model, info, node.func)
        if target is None:
            return
        if target in _WALL_CLOCK:
            yield node, f"wall-clock read via {target}()"
        elif target in _STDLIB_SAMPLERS:
            yield node, f"global stdlib RNG via {target}()"
        elif target.startswith("numpy.random."):
            attr = target.split(".")[-1]
            if attr not in _NUMPY_RANDOM_OK:
                yield node, f"global numpy RNG via {target}()"
            elif attr in ("default_rng", "SeedSequence") and not (
                node.args or node.keywords
            ):
                yield node, f"unseeded {target}()"
        elif target in ("os.getenv", "os.environ.get"):
            key = node.args[0] if node.args else None
            if not _sanctioned_env_key(model, info, key):
                yield node, f"{target}() with a non-REPRO_* key"


def _route(path: Tuple[str, ...]) -> str:
    """Human-readable reachability evidence for one finding."""
    names = [key.rpartition(":")[2] for key in path]
    root = names[0]
    if len(names) == 1:
        return f"the task entry point {root}"
    via = names[1:-1]
    if len(via) > 3:
        via = via[:2] + ["..."] + via[-1:]
    route = " -> ".join(via + [names[-1]])
    return f"reachable from task entry point {root} via {route}"


def _external_path(
    model: SemanticModel, info: ModuleInfo, node: ast.AST
) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    resolved = model.resolve_dotted(info, parts)
    if resolved is not None and resolved.kind == "external":
        return resolved.key
    return None


def _sanctioned_env_key(
    model: SemanticModel, info: ModuleInfo, key: Optional[ast.AST]
) -> bool:
    """True when an environment key is a ``REPRO_*`` name, statically."""
    if key is None:
        return False
    if isinstance(key, ast.Constant):
        return isinstance(key.value, str) and key.value.startswith(_ENV_PREFIX)
    parts: List[str] = []
    node = key
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        resolved = model.resolve_dotted(info, parts)
        if resolved is not None and resolved.kind == "assign":
            module_name, _, symbol = resolved.key.partition(":")
            assign_info = model.modules.get(module_name)
            value = assign_info.assigns.get(symbol) if assign_info else None
            return (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value.startswith(_ENV_PREFIX)
            )
    return False


def _mutated_globals(fn_node: ast.AST) -> frozenset:
    names = set()
    for node in walk_code(fn_node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return frozenset(names)


def _assigned_names(node: ast.stmt) -> Iterator[str]:
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    for target in targets:
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name):
                yield leaf.id
