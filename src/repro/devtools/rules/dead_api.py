"""REPRO113: every exported name must have a consumer somewhere.

``__all__`` is this codebase's public-API contract; an entry nothing
imports is contract rot — it advertises surface the equivalence suites
and examples never exercise, and it keeps dead code alive (REPRO113's
cleanup partner is deleting the symbol, not just the string).

An export is *dead* when no analyzed module other than its defining one
mentions the name at all.  "Mentions" is deliberately loose
(vulture-style, errs toward alive): name loads, attribute accesses,
``from x import name``, and identifier-shaped string constants all
count, so dispatch tables and ``getattr`` patterns never produce false
positives.  A module's own ``__all__`` entries are excluded from its
reference corpus — an export naming itself is not evidence of use — but
re-export chains work naturally: a package ``__init__`` that imports a
submodule symbol keeps the *submodule's* entry alive, while the
``__init__``'s own entry must be justified by some third module.

The rule only fires when the analyzed set spans more than one top-level
package (``src/repro`` plus ``tests``/``examples``/``benchmarks``):
linting a subset proves nothing about liveness, so subset runs stay
quiet by construction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register
from repro.devtools.semantics import SemanticModel


@register
class DeadApiRule(Rule):
    rule_id = "REPRO113"
    name = "dead-api"
    rationale = (
        "__all__ entries never referenced by any other analyzed module "
        "are dead public API; delete the export (and usually the symbol)"
    )

    def __init__(self) -> None:
        self._computed_for: Optional[int] = None
        self._by_rel: Dict[str, List[Finding]] = {}

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        model = project.semantics
        if model is None:
            return
        if self._computed_for != id(project):
            self._by_rel = self._analyze(model)
            self._computed_for = id(project)
        yield from self._by_rel.get(module.rel, [])

    # ------------------------------------------------------------------

    def _analyze(self, model: SemanticModel) -> Dict[str, List[Finding]]:
        tops = {info.name.split(".")[0] for info in model.by_rel.values()}
        if len(tops) < 2:
            # Subset lint (src only, one package): liveness undecidable.
            return {}
        referencers: Dict[str, Set[str]] = {}
        for info in model.by_rel.values():
            for name in info.referenced:
                referencers.setdefault(name, set()).add(info.rel)
        findings: Dict[str, List[Finding]] = {}
        for info in sorted(model.by_rel.values(), key=lambda i: i.rel):
            if not info.exports:
                continue
            for name, line in info.exports:
                if referencers.get(name, set()) - {info.rel}:
                    continue
                findings.setdefault(info.rel, []).append(
                    Finding(
                        path=info.rel,
                        line=line,
                        col=0,
                        rule_id=self.rule_id,
                        message=(
                            f"exported name {name!r} is never referenced "
                            "outside this module anywhere in the analyzed "
                            "tree; remove it from __all__ (and delete the "
                            "symbol if nothing internal uses it)"
                        ),
                    )
                )
        return findings
