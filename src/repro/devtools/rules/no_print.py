"""REPRO107: no ``print()`` in library code.

Library modules are consumed programmatically (and, per ROADMAP, by
high-throughput services); stray prints corrupt machine-readable output
and bypass any logging configuration.  Only the CLI front-ends
(``cli.py`` modules) and the report formatter
(``experiments/formatting.py``) write to stdout by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

_ALLOWED_BASENAMES = ("cli.py",)
_ALLOWED_SUFFIXES = ("experiments/formatting.py",)


@register
class StrayPrintRule(Rule):
    rule_id = "REPRO107"
    name = "stray-print"
    rationale = (
        "print() in library code corrupts programmatic output; only CLI "
        "and formatting modules may write to stdout"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if module.basename in _ALLOWED_BASENAMES:
            return
        posix_path = module.path.as_posix()
        if any(posix_path.endswith(suffix) for suffix in _ALLOWED_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; return the value or use the "
                    "CLI/formatting layer for output",
                )
