"""REPRO105: unit-suffix discipline across assignments, arithmetic, calls.

Variables and parameters carrying a unit suffix (``_mb``, ``_gb``,
``_mhz``, ``_mbps``, ``_frac``, ``_pct``, ``_rpe2``, ``_watts``) may
only flow into slots carrying the *same* suffix.  Passing
``memory_mb`` where a callee expects ``memory_gb`` is the classic
silent 1024× capacity-accounting error; mixing ``_frac`` (0–1) with
``_pct`` (0–100) is the silent 100× utilization error.  Explicit
conversions are naturally exempt because arithmetic expressions carry
no suffix (``memory_mb / 1024.0`` can be assigned to ``memory_gb``).

Checked flows:

* keyword arguments: ``f(memory_gb=server_mb)``;
* positional arguments, when the callee's signature was collected
  unambiguously during the project-wide pass (plain functions, methods,
  and dataclass constructors anywhere in the linted tree);
* assignments: ``memory_gb = memory_mb``;
* additive arithmetic and comparisons: ``used_mb + free_gb``,
  ``demand_mb > capacity_gb`` (multiplication/division are conversion
  idioms and therefore exempt).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.devtools.asthelpers import terminal_name, unit_suffix
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register


@register
class UnitSuffixRule(Rule):
    rule_id = "REPRO105"
    name = "unit-suffix"
    rationale = (
        "unit-suffixed values (_mb/_gb/_mhz/_frac/_pct/...) must only "
        "flow into same-suffix slots; convert explicitly"
    )

    def collect(self, module: Module, project: Project) -> None:
        """Index callable signatures for positional-argument checking."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = [
                    arg.arg for arg in (*node.args.posonlyargs, *node.args.args)
                ]
                project.record_signature(node.name, params)
            elif isinstance(node, ast.ClassDef) and _is_dataclass(node):
                fields = [
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ]
                project.record_signature(node.name, fields)

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, project, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pairing(
                    module, node, node.left, node.right, "added/subtracted with"
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pairing(
                        module, node, left, right, "compared with"
                    )

    # ------------------------------------------------------------------

    def _check_call(
        self, module: Module, project: Project, node: ast.Call
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            yield from self._check_slot(module, node, keyword.arg, keyword.value)
        for param, value in _resolved_positionals(project, node):
            yield from self._check_slot(module, node, param, value)

    def _check_slot(
        self, module: Module, node: ast.Call, param: str, value: ast.AST
    ) -> Iterator[Finding]:
        expected = unit_suffix(param)
        actual_name = terminal_name(value)
        actual = unit_suffix(actual_name) if actual_name else None
        if expected and actual and expected != actual:
            callee = terminal_name(node.func) or "<call>"
            yield self.finding(
                module,
                node,
                f"passing '{actual_name}' (unit '{actual}') to parameter "
                f"'{param}' of {callee}() (unit '{expected}'); convert "
                "explicitly",
            )

    def _check_assign(
        self, module: Module, node: ast.stmt
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:  # AnnAssign
            targets, value = [node.target], node.value
        if value is None:
            return
        value_name = terminal_name(value)
        actual = unit_suffix(value_name) if value_name else None
        if actual is None:
            return
        for target in targets:
            target_name = terminal_name(target)
            expected = unit_suffix(target_name) if target_name else None
            if expected and expected != actual:
                yield self.finding(
                    module,
                    node,
                    f"assigning '{value_name}' (unit '{actual}') to "
                    f"'{target_name}' (unit '{expected}'); convert explicitly",
                )

    def _check_pairing(
        self,
        module: Module,
        node: ast.AST,
        left: ast.AST,
        right: ast.AST,
        verb: str,
    ) -> Iterator[Finding]:
        left_name, right_name = terminal_name(left), terminal_name(right)
        left_unit = unit_suffix(left_name) if left_name else None
        right_unit = unit_suffix(right_name) if right_name else None
        if left_unit and right_unit and left_unit != right_unit:
            yield self.finding(
                module,
                node,
                f"'{left_name}' (unit '{left_unit}') {verb} '{right_name}' "
                f"(unit '{right_unit}'); convert explicitly",
            )


def _resolved_positionals(
    project: Project, node: ast.Call
) -> List[Tuple[str, ast.AST]]:
    """Pair positional args with parameter names when unambiguous."""
    callee = terminal_name(node.func)
    if callee is None:
        return []
    params = project.lookup_signature(callee)
    if params is None:
        return []
    if isinstance(node.func, ast.Attribute) and params[:1] in (
        ("self",),
        ("cls",),
    ):
        params = params[1:]
    pairs = []
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred) or index >= len(params):
            break
        pairs.append((params[index], arg))
    return pairs


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = terminal_name(target)
        if name == "dataclass":
            return True
    return False
