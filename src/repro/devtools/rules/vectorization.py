"""REPRO109: keep the demand kernels vectorized.

The emulator replay and bin-packing hot paths went columnar (PR:
vectorized demand kernels): demand matrices come from the cached
:class:`~repro.workloads.store.TraceStore` and per-segment accumulation
is a scatter-add, not a per-VM Python loop.  With the planning layer
vectorized too (batched prediction/sizing tables, array-backed repack
and vacate sweeps), this rule guards that floor inside
:mod:`repro.emulator`, :mod:`repro.placement`, :mod:`repro.core`,
:mod:`repro.sizing`, and the sharded scale-out path
(:mod:`repro.sharding` — blockwise demand tables and numpy reconcile
prefilters sit on the same hot path):

* no ``np.vstack`` / ``numpy.vstack`` calls — stacking per-trace arrays
  rebuilds the matrix the store already caches, one allocation per call;
* no ``for`` loops whose iterable mentions a trace collection
  (``traces``, ``trace_set``, ``_traces``) — per-trace Python iteration
  is exactly the O(n_servers) interpreter overhead the columnar kernels
  removed.

The workload *generation* pipeline (PR: store-first array engine) is in
scope too — :mod:`repro.workloads`'s generator/models/presets/chunked
modules — so a new per-trace loop upstream of the store can't quietly
reintroduce the scalar stage the engine removed.

Retained scalar references (``emulator/reference.py``, the scalar
planner paths kept as equivalence-suite baselines, and the pinned
``_generate_trace_set_scalar`` reference pipeline in
``workloads/generator.py``) opt out with
``# repro-lint: disable-file=REPRO109`` / per-line ``disable=`` pragmas:
those loops exist to *be* what the kernels are checked against.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

_SCOPED_PACKAGES = ("emulator", "placement", "core", "sizing", "sharding")
#: The workloads package is generator + storage + presets; only its
#: generation pipeline is hot-path columnar (the array engine), so the
#: rule scopes to those modules by name rather than the whole package.
_SCOPED_WORKLOAD_MODULES = frozenset(
    {
        "generator.py",
        "models.py",
        "datacenters.py",
        "chunked.py",
        "appmodel.py",
        "store.py",
    }
)
_TRACE_COLLECTION_NAMES = frozenset({"traces", "trace_set", "_traces"})


def _is_vstack_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "vstack"
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _trace_identifiers(expression: ast.expr) -> Iterator[str]:
    """Identifiers in an iterable expression that name trace collections."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Name) and node.id in _TRACE_COLLECTION_NAMES:
            yield node.id
        elif (
            isinstance(node, ast.Attribute)
            and node.attr in _TRACE_COLLECTION_NAMES
        ):
            yield node.attr


@register
class VectorizedKernelRule(Rule):
    rule_id = "REPRO109"
    name = "vectorize-kernels"
    rationale = (
        "emulator, placement, core, sizing, and sharding hot paths are "
        "columnar: per-trace Python loops and np.vstack reassembly undo "
        "the scatter-add/TraceStore kernels"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        in_workloads_generator = (
            module.in_package("workloads")
            and module.basename in _SCOPED_WORKLOAD_MODULES
        )
        if not (module.in_package(*_SCOPED_PACKAGES) or in_workloads_generator):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_vstack_call(node):
                yield self.finding(
                    module,
                    node,
                    "np.vstack in a demand kernel; read the cached "
                    "TraceStore matrix instead of restacking per-trace "
                    "arrays",
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for identifier in _trace_identifiers(node.iter):
                    yield self.finding(
                        module,
                        node,
                        f"Python loop over {identifier!r} in a demand "
                        "kernel; use the columnar TraceStore matrices and "
                        "array ops (scatter-add, masks) instead",
                    )
                    break
