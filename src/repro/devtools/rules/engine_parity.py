"""REPRO110: declared engine/reference pairs must not drift apart.

Every vectorized engine keeps a scalar reference implementation pinned
by equivalence tests (emulator scatter-add vs loop replay, array bins
vs bin-at-a-time packing, incremental dynamic repacking vs the sticky
scalar planner, matrix vs scalar sizing).  Those suites catch *result*
drift; this rule catches *API* drift — a parameter added to the engine
but not the reference, a renamed keyword, a changed default — by
comparing the public surface of each pair declared in a
``PARITY_MANIFEST`` (see :mod:`repro.devtools.parity`, the in-tree
manifest).

For a pair of classes the synced surface is every public method of the
reference: it must have a same-named engine method, an explicit entry
in the pair's ``methods`` map, or an entry in ``unpaired`` (scalar-only
conveniences).  For a pair of callables the two signatures are compared
directly.  Comparison normalizes ``self``/``cls``, drops declared
``engine_extra`` parameters (bin indices, the algorithm instance a free
function takes instead of ``self``), applies declared ``renames``, and
then requires identical positional order, keyword-only sets, and
default-value expressions.

Pairs whose modules are outside the analyzed set are skipped, so
subset lints (``repro-lint src/repro/devtools``) stay quiet; a module
that *is* analyzed but no longer defines the declared symbol is
reported — that is exactly the rename-without-updating-the-manifest
drift this rule exists to catch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register
from repro.devtools.semantics import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SemanticModel,
)

_MANIFEST_NAME = "PARITY_MANIFEST"
_ENTRY_KEYS = {"reference", "engine", "methods", "engine_extra", "renames", "unpaired"}


@register
class EngineParityRule(Rule):
    rule_id = "REPRO110"
    name = "engine-parity"
    rationale = (
        "vectorized engines and their scalar references (PARITY_MANIFEST "
        "pairs) must keep public methods and signatures in sync"
    )

    def __init__(self) -> None:
        self._computed_for: Optional[int] = None
        self._by_rel: Dict[str, List[Finding]] = {}

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        model = project.semantics
        if model is None:
            return
        if self._computed_for != id(project):
            self._by_rel = self._analyze(model)
            self._computed_for = id(project)
        yield from self._by_rel.get(module.rel, [])

    # ------------------------------------------------------------------

    def _analyze(self, model: SemanticModel) -> Dict[str, List[Finding]]:
        findings: Dict[str, List[Finding]] = {}

        def report(rel: str, node: ast.AST, message: str) -> None:
            findings.setdefault(rel, []).append(
                Finding(
                    path=rel,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    rule_id=self.rule_id,
                    message=message,
                )
            )

        for info in sorted(model.by_rel.values(), key=lambda i: i.rel):
            manifest = info.assigns.get(_MANIFEST_NAME)
            if manifest is None:
                continue
            entries = self._parse_manifest(info, manifest, report)
            for entry in entries:
                self._check_pair(model, info, manifest, entry, report)
        return findings

    def _parse_manifest(self, info, node, report) -> List[dict]:
        try:
            value = ast.literal_eval(node)
        except (ValueError, SyntaxError):
            report(
                info.rel,
                node,
                f"{_MANIFEST_NAME} must be a literal tuple/list of dicts "
                "(no computed values)",
            )
            return []
        if not isinstance(value, (tuple, list)):
            report(info.rel, node, f"{_MANIFEST_NAME} must be a tuple or list")
            return []
        entries = []
        for index, entry in enumerate(value):
            problem = _entry_problem(entry)
            if problem:
                report(
                    info.rel, node, f"{_MANIFEST_NAME}[{index}]: {problem}"
                )
                continue
            entries.append(entry)
        return entries

    def _check_pair(self, model, info, node, entry, report) -> None:
        pair_label = f"{entry['reference']} ~ {entry['engine']}"
        sides = {}
        for side in ("reference", "engine"):
            spec = entry[side]
            module_name = spec.partition(":")[0]
            side_info = model.modules.get(module_name)
            if side_info is None:
                return  # module outside the analyzed set: subset lint
            resolved = model.lookup(spec)
            if resolved is None or resolved.kind not in ("class", "function"):
                report(
                    side_info.rel,
                    side_info.module.tree,
                    f"engine-parity pair {pair_label}: {side} symbol "
                    f"{spec!r} not found in this module (renamed without "
                    "updating the manifest?)",
                )
                return
            sides[side] = resolved
        ref_res, eng_res = sides["reference"], sides["engine"]
        if ref_res.kind != eng_res.kind:
            report(
                info.rel,
                node,
                f"engine-parity pair {pair_label}: cannot compare a "
                f"{ref_res.kind} with a {eng_res.kind}",
            )
            return
        extra = frozenset(entry.get("engine_extra", ()))
        renames = dict(entry.get("renames", {}))
        if ref_res.kind == "function":
            ref_fn = model.functions[ref_res.key]
            eng_fn = model.functions[eng_res.key]
            eng_info = model.modules[eng_fn.module]
            for issue in _signature_issues(ref_fn, eng_fn, extra, renames):
                report(
                    eng_info.rel,
                    eng_fn.node,
                    f"engine-parity drift in pair {pair_label}: {issue}",
                )
            return
        self._check_class_pair(
            model, entry, pair_label, ref_res, eng_res, extra, renames, report
        )

    def _check_class_pair(
        self, model, entry, pair_label, ref_res, eng_res, extra, renames, report
    ) -> None:
        ref_cls = model.classes[ref_res.key]
        eng_cls = model.classes[eng_res.key]
        eng_info = model.modules[eng_cls.module]
        method_map = {
            name: list(targets)
            for name, targets in entry.get("methods", {}).items()
        }
        unpaired = frozenset(entry.get("unpaired", ())) | _implicit_unpaired(
            ref_cls, eng_cls, method_map
        )
        for name in sorted(ref_cls.methods):
            if name.startswith("_"):
                continue
            ref_method = ref_cls.methods[name]
            if name in method_map:
                targets = method_map[name]
            elif name in eng_cls.methods:
                targets = [name]
            elif name in unpaired:
                continue
            else:
                report(
                    eng_info.rel,
                    eng_cls.node,
                    f"engine-parity drift in pair {pair_label}: reference "
                    f"method {ref_cls.name}.{name}() has no counterpart on "
                    f"{eng_cls.name} (add it, map it under 'methods', or "
                    "declare it 'unpaired' in the manifest)",
                )
                continue
            for target in targets:
                eng_method = eng_cls.methods.get(target)
                if eng_method is None:
                    report(
                        eng_info.rel,
                        eng_cls.node,
                        f"engine-parity drift in pair {pair_label}: "
                        f"{eng_cls.name}.{target}() (paired with reference "
                        f"{ref_cls.name}.{name}()) does not exist",
                    )
                    continue
                for issue in _signature_issues(
                    ref_method, eng_method, extra, renames
                ):
                    report(
                        eng_info.rel,
                        eng_method.node,
                        f"engine-parity drift in pair {pair_label}, method "
                        f"{name} ~ {target}: {issue}",
                    )


def _implicit_unpaired(
    ref_cls: ClassInfo, eng_cls: ClassInfo, method_map: Dict[str, list]
) -> frozenset:
    """Reference-only conveniences that predate the pairing contract.

    A reference method is implicitly unpaired when it is a property or
    classmethod — scalar accessors the array engine replaces with plain
    vector attributes rather than per-bin calls.
    """
    implicit = set()
    for name, method in ref_cls.methods.items():
        terminal = {d.split(".")[-1] for d in method.decorators}
        if terminal & {"property", "classmethod", "staticmethod", "cached_property"}:
            implicit.add(name)
    return frozenset(implicit)


def _entry_problem(entry: object) -> Optional[str]:
    if not isinstance(entry, dict):
        return "entries must be dicts"
    unknown = set(entry) - _ENTRY_KEYS
    if unknown:
        return f"unknown keys {sorted(unknown)}"
    for side in ("reference", "engine"):
        spec = entry.get(side)
        if not isinstance(spec, str) or ":" not in spec:
            return f"{side!r} must be a 'module.path:Symbol' string"
    methods = entry.get("methods", {})
    if not isinstance(methods, dict) or not all(
        isinstance(k, str)
        and isinstance(v, (list, tuple))
        and all(isinstance(t, str) for t in v)
        for k, v in methods.items()
    ):
        return "'methods' must map names to lists of names"
    for key in ("engine_extra", "unpaired"):
        seq = entry.get(key, ())
        if not isinstance(seq, (list, tuple)) or not all(
            isinstance(p, str) for p in seq
        ):
            return f"{key!r} must be a list of parameter names"
    renames = entry.get("renames", {})
    if not isinstance(renames, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in renames.items()
    ):
        return "'renames' must map names to names"
    return None


def _strip_self(params: Tuple[str, ...]) -> Tuple[str, ...]:
    if params[:1] in (("self",), ("cls",)):
        return params[1:]
    return params


def _signature_issues(
    ref: FunctionInfo,
    eng: FunctionInfo,
    extra: frozenset,
    renames: Dict[str, str],
) -> Iterator[str]:
    """Compare two signatures after normalization; yield drift messages."""
    ref_pos = [renames.get(p, p) for p in _strip_self(ref.positional)]
    eng_pos = [p for p in _strip_self(eng.positional) if p not in extra]
    if ref_pos != eng_pos:
        yield (
            f"positional parameters differ: reference ({', '.join(ref_pos) or '-'}) "
            f"vs engine ({', '.join(eng_pos) or '-'})"
        )
    ref_kw = {renames.get(p, p) for p in ref.kwonly}
    eng_kw = {p for p in eng.kwonly if p not in extra}
    missing = sorted(ref_kw - eng_kw)
    added = sorted(eng_kw - ref_kw)
    if missing:
        yield f"keyword-only parameter(s) {missing} missing on the engine side"
    if added:
        yield f"engine adds undeclared keyword-only parameter(s) {added}"
    eng_params = set(eng_pos) | eng_kw
    for param in (*_strip_self(ref.positional), *ref.kwonly):
        mapped = renames.get(param, param)
        if mapped not in eng_params:
            continue  # already reported above
        ref_default = ref.defaults.get(param)
        eng_default = eng.defaults.get(mapped)
        if ref_default != eng_default:
            yield (
                f"default for {mapped!r} differs: reference "
                f"{ref_default or '<required>'} vs engine "
                f"{eng_default or '<required>'}"
            )
