"""REPRO108: complete type annotations on public planner/emulator APIs.

The package ships ``py.typed``: downstream type-checkers trust our
signatures.  In the modules the paper's error contract depends on
(:mod:`repro.core`, :mod:`repro.placement`, :mod:`repro.emulator`),
every public function must annotate every parameter and its return
type, otherwise a caller can pass a percent where a fraction is
expected and the type-checker stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

_SCOPED_PACKAGES = ("core", "placement", "emulator")

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class MissingAnnotationsRule(Rule):
    rule_id = "REPRO108"
    name = "missing-annotations"
    rationale = (
        "public core/placement/emulator APIs ship py.typed type "
        "information; annotate every parameter and the return type"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        yield from self._check_body(module, module.tree.body)

    def _check_body(
        self, module: Module, body: List[ast.stmt]
    ) -> Iterator[Finding]:
        """Walk public module-level and class-level definitions only.

        Nested functions are implementation details and exempt; private
        names (leading underscore) are exempt by definition.
        """
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    yield from self._check_function(module, stmt)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                yield from self._check_body(module, stmt.body)

    def _check_function(
        self, module: Module, node: _FunctionNode
    ) -> Iterator[Finding]:
        args = node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        missing = [
            param.arg
            for param in params
            if param.annotation is None and param.arg not in ("self", "cls")
        ]
        if missing:
            yield self.finding(
                module,
                node,
                f"public function {node.name}() is missing parameter "
                f"annotation(s): {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.finding(
                module,
                node,
                f"public function {node.name}() is missing its return "
                "annotation",
            )
