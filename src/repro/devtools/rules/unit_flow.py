"""REPRO112: unit-suffix discipline through calls and assignment chains.

REPRO105 checks *direct*, lexically visible flows: a ``_mb`` name into
a ``_gb`` slot.  This rule extends the same discipline through the two
places the lexical check goes blind:

* **call returns** — a function whose name carries no suffix but whose
  ``return`` statements all return ``_mb`` values produces megabytes;
  assigning its result to ``capacity_gb`` (or passing it to a ``_gb``
  parameter) is the same 1024× error one hop removed.  Functions whose
  *name* carries a suffix are additionally checked against their own
  returns (``def peak_mb(): ... return demand_gb`` is drift at the
  definition);
* **local chains** — ``x = demand_mb`` launders the suffix off the
  value; a later ``capacity_gb = x`` is invisible to REPRO105 but not
  to a one-pass local environment.

Callees are resolved through the project semantic model (import
aliases, ``self.``/``cls.`` methods, annotation-typed parameters,
``var = ClassName()`` locals), so the check crosses module boundaries.

The suffix vocabulary also grows beyond REPRO105's set with the
time/energy units this codebase threads through the experiment layer:
``_hours``, ``_days``, ``_kwh``, ``_wh`` (matched case-insensitively,
so imported ``EVAL_DAYS``-style constants participate).  Flows where
both units are in REPRO105's set *and* both ends are lexically visible
are skipped — REPRO105 already owns those — so each mixup is reported
exactly once.  As everywhere, arithmetic carries no suffix, which
exempts explicit conversions (``interval_hours / 24.0``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.asthelpers import UNIT_SUFFIXES, terminal_name
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register
from repro.devtools.semantics import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SemanticModel,
)

#: Units REPRO105 does not track; REPRO112 checks these even in direct,
#: lexically visible flows.
EXTENDED_SUFFIXES = ("hours", "days", "kwh", "wh")

_ALL_SUFFIXES = tuple(
    sorted(UNIT_SUFFIXES + EXTENDED_SUFFIXES, key=len, reverse=True)
)
_SUFFIX_RE = re.compile(r"_(%s)$" % "|".join(_ALL_SUFFIXES), re.IGNORECASE)
_BASE = frozenset(UNIT_SUFFIXES)

#: How a unit was established for a value expression.
_LEXICAL = "lexical"  #: visible in the terminal identifier (REPRO105 sees it)
_CHAIN = "chain"  #: carried through a local assignment
_RETURN = "return"  #: inferred from a callee's return statements


def unit_of(name: Optional[str]) -> Optional[str]:
    """Extended-vocabulary unit suffix of ``name``, lowercased."""
    if not name:
        return None
    match = _SUFFIX_RE.search(name)
    return match.group(1).lower() if match else None


class _Value:
    """A value expression's inferred unit and how we know it."""

    __slots__ = ("unit", "kind", "desc")

    def __init__(self, unit: str, kind: str, desc: str) -> None:
        self.unit = unit
        self.kind = kind
        self.desc = desc


@register
class UnitFlowRule(Rule):
    rule_id = "REPRO112"
    name = "unit-flow"
    rationale = (
        "unit suffixes must survive call returns and local assignment "
        "chains, and the _hours/_days/_kwh/_wh time-energy units follow "
        "the same discipline as REPRO105's set"
    )

    def __init__(self) -> None:
        self._computed_for: Optional[int] = None
        self._by_rel: Dict[str, List[Finding]] = {}
        self._return_units: Dict[str, Tuple[str, bool]] = {}

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        model = project.semantics
        if model is None:
            return
        if self._computed_for != id(project):
            self._by_rel = self._analyze(model)
            self._computed_for = id(project)
        yield from self._by_rel.get(module.rel, [])

    # ------------------------------------------------------------------
    # phase A: per-function return units (whole project, before any check)

    def _analyze(self, model: SemanticModel) -> Dict[str, List[Finding]]:
        self._return_units = {}
        for fn in model.functions.values():
            inferred = self._infer_return_unit(fn)
            if inferred is not None:
                self._return_units[fn.key] = inferred
        findings: Dict[str, List[Finding]] = {}
        for info in sorted(model.by_rel.values(), key=lambda i: i.rel):
            found = list(self._check_module(model, info))
            if found:
                findings[info.rel] = found
        return findings

    def _infer_return_unit(
        self, fn: FunctionInfo
    ) -> Optional[Tuple[str, bool]]:
        """``(unit, from_name)`` for a function, if one can be pinned.

        The function's own name suffix wins; otherwise the unit is
        inferred when every unit-bearing ``return`` agrees.
        """
        name_unit = unit_of(fn.name)
        if name_unit is not None:
            return name_unit, True
        seen = set()
        for ret in _own_returns(fn.node):
            unit = unit_of(terminal_name(ret.value)) if ret.value else None
            if unit is not None:
                seen.add(unit)
        if len(seen) == 1:
            return next(iter(seen)), False
        return None

    # ------------------------------------------------------------------
    # phase B: per-scope flow checking

    def _check_module(
        self, model: SemanticModel, info: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_scope(model, info, info.module.tree, None, None)
        for fn in info.functions.values():
            yield from self._check_scope(model, info, fn.node, fn, None)
        for cls in info.classes.values():
            for method in cls.methods.values():
                yield from self._check_scope(
                    model, info, method.node, method, cls
                )

    def _check_scope(
        self,
        model: SemanticModel,
        info: ModuleInfo,
        scope: ast.AST,
        fn: Optional[FunctionInfo],
        cls: Optional[ClassInfo],
    ) -> Iterator[Finding]:
        units: Dict[str, _Value] = {}  #: local name → carried unit
        instances: Dict[str, str] = (
            model.annotation_env(info, fn, cls) if fn is not None else {}
        )
        fn_unit = unit_of(fn.name) if fn is not None else None
        for node in _scope_nodes(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(
                    model, info, cls, units, instances, node
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    model, info, cls, units, instances, node
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pairing(
                    info, units, node, node.left, node.right,
                    "added/subtracted with",
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pairing(
                        info, units, node, left, right, "compared with"
                    )
            elif isinstance(node, ast.Return) and fn_unit is not None:
                value = (
                    self._value_of(model, info, cls, units, instances, node.value)
                    if node.value is not None
                    else None
                )
                if value is not None and value.unit != fn_unit:
                    yield self._finding(
                        info,
                        node,
                        f"{fn.qualname}() is suffixed '_{fn_unit}' but "
                        f"returns {value.desc} (unit '{value.unit}'); "
                        "convert explicitly or rename the function",
                    )

    def _check_assign(
        self, model, info, cls, units, instances, node
    ) -> Iterator[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if node.value is None:
            return
        value = self._value_of(model, info, cls, units, instances, node.value)
        # Track var = ClassName(...) for later method resolution.
        if isinstance(node.value, ast.Call):
            resolved = _resolve_chain(model, info, cls, instances, node.value.func)
            if resolved is not None and resolved[0] == "class":
                for target in targets:
                    if isinstance(target, ast.Name):
                        instances[target.id] = resolved[1]
        for target in targets:
            target_name = terminal_name(target)
            target_unit = unit_of(target_name)
            if (
                target_unit is not None
                and value is not None
                and value.unit != target_unit
                and not _owned_by_105(value, target_unit)
            ):
                yield self._finding(
                    info,
                    node,
                    f"assigning {value.desc} (unit '{value.unit}') to "
                    f"'{target_name}' (unit '{target_unit}'); convert "
                    "explicitly",
                )
            if isinstance(target, ast.Name):
                if target_unit is None and value is not None:
                    units[target.id] = _Value(
                        value.unit, _CHAIN, f"'{target.id}' ({value.desc})"
                    )
                else:
                    units.pop(target.id, None)

    def _check_call(
        self, model, info, cls, units, instances, node: ast.Call
    ) -> Iterator[Finding]:
        callee = _resolve_callable(model, info, cls, instances, node.func)
        if callee is None:
            return
        params = callee.positional
        if params[:1] in (("self",), ("cls",)):
            params = params[1:]
        slots: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                break
            slots.append((params[index], arg))
        kw_params = set(params) | set(callee.kwonly)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in kw_params:
                slots.append((keyword.arg, keyword.value))
        for param, arg in slots:
            param_unit = unit_of(param)
            if param_unit is None:
                continue
            value = self._value_of(model, info, cls, units, instances, arg)
            if (
                value is not None
                and value.unit != param_unit
                and not _owned_by_105(value, param_unit)
            ):
                yield self._finding(
                    info,
                    node,
                    f"passing {value.desc} (unit '{value.unit}') to "
                    f"parameter '{param}' of {callee.qualname}() (unit "
                    f"'{param_unit}'); convert explicitly",
                )

    def _check_pairing(
        self, info, units, node, left, right, verb
    ) -> Iterator[Finding]:
        sides = []
        for operand in (left, right):
            name = terminal_name(operand)
            if isinstance(operand, ast.Name) and operand.id in units:
                carried = units[operand.id]
                sides.append((carried.desc, carried.unit, carried.kind))
            else:
                sides.append((f"'{name}'", unit_of(name), _LEXICAL))
        (left_desc, left_unit, left_kind) = sides[0]
        (right_desc, right_unit, right_kind) = sides[1]
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        if (
            left_kind == _LEXICAL
            and right_kind == _LEXICAL
            and left_unit in _BASE
            and right_unit in _BASE
        ):
            return  # REPRO105 reports this one
        yield self._finding(
            info,
            node,
            f"{left_desc} (unit '{left_unit}') {verb} {right_desc} "
            f"(unit '{right_unit}'); convert explicitly",
        )

    # ------------------------------------------------------------------

    def _value_of(
        self, model, info, cls, units, instances, node: ast.expr
    ) -> Optional[_Value]:
        """Inferred unit of a value expression, or None (no opinion)."""
        if isinstance(node, ast.Name):
            if node.id in units:
                return units[node.id]
            unit = unit_of(node.id)
            return _Value(unit, _LEXICAL, f"'{node.id}'") if unit else None
        if isinstance(node, ast.Attribute):
            unit = unit_of(node.attr)
            return _Value(unit, _LEXICAL, f"'{node.attr}'") if unit else None
        if isinstance(node, ast.Call):
            callee = _resolve_callable(model, info, cls, instances, node.func)
            if callee is not None and callee.key in self._return_units:
                unit, from_name = self._return_units[callee.key]
                kind = _LEXICAL if from_name else _RETURN
                desc = (
                    f"the result of {callee.qualname}()"
                    if from_name
                    else f"the result of {callee.qualname}() (its returns "
                    f"carry '_{unit}')"
                )
                return _Value(unit, kind, desc)
            name = terminal_name(node.func)
            unit = unit_of(name)
            return (
                _Value(unit, _LEXICAL, f"the result of {name}()")
                if unit
                else None
            )
        return None

    def _finding(self, info: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=info.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def _owned_by_105(value: _Value, slot_unit: str) -> bool:
    """True when REPRO105 already reports this exact flow."""
    return (
        value.kind == _LEXICAL
        and value.unit in _BASE
        and slot_unit in _BASE
    )


def _resolve_chain(
    model: SemanticModel,
    info: ModuleInfo,
    cls: Optional[ClassInfo],
    instances: Dict[str, str],
    node: ast.AST,
) -> Optional[Tuple[str, str]]:
    """Resolve a Name/Attribute chain to ``(kind, key)`` in this scope."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = parts[0]
    if cls is not None and head in ("self", "cls") and len(parts) == 2:
        method = model.class_method(cls, parts[1])
        return ("function", method.key) if method is not None else None
    if head in instances:
        if len(parts) == 2:
            target = model.classes.get(instances[head])
            if target is not None:
                method = model.class_method(target, parts[1])
                if method is not None:
                    return ("function", method.key)
        return None
    resolved = model.resolve_dotted(info, parts)
    if resolved is None:
        return None
    return resolved.kind, resolved.key


def _resolve_callable(
    model: SemanticModel,
    info: ModuleInfo,
    cls: Optional[ClassInfo],
    instances: Dict[str, str],
    node: ast.AST,
) -> Optional[FunctionInfo]:
    """The FunctionInfo a call expression invokes, constructors included."""
    resolved = _resolve_chain(model, info, cls, instances, node)
    if resolved is None:
        return None
    kind, key = resolved
    if kind == "function":
        return model.functions.get(key)
    if kind == "class":
        target = model.classes.get(key)
        if target is not None:
            return model.class_method(target, "__init__")
    return None


def _own_returns(fn_node: ast.AST) -> Iterator[ast.Return]:
    """``return`` statements of a function, excluding nested defs."""
    for node in _scope_nodes(fn_node):
        if isinstance(node, ast.Return):
            yield node


def _scope_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Source-order walk of one scope, not descending into nested defs.

    Nested functions, lambdas, and class bodies are separate scopes
    (and, for model-visible functions, separately checked).
    """
    for child in ast.iter_child_nodes(root):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _scope_nodes(child)
