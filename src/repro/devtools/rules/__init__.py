"""Built-in rule set for :mod:`repro.devtools`.

Importing this package registers every built-in rule.  Each module
holds one rule so new rules are additive: drop a module here, import it
below, and the registry, CLI, pragma, and baseline machinery pick it up
unchanged.
"""

from repro.devtools.rules import (  # noqa: F401  (imported for registration)
    annotations,
    bare_except,
    cache_purity,
    dataclass_validation,
    dead_api,
    determinism,
    engine_parity,
    float_compare,
    mutable_defaults,
    no_print,
    unit_flow,
    unit_suffix,
    vectorization,
)
