"""REPRO102: forbid mutable default arguments.

A mutable default is evaluated once at definition time and shared by
every call; state accumulated by one planning run then leaks into the
next, which in this codebase typically means phantom VMs or stale
placements.  Use ``None`` (or an immutable tuple) and construct the
container inside the function.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.asthelpers import terminal_name
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)

_MUTABLE_FACTORIES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}


@register
class MutableDefaultRule(Rule):
    rule_id = "REPRO102"
    name = "mutable-default"
    rationale = (
        "mutable defaults are shared across calls; default to None and "
        "build the container inside the function"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                defaults = [
                    *node.args.defaults,
                    *(d for d in node.args.kw_defaults if d is not None),
                ]
                for default in defaults:
                    description = _describe_mutable(default)
                    if description is not None:
                        func = getattr(node, "name", "<lambda>")
                        yield self.finding(
                            module,
                            default,
                            f"{func}() has a mutable default ({description}); "
                            "use None and construct inside the function",
                        )


def _describe_mutable(node: ast.AST) -> Optional[str]:
    if isinstance(node, _MUTABLE_LITERALS):
        return type(node).__name__.lower().replace("comp", " comprehension")
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        if callee in _MUTABLE_FACTORIES:
            return f"{callee}()"
    return None
