"""REPRO103: forbid bare and silently-overbroad exception handlers.

A bare ``except:`` (or ``except BaseException:``) catches
``KeyboardInterrupt`` and ``SystemExit``, turning an aborted experiment
into a half-written result set.  ``except Exception: pass`` is flagged
too: swallowing every error hides exactly the capacity-accounting bugs
the emulator's error contract exists to catch.  Catch the narrowest
exception the operation can raise (:mod:`repro.exceptions` defines the
domain hierarchy).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register


@register
class BareExceptRule(Rule):
    rule_id = "REPRO103"
    name = "bare-except"
    rationale = (
        "bare/overbroad handlers swallow interrupts and real bugs; "
        "catch the narrowest exception type"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "name the exception type",
                )
            elif _names_base_exception(node.type):
                yield self.finding(
                    module,
                    node,
                    "'except BaseException:' catches interpreter-exit "
                    "signals; name the exception type",
                )
            elif _names_exception(node.type) and _swallows(node):
                yield self.finding(
                    module,
                    node,
                    "'except Exception: pass' silently swallows every "
                    "error; narrow the type or handle it",
                )


def _names_base_exception(node: ast.AST) -> bool:
    return _matches(node, "BaseException")


def _names_exception(node: ast.AST) -> bool:
    return _matches(node, "Exception")


def _matches(node: ast.AST, name: str) -> bool:
    if isinstance(node, ast.Tuple):
        return any(_matches(element, name) for element in node.elts)
    if isinstance(node, ast.Attribute):
        return node.attr == name
    return isinstance(node, ast.Name) and node.id == name


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )
