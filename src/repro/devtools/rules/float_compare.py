"""REPRO104: forbid exact equality on capacity/utilization floats.

Sized demands, utilizations, and capacities are sums and products of
floats; testing them with ``==``/``!=`` makes placement decisions flip
on 1-ulp rounding differences, which surfaces as irreproducible
emulator error.  Use :func:`repro.numerics.approx_eq` /
:func:`repro.numerics.approx_ne` (or :func:`math.isclose`) so the
tolerance is explicit.

Comparisons against ±infinity are exempt — infinity is an exact
sentinel, not an arithmetic result.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.devtools.asthelpers import is_infinity, terminal_name
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

#: Identifier patterns that mark a value as capacity/utilization-like.
_RESOURCE_NAME_RE = re.compile(
    r"(_mbps|_gbps|_mb|_gb|_mhz|_frac|_pct|_rpe2|_watts"
    r"|util|utilization|capacity|demand|headroom|load)s?$",
    re.IGNORECASE,
)


@register
class FloatEqualityRule(Rule):
    rule_id = "REPRO104"
    name = "float-equality"
    rationale = (
        "exact ==/!= on capacity/utilization floats flips on rounding "
        "noise; use repro.numerics.approx_eq/approx_ne"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if is_infinity(left) or is_infinity(right):
                    continue
                reason = _float_reason(left) or _float_reason(right)
                if reason is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    helper = (
                        "approx_eq" if isinstance(op, ast.Eq) else "approx_ne"
                    )
                    yield self.finding(
                        module,
                        node,
                        f"exact '{symbol}' on {reason}; use "
                        f"repro.numerics.{helper} (or math.isclose)",
                    )
                    break  # one finding per comparison chain is enough


def _float_reason(node: ast.AST) -> Optional[str]:
    """Why ``node`` looks like a float capacity/utilization value."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    name = terminal_name(node)
    if name is not None and _RESOURCE_NAME_RE.search(name):
        return f"capacity/utilization value {name!r}"
    return None
