"""REPRO106: resource-carrying dataclasses must validate themselves.

Every dataclass in :mod:`repro.infrastructure` / :mod:`repro.workloads`
whose fields carry unit suffixes (``memory_gb``, ``cpu_mhz``, ...) is a
capacity-accounting input: a negative capacity or NaN demand admitted
here propagates through sizing and placement and finally shows up as
inexplicable emulator error.  Such classes must define
``__post_init__`` and reject invalid values at construction time, the
pattern :class:`repro.infrastructure.VMDemand` establishes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.asthelpers import terminal_name, unit_suffix
from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register

_SCOPED_PACKAGES = ("infrastructure", "workloads")


@register
class UnvalidatedDataclassRule(Rule):
    rule_id = "REPRO106"
    name = "unvalidated-dataclass"
    rationale = (
        "dataclasses holding unit-suffixed resource fields must define "
        "__post_init__ validation (bad capacities corrupt accounting)"
    )

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        if not module.in_package(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
                continue
            resource_fields = _resource_fields(node)
            if not resource_fields:
                continue
            has_post_init = any(
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__post_init__"
                for stmt in node.body
            )
            if not has_post_init:
                fields = ", ".join(resource_fields)
                yield self.finding(
                    module,
                    node,
                    f"dataclass {node.name} has resource field(s) {fields} "
                    "but no __post_init__ validation",
                )


def _resource_fields(node: ast.ClassDef) -> List[str]:
    return [
        stmt.target.id
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign)
        and isinstance(stmt.target, ast.Name)
        and unit_suffix(stmt.target.id) is not None
    ]


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if terminal_name(target) == "dataclass":
            return True
    return False
