"""Small AST utilities shared by the built-in rules."""

from __future__ import annotations

import ast
import re
from typing import List, Optional

__all__ = [
    "UNIT_SUFFIXES",
    "dotted_name",
    "terminal_name",
    "unit_suffix",
    "is_infinity",
]

#: Unit suffixes carrying dimensional meaning in this codebase.  Longest
#: alternatives first so ``_mbps`` is not read as ``_mb`` + ``ps``.
UNIT_SUFFIXES = ("mbps", "gbps", "mb", "gb", "mhz", "watts", "frac", "pct", "rpe2")

_SUFFIX_RE = re.compile(r"_(%s)$" % "|".join(UNIT_SUFFIXES))


def unit_suffix(name: str) -> Optional[str]:
    """The unit suffix carried by ``name`` (``memory_gb`` → ``gb``), if any."""
    match = _SUFFIX_RE.search(name)
    return match.group(1) if match else None


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """Flatten a ``Name``/``Attribute`` chain into its dotted parts.

    ``np.random.rand`` → ``["np", "random", "rand"]``; anything with a
    non-name base (calls, subscripts) returns ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The identifier most likely to carry a unit suffix for ``node``.

    Names and attributes yield their last component; calls yield the
    callee's last component (so ``mb_to_gb(x)`` reads as ``gb``).
    Everything else — literals, arithmetic, subscripts — yields ``None``
    because its units cannot be inferred lexically, which conveniently
    exempts explicit conversions like ``memory_mb / 1024.0``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return terminal_name(node.func)
    return None


def is_infinity(node: ast.AST) -> bool:
    """True for expressions denoting ±inf (exactly comparable floats).

    Recognises ``float("inf")`` / ``float("-inf")``, ``math.inf``,
    ``np.inf`` / ``numpy.inf``, and unary ``-`` applied to any of them.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return is_infinity(node.operand)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and node.args[0].value.lstrip("+-").lower() in ("inf", "infinity")
    ):
        return True
    parts = dotted_name(node)
    return parts is not None and parts[-1] in ("inf", "infty", "Infinity")
