"""Report serialisation for ``repro-lint``: text, JSON, SARIF.

Text is the human/CI-log format (one ``path:line:col RULE message``
per line).  JSON is a stable machine-readable dump for scripting.
SARIF 2.1.0 is the interchange format GitHub code scanning ingests —
``.github/workflows/ci.yml`` uploads it so findings surface as inline
annotations on pull requests.

All formats consume the same post-pragma, post-baseline finding list,
so what CI annotates is exactly what fails the build.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.devtools.findings import PARSE_ERROR_ID, Finding
from repro.devtools.registry import all_rules

__all__ = ["FORMATS", "render"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render(findings: Sequence[Finding], fmt: str) -> str:
    """Serialise ``findings`` in ``fmt`` (one of :data:`FORMATS`)."""
    return FORMATS[fmt](findings)


def _render_text(findings: Sequence[Finding]) -> str:
    return "\n".join(finding.render() for finding in findings)


def _render_json(findings: Sequence[Finding]) -> str:
    payload = [
        {
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "rule_id": f.rule_id,
            "message": f.message,
        }
        for f in findings
    ]
    return json.dumps(payload, indent=2)


def _rule_metadata() -> List[Dict[str, object]]:
    rules: List[Dict[str, object]] = [
        {
            "id": PARSE_ERROR_ID,
            "name": "parse-error",
            "shortDescription": {"text": "file could not be parsed"},
        }
    ]
    for cls in all_rules():
        rules.append(
            {
                "id": cls.rule_id,
                "name": cls.name,
                "shortDescription": {"text": cls.rationale},
                "helpUri": (
                    "https://github.com/anonymous/repro/blob/main/docs/"
                    "STATIC_ANALYSIS.md"
                ),
            }
        )
    return rules


def _render_sarif(findings: Sequence[Finding]) -> str:
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; findings use the
                            # ast convention (0-based).
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/anonymous/repro/blob/main/"
                            "docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": _rule_metadata(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)


FORMATS = {
    "text": _render_text,
    "json": _render_json,
    "sarif": _render_sarif,
}
