"""Lint engine: file discovery, two-pass rule execution, suppression.

The engine walks the requested paths, parses each file once, runs every
enabled rule's collection pass (cross-module facts), then the checking
pass, and finally applies pragma suppressions.  Baseline subtraction is
left to the caller (:mod:`repro.devtools.cli`) so library users get the
raw findings.
"""

from __future__ import annotations

import ast
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.devtools.context import Module, Project
from repro.devtools.findings import PARSE_ERROR_ID, Finding
from repro.devtools.pragmas import filter_suppressed
from repro.devtools.registry import Rule, all_rules
from repro.devtools.semantics import SemanticModel

__all__ = ["discover_files", "lint_paths", "project_root_for"]

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "build", "dist"}

#: Directories holding deliberately-violating lint fixtures.  Skipped
#: during *directory expansion* only — naming a fixture file or a
#: fixtures directory explicitly still lints it, which is how the
#: devtools test suite exercises the rules.
_FIXTURE_DIRS = {"fixtures"}


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directories into a deduplicated list of .py files.

    Raises ``FileNotFoundError`` for paths that do not exist so the CLI
    can report usage errors (exit code 2) rather than silently linting
    nothing.  Skip directories (caches, VCS state, fixture trees) are
    matched against path components *below* each requested directory, so
    a repository living under e.g. ``/home/ci/build`` is not skipped
    wholesale.
    """
    skip = _SKIP_DIRS | _FIXTURE_DIRS
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_file():
            seen.setdefault(path.resolve(), None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                inner = candidate.relative_to(path).parts[:-1]
                if any(part in skip for part in inner):
                    continue
                seen.setdefault(candidate.resolve(), None)
        else:
            raise FileNotFoundError(path)
    return list(seen)


@lru_cache(maxsize=None)
def project_root_for(directory: Path) -> Optional[Path]:
    """The nearest ancestor of ``directory`` holding a ``pyproject.toml``.

    Display paths (and therefore baseline entries) anchor here, so
    reports and baselines match no matter which directory ``repro-lint``
    runs from.
    """
    current = directory
    while True:
        if (current / "pyproject.toml").is_file():
            return current
        if current.parent == current:
            return None
        current = current.parent


def _display_path(path: Path) -> str:
    """Render ``path`` relative to the project root (stable output).

    Files outside any detected project root fall back to cwd-relative
    rendering, keeping ad-hoc lints of scratch files readable.
    """
    root = project_root_for(path.parent)
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:  # pragma: no cover - root is an ancestor
            pass
    try:
        rel = path.relative_to(Path.cwd())
    except ValueError:
        rel = Path(os.path.relpath(path, Path.cwd()))
    return rel.as_posix()


def _load_modules(
    files: Iterable[Path], parse_failures: List[Finding]
) -> List[Module]:
    modules = []
    for path in files:
        rel = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            col = (getattr(exc, "offset", 1) or 1) - 1
            parse_failures.append(
                Finding(
                    path=rel,
                    line=line,
                    col=max(col, 0),
                    rule_id=PARSE_ERROR_ID,
                    message=f"cannot parse file: {getattr(exc, 'msg', exc)}",
                )
            )
            continue
        modules.append(Module(path=path, rel=rel, source=source, tree=tree))
    return modules


def _enabled_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    rules = []
    for cls in all_rules():
        if select is not None and cls.rule_id not in select:
            continue
        if ignore is not None and cls.rule_id in ignore:
            continue
        rules.append(cls())
    return rules


def lint_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint ``paths`` and return pragma-filtered findings, sorted.

    ``select``/``ignore`` take canonical rule ids (see
    :func:`repro.devtools.registry.resolve_rule_ids`).  Unparseable
    files surface as ``REPRO100`` findings rather than aborting the run.
    """
    parse_failures: List[Finding] = []
    modules = _load_modules(discover_files(paths), parse_failures)
    rules = _enabled_rules(select, ignore)

    project = Project()
    project.semantics = SemanticModel(modules)
    for rule in rules:
        for module in modules:
            rule.collect(module, project)

    findings = list(parse_failures)
    for module in modules:
        module_findings: List[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check(module, project))
        findings.extend(filter_suppressed(module_findings, module.source))
    return sorted(findings)
