"""Finding model shared by every lint rule and the reporting layer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PARSE_ERROR_ID"]

#: Pseudo-rule id used for files the engine cannot parse.
PARSE_ERROR_ID = "REPRO100"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule.

    Orders by ``(path, line, col, rule_id)`` so reports are stable and
    baseline subtraction is deterministic.

    Attributes
    ----------
    path:
        Display path of the offending file (POSIX separators, relative
        to the ``pyproject.toml``-anchored project root when one exists,
        else to the invocation directory) — the same convention baseline
        files use, so reports and baselines agree from any cwd.
    line / col:
        1-based line and 0-based column of the offending node, matching
        the ``ast`` convention used by flake8-style tools.
    rule_id:
        Stable identifier, e.g. ``REPRO104``.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col RULE-ID message`` for CLI output."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"
