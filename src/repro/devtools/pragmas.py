"""``# repro-lint: disable=...`` pragma parsing and suppression.

Two forms are recognised:

* ``# repro-lint: disable=REPRO104`` (or the symbolic rule name) on the
  offending line suppresses matching findings reported on that line;
* ``# repro-lint: disable-file=REPRO104`` anywhere in the file
  suppresses the rule for the whole module.

``disable=all`` suppresses every rule.  Multiple rules are separated by
commas.  Tokens are matched case-insensitively against rule ids and
symbolic names.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import all_rules

__all__ = ["parse_suppressions", "filter_suppressed"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """Extract per-line and file-level suppression tokens from source.

    Returns ``(line_map, file_level)`` where ``line_map`` maps 1-based
    line numbers to lowercased rule tokens and ``file_level`` applies to
    every line.  Tokenisation is purely lexical: a pragma inside a
    string literal is honoured, which is an acceptable trade for never
    needing a tokenizer pass.
    """
    line_map: Dict[int, FrozenSet[str]] = {}
    file_level: set = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        tokens = frozenset(
            token.strip().lower()
            for token in match.group("rules").split(",")
            if token.strip()
        )
        if match.group("scope") == "disable-file":
            file_level |= tokens
        else:
            line_map[lineno] = line_map.get(lineno, frozenset()) | tokens
    return line_map, frozenset(file_level)


def _tokens_for(rule_id: str) -> FrozenSet[str]:
    """All tokens that address ``rule_id`` (id, symbolic name, ``all``)."""
    names = {cls.rule_id.lower(): cls.name.lower() for cls in all_rules()}
    tokens = {"all", rule_id.lower()}
    if rule_id.lower() in names:
        tokens.add(names[rule_id.lower()])
    return frozenset(tokens)


def filter_suppressed(findings: List[Finding], source: str) -> List[Finding]:
    """Drop findings silenced by pragmas in ``source``."""
    line_map, file_level = parse_suppressions(source)
    if not line_map and not file_level:
        return findings
    kept = []
    for finding in findings:
        active = line_map.get(finding.line, frozenset()) | file_level
        if active and active & _tokens_for(finding.rule_id):
            continue
        kept.append(finding)
    return kept
