"""Pluggable rule registry.

Rules self-register via the :func:`register` decorator at import time;
:mod:`repro.devtools.rules` imports every built-in rule module so a
plain ``import repro.devtools`` yields a fully populated registry.
Third-party extensions follow the same pattern: subclass :class:`Rule`,
decorate with ``@register``, and import the module before linting.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Type

from repro.devtools.context import Module, Project
from repro.devtools.findings import Finding

__all__ = ["Rule", "register", "all_rules", "resolve_rule_ids", "RuleLookupError"]

_RULE_ID_RE = re.compile(r"^REPRO\d{3}$")
_registry: Dict[str, Type["Rule"]] = {}


class RuleLookupError(KeyError):
    """Raised when a ``--select``/``--ignore`` spec names no known rule."""


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`collect` is an optional first pass over every module used to
    build cross-module facts on the shared :class:`Project`.
    """

    #: Stable identifier (``REPRO1xx``) used in reports and baselines.
    rule_id: str = ""
    #: Symbolic name accepted by pragmas and ``--select``/``--ignore``.
    name: str = ""
    #: One-line rationale shown by ``repro-lint --list-rules``.
    rationale: str = ""

    def collect(self, module: Module, project: Project) -> None:
        """First pass: record cross-module facts (default: nothing)."""

    def check(self, module: Module, project: Project) -> Iterator[Finding]:
        """Second pass: yield findings for one module."""
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"{cls.__name__}: rule_id must match REPRO<3 digits>")
    if not cls.name:
        raise ValueError(f"{cls.__name__}: rules need a symbolic name")
    for existing in _registry.values():
        if existing.rule_id == cls.rule_id or existing.name == cls.name:
            raise ValueError(
                f"{cls.__name__}: duplicate rule id/name "
                f"({cls.rule_id}/{cls.name} clashes with {existing.__name__})"
            )
    _registry[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by rule id."""
    return [_registry[rule_id] for rule_id in sorted(_registry)]


def resolve_rule_ids(specs: List[str]) -> List[str]:
    """Map user-supplied ids or symbolic names onto canonical rule ids."""
    by_name = {cls.name.lower(): cls.rule_id for cls in _registry.values()}
    resolved = []
    for spec in specs:
        token = spec.strip().lower()
        if token.upper() in _registry:
            resolved.append(token.upper())
        elif token in by_name:
            resolved.append(by_name[token])
        else:
            raise RuleLookupError(spec)
    return resolved
