"""Project-wide semantic model for interprocedural lint rules.

The per-file rules (REPRO101-109) see one AST at a time; the
invariants added on top of them — engine/reference API parity, cache
purity of runner tasks, unit flow through helper returns — are
*cross-module* properties.  This module builds, once per lint run, the
whole-program facts those rules need:

* a **module graph**: every analyzed file named by its dotted module
  path (``src/repro/emulator/emulator.py`` → ``repro.emulator.emulator``,
  derived structurally from ``__init__.py`` package markers);
* per-module **symbol tables**: top-level functions, classes (with
  their methods), assignments, import aliases, and ``__all__`` exports;
* a **signature index**: every function/method with its positional,
  keyword-only, vararg parameters and default-value source text;
* a best-effort **call graph** whose edges resolve through
  ``import``/``from`` aliases, ``self``/``cls`` method calls, local
  ``var = ClassName(...)`` bindings, and parameter annotations naming
  project classes.

Resolution is deliberately conservative: anything dynamic (``getattr``,
computed attributes, star imports) resolves to nothing rather than to a
guess, so interprocedural rules under-report instead of inventing
findings.  The model is attached to the shared
:class:`~repro.devtools.context.Project` as ``project.semantics`` by
the engine before the collection pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.context import Module

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Resolution",
    "SemanticModel",
    "module_name_for",
    "walk_code",
]

#: Re-export chains (``from .emulator import ConsolidationEmulator`` in a
#: package ``__init__``) are followed at most this many hops.
_MAX_REEXPORT_HOPS = 4


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, derived from package structure.

    Walks parent directories while they contain ``__init__.py`` (the
    package root is the outermost such directory), so the name is
    independent of the invocation cwd.  Non-package files (scripts under
    ``examples/``, say) get their bare stem.
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts)) or path.stem


@dataclass
class FunctionInfo:
    """One function or method definition and its signature."""

    key: str  #: ``module:Qual.path`` — globally unique within a model.
    module: str  #: dotted module name
    name: str  #: bare function name
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    class_name: Optional[str]  #: enclosing class, for methods
    posonly: Tuple[str, ...]
    args: Tuple[str, ...]
    kwonly: Tuple[str, ...]
    vararg: Optional[str]
    kwarg: Optional[str]
    defaults: Dict[str, str]  #: param name → default expression source
    decorators: Tuple[str, ...]  #: dotted decorator names (call parens stripped)

    @property
    def positional(self) -> Tuple[str, ...]:
        return self.posonly + self.args

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """One class definition, its methods, and base-class names."""

    key: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo]
    bases: Tuple[str, ...]  #: dotted base-class expressions, as written


@dataclass
class ModuleInfo:
    """Symbol table and import environment for one analyzed module."""

    name: str
    rel: str
    module: Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    exports: Optional[Tuple[Tuple[str, int], ...]] = None  #: (__all__ name, line)
    referenced: FrozenSet[str] = frozenset()  #: identifiers this module mentions


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving a dotted name seen in some module.

    ``kind`` is ``"function"``/``"class"``/``"assign"``/``"module"``
    for project symbols (``key`` is then the model key) or
    ``"external"`` for names that leave the analyzed set (``key`` is
    the alias-substituted dotted path, e.g. ``numpy.random.rand``).
    """

    kind: str
    key: str


class SemanticModel:
    """Whole-program facts shared by the interprocedural rules."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_rel: Dict[str, ModuleInfo] = {}
        self._ambiguous: Set[str] = set()
        for module in modules:
            info = _build_module_info(module)
            if info.name in self.modules:
                self._ambiguous.add(info.name)
            else:
                self.modules[info.name] = info
            self.by_rel[info.rel] = info
        for name in self._ambiguous:
            # Colliding non-package stems (two loose scripts named
            # alike): drop from the name index, keep in by_rel.
            self.modules.pop(name, None)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for info in self.by_rel.values():
            for fn in info.functions.values():
                self.functions[fn.key] = fn
            for cls in info.classes.values():
                self.classes[cls.key] = cls
                for method in cls.methods.values():
                    self.functions[method.key] = method
        self.call_graph: Dict[str, Tuple[str, ...]] = {}
        for info in self.by_rel.values():
            self._build_edges(info)

    # ------------------------------------------------------------------
    # name resolution

    def module_for(self, module: Module) -> Optional[ModuleInfo]:
        return self.by_rel.get(module.rel)

    def resolve_dotted(
        self, info: ModuleInfo, parts: Sequence[str], _hops: int = 0
    ) -> Optional[Resolution]:
        """Resolve a dotted chain as seen from ``info`` to a symbol.

        Returns ``None`` for chains rooted in local variables or other
        constructs the model does not track.
        """
        if not parts or _hops > _MAX_REEXPORT_HOPS:
            return None
        head = parts[0]
        if head in info.imports:
            target = info.imports[head].split(".") + list(parts[1:])
            return self._resolve_absolute(target, _hops + 1)
        if head in info.functions and len(parts) == 1:
            return Resolution("function", info.functions[head].key)
        if head in info.classes:
            return self._resolve_in_class(info.classes[head], parts[1:])
        if head in info.assigns and len(parts) == 1:
            return Resolution("assign", f"{info.name}:{head}")
        if head in info.functions or head in info.assigns:
            return None  # attribute access on a local symbol
        return self._resolve_absolute(list(parts), _hops + 1)

    def _resolve_absolute(
        self, parts: List[str], _hops: int
    ) -> Optional[Resolution]:
        """Resolve a fully-substituted dotted path, longest module first."""
        for split in range(len(parts), 0, -1):
            module_name = ".".join(parts[:split])
            info = self.modules.get(module_name)
            if info is None:
                continue
            remainder = parts[split:]
            if not remainder:
                return Resolution("module", module_name)
            return self._resolve_symbol(info, remainder, _hops)
        return Resolution("external", ".".join(parts))

    def _resolve_symbol(
        self, info: ModuleInfo, remainder: List[str], _hops: int
    ) -> Optional[Resolution]:
        head = remainder[0]
        if head in info.functions and len(remainder) == 1:
            return Resolution("function", info.functions[head].key)
        if head in info.classes:
            return self._resolve_in_class(info.classes[head], remainder[1:])
        if head in info.assigns and len(remainder) == 1:
            return Resolution("assign", f"{info.name}:{head}")
        if head in info.imports and _hops <= _MAX_REEXPORT_HOPS:
            # Re-export: the symbol is imported into this module.
            target = info.imports[head].split(".") + remainder[1:]
            return self._resolve_absolute(target, _hops + 1)
        return None

    def _resolve_in_class(
        self, cls: ClassInfo, remainder: Sequence[str]
    ) -> Optional[Resolution]:
        if not remainder:
            return Resolution("class", cls.key)
        if len(remainder) == 1:
            method = self.class_method(cls, remainder[0])
            if method is not None:
                return Resolution("function", method.key)
        return None

    def class_method(
        self, cls: ClassInfo, name: str, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Look up a method on a class or (best-effort) its bases."""
        if name in cls.methods:
            return cls.methods[name]
        if _depth >= _MAX_REEXPORT_HOPS:
            return None
        info = self.modules.get(cls.module)
        if info is None:
            return None
        for base in cls.bases:
            resolved = self.resolve_dotted(info, base.split("."))
            if resolved is not None and resolved.kind == "class":
                found = self.class_method(
                    self.classes[resolved.key], name, _depth + 1
                )
                if found is not None:
                    return found
        return None

    def lookup(self, spec: str) -> Optional[Resolution]:
        """Resolve a manifest-style ``module.path:Symbol.method`` spec."""
        if ":" in spec:
            module_name, _, symbol = spec.partition(":")
            info = self.modules.get(module_name)
            if info is None:
                return None
            return self._resolve_symbol(info, symbol.split("."), 0)
        return self._resolve_absolute(spec.split("."), 0)

    # ------------------------------------------------------------------
    # call graph

    def _build_edges(self, info: ModuleInfo) -> None:
        for fn in info.functions.values():
            self.call_graph[fn.key] = tuple(self._edges_for(info, fn))
        for cls in info.classes.values():
            for method in cls.methods.values():
                self.call_graph[method.key] = tuple(
                    self._edges_for(info, method, cls)
                )

    def _edges_for(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        cls: Optional[ClassInfo] = None,
    ) -> Iterator[str]:
        env = self.annotation_env(info, fn, cls)
        # Bind ``var = ClassName()`` locals in a first pass: the AST walk
        # is breadth-first, not source order, so a binding can otherwise
        # be visited after the call sites that depend on it.  The env is
        # flow-insensitive, so order within the pass does not matter.
        for node in walk_code(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                resolved = self._resolve_node(info, node.value.func, env, cls)
                if resolved is not None and resolved.kind == "class":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = resolved.key
        seen: Set[str] = set()
        for node in walk_code(fn.node):
            for callee in self._callees(info, node, env, cls):
                if callee not in seen:
                    seen.add(callee)
                    yield callee

    def _callees(
        self,
        info: ModuleInfo,
        node: ast.AST,
        env: Dict[str, str],
        cls: Optional[ClassInfo],
    ) -> Iterator[str]:
        if not isinstance(node, (ast.Name, ast.Attribute)):
            return
        if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
            return
        resolved = self._resolve_node(info, node, env, cls)
        if resolved is None:
            return
        if resolved.kind == "function":
            yield resolved.key
        elif resolved.kind == "class":
            target = self.classes.get(resolved.key)
            if target is not None:
                for hook in ("__init__", "__post_init__"):
                    method = self.class_method(target, hook)
                    if method is not None:
                        yield method.key

    def _resolve_node(
        self,
        info: ModuleInfo,
        node: ast.AST,
        env: Dict[str, str],
        cls: Optional[ClassInfo],
    ) -> Optional[Resolution]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = parts[0]
        if cls is not None and head in ("self", "cls") and len(parts) == 2:
            method = self.class_method(cls, parts[1])
            if method is not None:
                return Resolution("function", method.key)
            return None
        if head in env and len(parts) == 2:
            target = self.classes.get(env[head])
            if target is not None:
                method = self.class_method(target, parts[1])
                if method is not None:
                    return Resolution("function", method.key)
            return None
        if head in env:
            return None
        return self.resolve_dotted(info, parts)

    def annotation_env(
        self,
        info: ModuleInfo,
        fn: FunctionInfo,
        cls: Optional[ClassInfo] = None,
    ) -> Dict[str, str]:
        """Map parameter names to project-class keys via annotations."""
        env: Dict[str, str] = {}
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env
        for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
            parts = _annotation_parts(arg.annotation)
            if parts is None:
                continue
            resolved = self.resolve_dotted(info, parts)
            if resolved is not None and resolved.kind == "class":
                env[arg.arg] = resolved.key
        return env

    # ------------------------------------------------------------------
    # reachability

    def reachable_from(
        self, roots: Sequence[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS over the call graph: reachable key → path from its root.

        The path starts at the root function key and ends at the
        reachable key itself (shortest by hop count, deterministic by
        insertion order).
        """
        paths: Dict[str, Tuple[str, ...]] = {}
        frontier: List[str] = []
        for root in roots:
            if root not in paths:
                paths[root] = (root,)
                frontier.append(root)
        while frontier:
            next_frontier: List[str] = []
            for key in frontier:
                for callee in self.call_graph.get(key, ()):
                    if callee in paths:
                        continue
                    paths[callee] = paths[key] + (callee,)
                    next_frontier.append(callee)
            frontier = next_frontier
        return paths


# ----------------------------------------------------------------------
# module-info construction


def _build_module_info(module: Module) -> ModuleInfo:
    info = ModuleInfo(
        name=module_name_for(module.path), rel=module.rel, module=module
    )
    _collect_imports(info, module.tree, is_package=module.path.stem == "__init__")
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = _function_info(
                info.name, node, class_name=None
            )
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _class_info(info.name, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id == "__all__":
                        info.exports = _parse_exports(value)
                    else:
                        info.assigns[target.id] = value
    info.referenced = frozenset(_referenced_identifiers(module.tree))
    return info


def _collect_imports(
    info: ModuleInfo, tree: ast.Module, *, is_package: bool
) -> None:
    # The package a relative import anchors to: the module itself for a
    # package __init__ (its dotted name *is* the package), the parent
    # for a plain module.
    package = info.name.split(".") if is_package else info.name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # level 1 = current package; each extra level pops one.
                anchor = package[: len(package) - (node.level - 1)]
                if node.level > len(package):
                    continue  # escapes the analyzed tree
                base = ".".join(anchor + ([node.module] if node.module else []))
                if not base:
                    continue
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


def _function_info(
    module_name: str,
    node: ast.FunctionDef,
    class_name: Optional[str],
) -> FunctionInfo:
    args = node.args
    posonly = tuple(a.arg for a in args.posonlyargs)
    positional = tuple(a.arg for a in args.args)
    kwonly = tuple(a.arg for a in args.kwonlyargs)
    defaults: Dict[str, str] = {}
    pos_all = posonly + positional
    for param, default in zip(pos_all[len(pos_all) - len(args.defaults):], args.defaults):
        defaults[param] = ast.unparse(default)
    for param, default in zip(kwonly, args.kw_defaults):
        if default is not None:
            defaults[param] = ast.unparse(default)
    decorators = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        parts = _dotted_parts(target)
        if parts:
            decorators.append(".".join(parts))
    qual = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        key=f"{module_name}:{qual}",
        module=module_name,
        name=node.name,
        node=node,
        class_name=class_name,
        posonly=posonly,
        args=positional,
        kwonly=kwonly,
        vararg=args.vararg.arg if args.vararg else None,
        kwarg=args.kwarg.arg if args.kwarg else None,
        defaults=defaults,
        decorators=tuple(decorators),
    )


def _class_info(module_name: str, node: ast.ClassDef) -> ClassInfo:
    methods: Dict[str, FunctionInfo] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = _function_info(
                module_name, stmt, class_name=node.name
            )
    bases = []
    for base in node.bases:
        parts = _dotted_parts(base)
        if parts:
            bases.append(".".join(parts))
    return ClassInfo(
        key=f"{module_name}:{node.name}",
        module=module_name,
        name=node.name,
        node=node,
        methods=methods,
        bases=tuple(bases),
    )


def _parse_exports(value: ast.expr) -> Optional[Tuple[Tuple[str, int], ...]]:
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    exports = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            exports.append((element.value, element.lineno))
        else:
            return None  # dynamic __all__: don't guess
    return tuple(exports)


def _referenced_identifiers(tree: ast.Module) -> Iterator[str]:
    """Identifiers a module mentions — the liveness corpus for REPRO113.

    Counts loads of names, attribute accesses, imported names, and
    identifier-shaped string constants (``getattr``-style dispatch
    tables), so dead-export detection errs towards "alive".  ``__all__``
    lists are excluded: an export naming itself must not count as a
    reference, or no export could ever be reported dead.
    """
    skipped: Set[int] = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        if (
            targets
            and node.value is not None
            and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            )
        ):
            for sub in ast.walk(node.value):
                skipped.add(id(sub))
    for node in ast.walk(tree):
        if id(node) in skipped:
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.isidentifier():
                yield node.value


def walk_code(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` minus annotation subtrees.

    Type annotations mention classes without calling them; excluding
    them keeps call-graph edges honest (a parameter annotated with a
    project class is tracked separately, via the annotation
    environment).
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for field_name, value in ast.iter_fields(node):
            if field_name in ("annotation", "returns"):
                continue
            if isinstance(value, ast.AST):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.AST))


def _dotted_parts(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _annotation_parts(annotation: Optional[ast.expr]) -> Optional[List[str]]:
    """Extract a class-name chain from a parameter annotation.

    Handles plain names, dotted names, ``Optional[X]`` (unwrapped), and
    string annotations (forward references).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        if all(part.isidentifier() for part in text.split(".")) and text:
            return text.split(".")
        return None
    if isinstance(annotation, ast.Subscript):
        base = _dotted_parts(annotation.value)
        if base and base[-1] == "Optional":
            inner = annotation.slice
            return _annotation_parts(inner) if isinstance(inner, ast.expr) else None
        return None
    return _dotted_parts(annotation)
