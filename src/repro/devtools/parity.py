"""Engine/reference pairing manifest for REPRO110 (engine-parity).

Every vectorized engine in this codebase is pinned to a retained scalar
reference by equivalence tests (``docs/PERFORMANCE.md``); this manifest
makes the *API* side of that contract static.  REPRO110 reads it (and
any other analyzed module defining a ``PARITY_MANIFEST``) and reports
when a declared pair's public methods or signatures drift apart —
catching the "changed the engine, forgot the reference" edit before the
equivalence suite does, and in code the suite cannot see (new
parameters with defaults, renamed keywords).

Manifest entries are plain literals (the rule parses them from the AST
without importing anything):

``reference`` / ``engine``
    ``module.path:Symbol`` or ``module.path:Symbol.method`` specs.  A
    pair of classes compares every same-named public method plus the
    explicit ``methods`` correspondences; a pair of callables compares
    just those signatures.  Pairs whose modules are not part of the
    analyzed set are skipped, so subset lints stay quiet.
``methods``
    Optional mapping of reference method name → list of engine method
    names for renamed counterparts (``fits`` → ``fits_mask``/``fits_one``).
``engine_extra``
    Parameter names the engine side adds (bin indices, the algorithm
    instance a free function takes instead of ``self``); they are
    removed from the engine signature before comparison.
``renames``
    Reference parameter name → engine parameter name, for batched
    variants that pluralize (``vm_id`` → ``vm_ids``).

Return annotations are deliberately *not* compared: scalar/matrix
twins legitimately return ``float`` vs ``np.ndarray``.
"""

from __future__ import annotations

__all__ = ["PARITY_MANIFEST"]

PARITY_MANIFEST = (
    # Scalar reference emulator ↔ columnar scatter-add emulator.
    {
        "reference": "repro.emulator.reference:ReferenceConsolidationEmulator",
        "engine": "repro.emulator.emulator:ConsolidationEmulator",
    },
    # Bin-at-a-time packing state ↔ array-backed bin state.  The array
    # engine addresses bins by index, hence the extra index parameters.
    {
        "reference": "repro.placement.binpacking:Bin",
        "engine": "repro.placement.arraybins:BinArray",
        "methods": {
            "fits": ["fits_mask", "fits_one"],
            "residual": ["residuals"],
        },
        "engine_extra": ["index", "indices"],
    },
    # Sticky dynamic repacking: scalar planner method ↔ array planner
    # free function (takes the algorithm instance in place of self).
    {
        "reference": "repro.core.dynamic:DynamicConsolidation.plan",
        "engine": "repro.core.dynamic_vector:plan_dynamic_array",
        "engine_extra": ["algorithm"],
    },
    # Scalar ↔ matrix peak prediction, per predictor.
    {
        "reference": "repro.sizing.prediction:OraclePredictor.predict_peak",
        "engine": "repro.sizing.prediction:OraclePredictor.predict_peak_matrix",
    },
    {
        "reference": "repro.sizing.prediction:LastIntervalPredictor.predict_peak",
        "engine": "repro.sizing.prediction:LastIntervalPredictor.predict_peak_matrix",
    },
    {
        "reference": "repro.sizing.prediction:EwmaPredictor.predict_peak",
        "engine": "repro.sizing.prediction:EwmaPredictor.predict_peak_matrix",
    },
    {
        "reference": "repro.sizing.prediction:PeriodicPeakPredictor.predict_peak",
        "engine": "repro.sizing.prediction:PeriodicPeakPredictor.predict_peak_matrix",
    },
    # Scalar ↔ batched sizing from predicted peaks.
    {
        "reference": "repro.sizing.estimator:SizeEstimator.estimate_from_values",
        "engine": "repro.sizing.estimator:SizeEstimator.estimate_matrix",
        "renames": {"vm_id": "vm_ids", "workload_class": "workload_classes"},
    },
)
