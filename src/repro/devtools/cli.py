"""``repro-lint`` — domain-aware static analysis for the repro codebase.

Exit codes follow CI conventions:

* ``0`` — no findings (after pragma and baseline subtraction);
* ``1`` — findings reported;
* ``2`` — usage error (unknown rule, missing path, bad baseline file).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Set

from repro.devtools import rules as _rules  # noqa: F401  (registers rules)
from repro.devtools.baseline import apply_baseline, load_baseline, write_baseline
from repro.devtools.engine import lint_paths, project_root_for
from repro.devtools.output import FORMATS, render
from repro.devtools.registry import RuleLookupError, all_rules, resolve_rule_ids

__all__ = ["main", "build_parser"]

#: Merge-base refs tried in order by ``--changed``; the first that
#: resolves wins, so clones without an ``origin`` remote still work.
_CHANGED_BASE_REFS = ("origin/main", "origin/master", "main")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the determinism, unit-discipline, "
            "and capacity-accounting invariants the paper reproduction "
            "depends on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report findings only in files changed since the merge base "
            "with origin/main (the whole tree is still analyzed, so "
            "cross-module rules keep full context); outside a git "
            "checkout this falls back to a full report"
        ),
    )
    parser.add_argument(
        "--format",
        choices=sorted(FORMATS),
        default="text",
        help="report format (default: text; sarif feeds GitHub code scanning)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        type=Path,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="subtract findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        type=Path,
        help="snapshot current findings as accepted debt and exit 0",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule finding count after the report (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_list(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return resolve_rule_ids([token for token in spec.split(",") if token.strip()])


def _git_lines(args: List[str]) -> List[str]:
    completed = subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True
    )
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_paths() -> Optional[Set[str]]:
    """Project-root-relative paths changed vs the merge base, or None.

    Changed = differing from ``merge-base HEAD <base>`` (committed or
    not) plus untracked files, i.e. everything this branch would bring
    to a pull request.  Returns ``None`` when git, the repository, or
    every candidate base ref is unavailable — the caller then reports
    everything rather than silently reporting nothing.
    """
    try:
        toplevel = Path(_git_lines(["rev-parse", "--show-toplevel"])[0])
        base = None
        for ref in _CHANGED_BASE_REFS:
            try:
                base = _git_lines(["merge-base", "HEAD", ref])[0]
                break
            except subprocess.CalledProcessError:
                continue
        if base is None:
            return None
        names = _git_lines(["diff", "--name-only", base, "--"])
        names += _git_lines(["ls-files", "--others", "--exclude-standard"])
    except (OSError, subprocess.CalledProcessError, IndexError):
        return None
    changed: Set[str] = set()
    for name in names:
        absolute = toplevel / name
        root = project_root_for(absolute.parent) or toplevel
        try:
            changed.add(absolute.relative_to(root).as_posix())
        except ValueError:
            changed.add(Path(name).as_posix())
    return changed


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.rule_id} {cls.name:24s} {cls.rationale}")
        return 0

    try:
        select = _parse_rule_list(args.select)
        ignore = _parse_rule_list(args.ignore)
    except RuleLookupError as exc:
        print(f"repro-lint: unknown rule {exc.args[0]!r}", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(
            [Path(p) for p in args.paths], select=select, ignore=ignore
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"repro-lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    if args.changed:
        changed = changed_paths()
        if changed is None:
            print(
                "repro-lint: --changed could not determine a merge base; "
                "reporting all findings",
                file=sys.stderr,
            )
        else:
            findings = [f for f in findings if f.path in changed]

    report = render(findings, args.format)
    if args.output is not None:
        args.output.write_text(report + "\n")
    elif report:
        print(report)

    if args.format == "text" and args.statistics and findings:
        counts = Counter(finding.rule_id for finding in findings)
        for rule_id, count in sorted(counts.items()):
            print(f"{count:6d} {rule_id}")

    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
