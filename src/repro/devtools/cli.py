"""``repro-lint`` — domain-aware static analysis for the repro codebase.

Exit codes follow CI conventions:

* ``0`` — no findings (after pragma and baseline subtraction);
* ``1`` — findings reported;
* ``2`` — usage error (unknown rule, missing path, bad baseline file).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional

from repro.devtools import rules as _rules  # noqa: F401  (registers rules)
from repro.devtools.baseline import apply_baseline, load_baseline, write_baseline
from repro.devtools.engine import lint_paths
from repro.devtools.registry import RuleLookupError, all_rules, resolve_rule_ids

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Static analysis enforcing the determinism, unit-discipline, "
            "and capacity-accounting invariants the paper reproduction "
            "depends on."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="subtract findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        type=Path,
        help="snapshot current findings as accepted debt and exit 0",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule finding count after the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_list(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return resolve_rule_ids([token for token in spec.split(",") if token.strip()])


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.rule_id} {cls.name:24s} {cls.rationale}")
        return 0

    try:
        select = _parse_rule_list(args.select)
        ignore = _parse_rule_list(args.ignore)
    except RuleLookupError as exc:
        print(f"repro-lint: unknown rule {exc.args[0]!r}", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(
            [Path(p) for p in args.paths], select=select, ignore=ignore
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: no such file or directory: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(
            f"repro-lint: wrote baseline with {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    for finding in findings:
        print(finding.render())

    if args.statistics and findings:
        counts = Counter(finding.rule_id for finding in findings)
        for rule_id, count in sorted(counts.items()):
            print(f"{count:6d} {rule_id}")

    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
