"""Per-module and cross-module analysis context.

Rules receive a :class:`Module` (one parsed file) and a
:class:`Project` (facts collected across *all* analyzed files in a
first pass).  The project-wide pass is what lets the unit-suffix rule
resolve positional arguments against function signatures defined in a
different module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.devtools.semantics import SemanticModel

__all__ = ["Module", "Project"]


@dataclass
class Module:
    """One Python source file under analysis."""

    path: Path
    rel: str
    source: str
    tree: ast.Module

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules scoped to specific packages."""
        return self.path.parts

    def in_package(self, *names: str) -> bool:
        """True when any path component matches one of ``names``."""
        return any(part in names for part in self.parts)

    @property
    def basename(self) -> str:
        return self.path.name


@dataclass
class Project:
    """Facts gathered across every analyzed module (collection pass).

    ``signatures`` maps a bare callable name to its positional parameter
    names.  A name defined more than once with *different* parameter
    lists is ambiguous and mapped to ``None`` so rules never guess.
    Dataclasses contribute their field order as a constructor signature.

    ``semantics`` is the whole-program model
    (:class:`~repro.devtools.semantics.SemanticModel`) the engine builds
    before the collection pass — module graph, symbol tables, call
    graph — for the interprocedural rules (REPRO110-113).
    """

    signatures: Dict[str, Optional[Tuple[str, ...]]] = field(default_factory=dict)
    semantics: Optional["SemanticModel"] = None

    def record_signature(self, name: str, params: Sequence[str]) -> None:
        """Register a callable's positional parameter names.

        Conflicting re-registrations poison the entry (set it to
        ``None``) rather than keeping either variant.
        """
        candidate = tuple(params)
        if name not in self.signatures:
            self.signatures[name] = candidate
        elif self.signatures[name] != candidate:
            self.signatures[name] = None

    def lookup_signature(self, name: str) -> Optional[Tuple[str, ...]]:
        """Return the unambiguous parameter names for ``name``, if any."""
        return self.signatures.get(name)
