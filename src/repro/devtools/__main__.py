"""Allow ``python -m repro.devtools`` as an alias for ``repro-lint``."""

from repro.devtools.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
