"""Baseline files: ratchet down pre-existing lint debt.

A baseline records, per file and rule, how many findings are accepted
as known debt.  ``repro-lint --baseline FILE`` subtracts those counts
(earliest findings first) so CI only fails on *new* violations, and
``--write-baseline FILE`` snapshots the current state.  Counts rather
than line numbers make the baseline robust to unrelated edits shifting
code up or down.

Deleting entries (or the whole file) ratchets the debt down; the linter
never needs the baseline to grow.

Format history: version 1 keyed entries by whatever path the engine
displayed (cwd-relative, so baselines written from different
directories disagreed); version 2 keys them by project-root-relative
paths (anchored at ``pyproject.toml``, matching finding output).
Version-1 files still load — their counts apply wherever the paths
happen to match — and any ``--write-baseline`` rewrites them as
version 2.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List

from repro.devtools.findings import Finding

__all__ = ["load_baseline", "write_baseline", "apply_baseline", "baseline_counts"]

_FORMAT_VERSION = 2
_ACCEPTED_VERSIONS = (1, _FORMAT_VERSION)

BaselineCounts = Dict[str, Dict[str, int]]


def baseline_counts(findings: List[Finding]) -> BaselineCounts:
    """Aggregate findings into ``{path: {rule_id: count}}`` form."""
    counts: Counter = Counter((f.path, f.rule_id) for f in findings)
    nested: BaselineCounts = {}
    for (path, rule_id), count in sorted(counts.items()):
        nested.setdefault(path, {})[rule_id] = count
    return nested


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Serialise current findings as an accepted-debt snapshot."""
    payload = {"version": _FORMAT_VERSION, "entries": baseline_counts(findings)}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> BaselineCounts:
    """Read a baseline file, validating its format version."""
    payload = json.loads(path.read_text())
    if (
        not isinstance(payload, dict)
        or payload.get("version") not in _ACCEPTED_VERSIONS
    ):
        raise ValueError(
            f"{path}: not a repro-lint baseline "
            f"(expected version in {_ACCEPTED_VERSIONS})"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: malformed baseline entries")
    return entries


def apply_baseline(
    findings: List[Finding], baseline: BaselineCounts
) -> List[Finding]:
    """Subtract baselined counts, suppressing the earliest findings first.

    Findings beyond the accepted count for their ``(path, rule)`` bucket
    are kept, so introducing a violation to an already-baselined file
    still fails the build.
    """
    budget = {
        (path, rule_id): count
        for path, rules in baseline.items()
        for rule_id, count in rules.items()
    }
    kept = []
    for finding in sorted(findings):
        key = (finding.path, finding.rule_id)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        kept.append(finding)
    return kept
