"""repro.devtools — domain-aware static analysis for the repro codebase.

The paper's headline claim rests on the emulator staying within a ≤5%
99th-percentile error of a real consolidation run (Section 5.1).  That
contract is easy to break silently: a MB value flowing into a GB
parameter, a utilization fraction treated as a percent, an unseeded
RNG making two "identical" experiments diverge.  This package encodes
those domain invariants as AST lint rules behind a pluggable registry,
with a ``repro-lint`` CLI suitable as a CI gate, per-line
``# repro-lint: disable=RULE`` pragmas, and a baseline file for
incremental debt burn-down.

Typical use::

    repro-lint src/repro                 # lint the library, exit 0/1
    repro-lint --list-rules              # what is enforced, and why
    repro-lint --write-baseline lint-baseline.json   # accept current debt

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from repro.devtools import rules as _rules  # noqa: F401  (registers rules)
from repro.devtools.baseline import (
    apply_baseline,
    baseline_counts,
    load_baseline,
    write_baseline,
)
from repro.devtools.cli import main
from repro.devtools.context import Module, Project
from repro.devtools.engine import discover_files, lint_paths
from repro.devtools.findings import PARSE_ERROR_ID, Finding
from repro.devtools.registry import (
    Rule,
    RuleLookupError,
    all_rules,
    register,
    resolve_rule_ids,
)

__all__ = [
    "PARSE_ERROR_ID",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "RuleLookupError",
    "all_rules",
    "apply_baseline",
    "baseline_counts",
    "discover_files",
    "lint_paths",
    "load_baseline",
    "main",
    "register",
    "resolve_rule_ids",
    "write_baseline",
]
