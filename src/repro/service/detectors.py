"""Per-host load detectors for the online controller.

OpenStack Neat's decomposition gives the controller two per-host
questions each cycle: *is this host underloaded* (vacate it and park the
host) and *is this host overloaded* (evict VMs before the SLA breaks).
Three detectors answer them:

* :class:`ThresholdUnderloadDetector` / :class:`ThresholdOverloadDetector`
  — the static baselines: compare the most recent utilization sample
  against a fixed fraction of capacity.
* :class:`MHODOverloadDetector` — a port of Neat's Markov Host Overload
  Detection algorithm (Beloglazov & Buyya, "Managing Overloaded Hosts
  for Dynamic Consolidation of Virtual Machines under Quality of
  Service Constraints", TPDS 2013): discretize the host's utilization
  history into states, estimate a Laplace-smoothed transition matrix,
  and flag the host when the chain's *stationary* probability of the
  overload state exceeds the permitted overload-time fraction.  Unlike
  the threshold detector it reacts to a host that keeps *returning* to
  saturation even when the current sample happens to be low.

Detectors are pure functions of the utilization history handed to them
— no clocks, no RNG — which is what lets the fault-injection harness
replay scripted histories deterministically.

Hand-checked fixture (pinned by ``tests/service/test_mhod.py``): the
history ``[0.1, 0.9, 0.9, 0.1, 0.9]`` with ``threshold=0.5``,
``n_states=2``, ``smoothing=1`` yields transition counts
``[[0, 2], [1, 1]]``, the smoothed matrix ``[[1/4, 3/4], [1/2, 1/2]]``
and stationary distribution ``[2/5, 3/5]`` — overload probability 0.6.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "MHODOverloadDetector",
    "ThresholdOverloadDetector",
    "ThresholdUnderloadDetector",
]


def _check_fraction(name: str, value: float) -> float:
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(
            f"{name} must be in (0, 1], got {value}"
        )
    return float(value)


class ThresholdUnderloadDetector:
    """Host is underloaded when its latest utilization is ≤ threshold.

    The classic static policy: a host running below ``threshold`` of
    capacity is a candidate for full vacation.  Operates on the most
    recent sample only — history length does not matter.
    """

    def __init__(self, threshold: float = 0.3) -> None:
        self.threshold = _check_fraction("threshold", threshold)

    def detect(self, utilization: Sequence[float]) -> bool:
        """True when the latest utilization sample is at or below the bar."""
        if len(utilization) == 0:
            return False
        return float(utilization[-1]) <= self.threshold


class ThresholdOverloadDetector:
    """Host is overloaded when its latest utilization is ≥ threshold."""

    def __init__(self, threshold: float = 0.9) -> None:
        self.threshold = _check_fraction("threshold", threshold)

    def detect(self, utilization: Sequence[float]) -> bool:
        """True when the latest utilization sample is at or above the bar."""
        if len(utilization) == 0:
            return False
        return float(utilization[-1]) >= self.threshold


class MHODOverloadDetector:
    """Markov-chain host overload detection (OpenStack Neat's MHOD).

    Parameters
    ----------
    threshold:
        Utilization at or above which a sample counts as the overload
        state (the top state of the discretization).
    otf_limit:
        Permitted overload-time fraction.  The host is flagged when the
        estimated stationary probability of the overload state exceeds
        this limit — i.e. when, under the fitted chain, the host would
        spend more than ``otf_limit`` of its time saturated.
    n_states:
        Number of discrete utilization states.  The top state is
        ``utilization >= threshold``; the range below the threshold is
        split into ``n_states - 1`` equal-width states.
    smoothing:
        Laplace pseudo-count added to every transition, so the matrix
        stays a proper stochastic matrix (and the chain irreducible)
        even for short histories that never visited some states.
    min_history:
        Minimum number of samples before the Markov estimate is
        trusted; shorter histories fall back to the static threshold
        test on the latest sample.
    """

    def __init__(
        self,
        threshold: float = 0.8,
        otf_limit: float = 0.3,
        n_states: int = 2,
        smoothing: float = 1.0,
        min_history: int = 4,
    ) -> None:
        self.threshold = _check_fraction("threshold", threshold)
        self.otf_limit = _check_fraction("otf_limit", otf_limit)
        if n_states < 2:
            raise ConfigurationError(
                f"n_states must be >= 2, got {n_states}"
            )
        if smoothing <= 0:
            raise ConfigurationError(
                f"smoothing must be > 0, got {smoothing}"
            )
        if min_history < 2:
            raise ConfigurationError(
                f"min_history must be >= 2, got {min_history}"
            )
        self.n_states = int(n_states)
        self.smoothing = float(smoothing)
        self.min_history = int(min_history)

    def discretize(self, utilization: Sequence[float]) -> np.ndarray:
        """Map utilization samples to state indices in ``[0, n_states)``.

        State ``n_states - 1`` is the overload state (``>= threshold``);
        the sub-threshold range is split into equal-width bins.
        """
        values = np.asarray(utilization, dtype=float)
        if values.size and not np.all(np.isfinite(values)):
            raise ConfigurationError("utilization history contains NaN/Inf")
        low = self.n_states - 1
        states = np.floor(
            np.clip(values, 0.0, None) / self.threshold * low
        ).astype(np.intp)
        return np.minimum(states, low)

    def transition_matrix(self, states: np.ndarray) -> np.ndarray:
        """Laplace-smoothed row-stochastic transition matrix estimate."""
        n = self.n_states
        counts = np.full((n, n), self.smoothing, dtype=float)
        src = np.asarray(states[:-1], dtype=np.intp)
        dst = np.asarray(states[1:], dtype=np.intp)
        np.add.at(counts, (src, dst), 1.0)
        return counts / counts.sum(axis=1, keepdims=True)

    def stationary_distribution(self, matrix: np.ndarray) -> np.ndarray:
        """Stationary distribution π with ``π P = π`` and ``Σπ = 1``.

        Solved as a least-squares system ``[Pᵀ - I; 1ᵀ] π = [0; 1]``;
        Laplace smoothing keeps the chain irreducible, so the solution
        is unique.
        """
        n = self.n_states
        system = np.empty((n + 1, n), dtype=float)
        system[:n] = matrix.T - np.eye(n)
        system[n] = 1.0
        rhs = np.zeros(n + 1, dtype=float)
        rhs[n] = 1.0
        pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        # Guard against least-squares round-off: clip and renormalise.
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def overload_probability(self, utilization: Sequence[float]) -> float:
        """Stationary probability of the overload state for a history."""
        states = self.discretize(utilization)
        if states.size < 2:
            return 0.0
        matrix = self.transition_matrix(states)
        return float(self.stationary_distribution(matrix)[-1])

    def detect(self, utilization: Sequence[float]) -> bool:
        """True when the host should be treated as overloaded.

        Short histories (fewer than ``min_history`` samples) fall back
        to the static threshold test on the latest sample.
        """
        if len(utilization) == 0:
            return False
        if len(utilization) < self.min_history:
            return float(utilization[-1]) >= self.threshold
        return self.overload_probability(utilization) > self.otf_limit
