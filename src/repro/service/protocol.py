"""Newline-delimited-JSON request protocol for ``repro-serve``.

One request per line, one JSON object per response line.  The protocol
layer is synchronous and transport-free — :func:`handle_request` maps a
raw line to a response dict — so the full op surface is unit-testable
without sockets; :mod:`repro.service.server` is a thin asyncio shell
around it.

Ops (``{"op": ..., ...}`` → ``{"ok": true, "op": ..., ...}``):

``ping``
    Liveness probe; echoes back.
``place``
    ``{"op": "place", "vm_id": "vm3"}`` → current host of the VM
    (``null`` while unassigned).
``assignment``
    The full VM→host mapping.
``ingest``
    ``{"op": "ingest", "tick": 7, "vm_id": "vm3", "cpu_util": 0.4,
    "memory_gb": 2.5}`` → whether the sample was accepted (duplicates
    and late samples are acknowledged but not accepted).
``replan``
    Run one replan cycle now; returns the cycle report.
``stats``
    Ingest/decision counters, latency and replan-scope percentiles.

Malformed requests yield ``{"ok": false, "error": ...}`` — the
connection stays up; a bad client request is never a server fault.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict

from repro.exceptions import ServiceError
from repro.service.controller import (
    ConsolidationController,
    CycleReport,
    MonitoringSample,
)

__all__ = ["handle_request"]


def _require(request: Dict[str, Any], key: str, kind: type) -> Any:
    if key not in request:
        raise ServiceError(f"request is missing {key!r}")
    value = request[key]
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ServiceError(
            f"{key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _report_payload(report: CycleReport) -> Dict[str, Any]:
    return {
        "cycle": report.cycle,
        "migrations": [list(move) for move in report.migrations],
        "overloaded_hosts": list(report.overloaded_hosts),
        "underloaded_hosts": list(report.underloaded_hosts),
        "touched_hosts": list(report.touched_hosts),
        "latency_seconds": report.latency_seconds,
        "deadline_hit": report.deadline_hit,
        "detector_errors": report.detector_errors,
    }


def _op_ping(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    return {}


def _op_place(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    vm_id = _require(request, "vm_id", str)
    return {"vm_id": vm_id, "host": controller.host_of(vm_id)}


def _op_assignment(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    return {"assignment": controller.plan.assignment()}


def _op_ingest(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    sample = MonitoringSample(
        tick=_require(request, "tick", int),
        vm_id=_require(request, "vm_id", str),
        cpu_util=_require(request, "cpu_util", float),
        memory_gb=_require(request, "memory_gb", float),
    )
    return {"accepted": controller.ingest(sample)}


def _op_replan(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    return _report_payload(controller.replan_cycle())


def _op_stats(
    controller: ConsolidationController, request: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "stats": controller.stats.snapshot(),
        "n_hosts": controller.plan.n_hosts,
        "n_vms": controller.plan.n_vms,
        "active_hosts": len(controller.plan.active_hosts()),
    }


_OPS: Dict[
    str,
    Callable[[ConsolidationController, Dict[str, Any]], Dict[str, Any]],
] = {
    "ping": _op_ping,
    "place": _op_place,
    "assignment": _op_assignment,
    "ingest": _op_ingest,
    "replan": _op_replan,
    "stats": _op_stats,
}


def handle_request(
    controller: ConsolidationController, line: str
) -> Dict[str, Any]:
    """Dispatch one NDJSON request line; never raises.

    Protocol errors (bad JSON, unknown op, missing fields) and
    controller-level :class:`~repro.exceptions.ServiceError` come back
    as ``{"ok": false, "error": ...}`` responses.
    """
    try:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"bad JSON: {exc}") from None
        if not isinstance(request, dict):
            raise ServiceError("request must be a JSON object")
        op = _require(request, "op", str)
        handler = _OPS.get(op)
        if handler is None:
            raise ServiceError(
                f"unknown op {op!r}; known: {sorted(_OPS)}"
            )
        response = handler(controller, request)
        response["ok"] = True
        response["op"] = op
        return response
    except ServiceError as exc:
        return {"ok": False, "error": str(exc)}
