"""``repro-serve``: run the online consolidation controller as a server.

Builds a seeded synthetic fleet, bootstraps the controller, then
serves the NDJSON protocol while a simulated monitoring firehose
streams demand updates through the ingest path.  Demo / integration
entry point — point ``nc`` at it:

.. code-block:: console

    $ repro-serve --port 7077 &
    $ printf '{"op": "stats"}\n' | nc 127.0.0.1 7077

See ``docs/SERVICE.md`` for the full op reference.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional, Sequence

import numpy as np

from repro.infrastructure.server import PhysicalServer, ServerSpec
from repro.service.clock import MonotonicClock
from repro.service.controller import ConsolidationController, ControllerConfig
from repro.service.harness import FaultInjector, FaultSpec, ScriptedFeed
from repro.service.server import run_firehose, serve_controller
from repro.workloads.rolling import RollingTraceStore

__all__ = ["build_demo_controller", "main"]


def build_demo_controller(
    n_hosts: int,
    n_vms: int,
    seed: int,
    *,
    warmup_points: int = 24,
    retention_points: int = 288,
) -> ConsolidationController:
    """Seeded synthetic fleet + warmed-up, bootstrapped controller."""
    rng = np.random.default_rng(seed)
    hosts = [
        PhysicalServer(
            f"host{i:03d}", ServerSpec(cpu_rpe2=1200.0, memory_gb=96.0)
        )
        for i in range(n_hosts)
    ]
    vm_ids = [f"vm{i:04d}" for i in range(n_vms)]
    capacity_rpe2 = rng.uniform(200.0, 600.0, n_vms)
    store = RollingTraceStore(
        vm_ids,
        capacity_rpe2,
        interval_hours=1.0,
        retention_points=retention_points,
    )
    base_util = rng.uniform(0.05, 0.45, n_vms)
    cpu_util = np.clip(
        base_util[:, None]
        + 0.1 * rng.standard_normal((n_vms, warmup_points)),
        0.0,
        1.0,
    )
    memory_gb = np.clip(
        rng.uniform(1.0, 8.0, n_vms)[:, None]
        + 0.2 * rng.standard_normal((n_vms, warmup_points)),
        0.1,
        None,
    )
    store.append_samples(cpu_util, memory_gb)
    controller = ConsolidationController(
        hosts,
        store,
        config=ControllerConfig(sizing_window_points=12),
        clock=MonotonicClock(),
    )
    controller.bootstrap()
    return controller


def _demo_feed(
    controller: ConsolidationController, n_ticks: int, seed: int
) -> ScriptedFeed:
    """A scripted stream that keeps the demo fleet gently churning."""
    rng = np.random.default_rng(seed + 1)
    n_vms = controller.store.n_servers
    cpu_util = np.clip(
        rng.uniform(0.05, 0.55, (n_vms, n_ticks))
        + 0.35 * (rng.random((n_vms, n_ticks)) < 0.05),
        0.0,
        1.0,
    )
    memory_gb = rng.uniform(1.0, 8.0, (n_vms, n_ticks))
    return ScriptedFeed(
        list(controller.store.vm_ids),
        cpu_util,
        memory_gb,
        start_tick=controller.store.total_points,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Online consolidation controller with a simulated "
            "monitoring firehose (NDJSON protocol)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7077)
    parser.add_argument("--hosts", type=int, default=8, dest="n_hosts")
    parser.add_argument("--vms", type=int, default=24, dest="n_vms")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tick-seconds",
        type=float,
        default=0.25,
        help="firehose delay between monitoring ticks",
    )
    parser.add_argument(
        "--feed-ticks",
        type=int,
        default=240,
        help="length of the scripted feed (loops forever)",
    )
    parser.add_argument(
        "--drop-rate", type=float, default=0.02,
        help="firehose sample drop probability",
    )
    parser.add_argument(
        "--duplicate-rate", type=float, default=0.02,
        help="firehose sample duplication probability",
    )
    parser.add_argument(
        "--delay-rate", type=float, default=0.02,
        help="firehose sample delay probability",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    controller = build_demo_controller(args.n_hosts, args.n_vms, args.seed)
    feed = _demo_feed(controller, args.feed_ticks, args.seed)
    injector = FaultInjector(
        FaultSpec(
            drop_rate=args.drop_rate,
            duplicate_rate=args.duplicate_rate,
            delay_rate=args.delay_rate,
            seed=args.seed,
        )
    )
    server = await serve_controller(controller, args.host, args.port)
    address = server.sockets[0].getsockname()
    print(f"repro-serve listening on {address[0]}:{address[1]}")
    print(
        f"fleet: {controller.plan.n_hosts} hosts, "
        f"{controller.plan.n_vms} VMs, seed {args.seed}"
    )
    print('try: printf \'{"op": "stats"}\\n\' | nc %s %s' % address[:2])
    firehose = asyncio.ensure_future(
        run_firehose(
            controller,
            feed,
            injector=injector,
            tick_seconds=args.tick_seconds,
            replan_every=4,
            repeat=True,
        )
    )
    try:
        async with server:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        firehose.cancel()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shutting down")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
