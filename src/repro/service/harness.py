"""Deterministic simulation and fault-injection harness.

Three pieces, composable and individually testable:

* :class:`ScriptedFeed` — turns a ``(n_vms, n_ticks)`` demand script
  into per-tick batches of
  :class:`~repro.service.controller.MonitoringSample`.
* :class:`FaultInjector` — a seeded stream mangler that drops,
  duplicates, and delays samples.  Delayed samples are re-delivered a
  configurable number of ticks later, which exercises both the
  controller's out-of-order buffering (delay shorter than the flush
  horizon) and its late-drop path (delay behind the watermark).
* :class:`SimulationHarness` — drives a
  :class:`~repro.service.controller.ConsolidationController` under a
  :class:`~repro.service.clock.VirtualClock`: deliver a tick's
  (mangled) samples, advance virtual time, replan on a fixed cadence,
  collect every :class:`~repro.service.controller.CycleReport`.

Everything is seeded (REPRO101): the same scenario and seed replay
the same faults, the same flush order, and — because the controller's
decision path never reads the clock — the same schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, ServiceError
from repro.service.controller import (
    ConsolidationController,
    CycleReport,
    MonitoringSample,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "ScriptedFeed",
    "SimulationHarness",
]


class ScriptedFeed:
    """Per-tick monitoring batches from a scripted demand matrix."""

    def __init__(
        self,
        vm_ids: Sequence[str],
        cpu_util: np.ndarray,
        memory_gb: np.ndarray,
        start_tick: int = 0,
    ) -> None:
        cpu = np.asarray(cpu_util, dtype=float)
        mem = np.asarray(memory_gb, dtype=float)
        if cpu.shape != mem.shape or cpu.ndim != 2:
            raise ConfigurationError(
                "ScriptedFeed: cpu_util and memory_gb must be matching "
                f"2-D matrices, got {cpu.shape} / {mem.shape}"
            )
        if cpu.shape[0] != len(vm_ids):
            raise ConfigurationError(
                f"ScriptedFeed: {len(vm_ids)} vm_ids but "
                f"{cpu.shape[0]} demand rows"
            )
        self.vm_ids = tuple(vm_ids)
        self.cpu_util = cpu
        self.memory_gb = mem
        self.start_tick = int(start_tick)

    @property
    def n_ticks(self) -> int:
        return int(self.cpu_util.shape[1])

    def tick_batch(self, index: int) -> List[MonitoringSample]:
        """All VMs' samples for script column ``index``."""
        if not 0 <= index < self.n_ticks:
            raise ServiceError(
                f"ScriptedFeed has no tick index {index}"
            )
        tick = self.start_tick + index
        return [
            MonitoringSample(
                tick,
                vm_id,
                float(self.cpu_util[row, index]),
                float(self.memory_gb[row, index]),
            )
            for row, vm_id in enumerate(self.vm_ids)
        ]

    def batches(self) -> Iterable[List[MonitoringSample]]:
        for index in range(self.n_ticks):
            yield self.tick_batch(index)


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault rates for a monitoring stream.

    Rates are independent per sample.  A delayed sample is re-delivered
    ``delay_ticks`` batches later — with the default flush-on-complete
    policy that makes it *late* (behind the watermark) whenever its
    tick completed without it, exercising the drop path; shorter
    horizons exercise reordering inside the pending buffer.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ticks: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.delay_ticks < 1:
            raise ConfigurationError(
                f"delay_ticks must be >= 1, got {self.delay_ticks}"
            )


class FaultInjector:
    """Applies a :class:`FaultSpec` to per-tick sample batches."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        #: Samples held back, keyed by the batch index that releases them.
        self._delayed: Dict[int, List[MonitoringSample]] = {}
        self._batch_index = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def mangle(
        self, batch: Sequence[MonitoringSample]
    ) -> List[MonitoringSample]:
        """One tick's batch in, the mangled delivery order out."""
        spec = self.spec
        rng = self._rng
        # Samples whose delay expired are delivered *after* the current
        # batch — out of order by construction.
        released = self._delayed.pop(self._batch_index, [])
        out: List[MonitoringSample] = []
        for sample in batch:
            if spec.drop_rate and rng.random() < spec.drop_rate:
                self.dropped += 1
                continue
            if spec.delay_rate and rng.random() < spec.delay_rate:
                release_at = self._batch_index + spec.delay_ticks
                self._delayed.setdefault(release_at, []).append(sample)
                self.delayed += 1
                continue
            out.append(sample)
            if spec.duplicate_rate and rng.random() < spec.duplicate_rate:
                out.append(sample)
                self.duplicated += 1
        out.extend(released)
        self._batch_index += 1
        return out

    def drain(self) -> List[MonitoringSample]:
        """Everything still held back (end-of-stream flush)."""
        remaining = [
            sample
            for batch_index in sorted(self._delayed)
            for sample in self._delayed[batch_index]
        ]
        self._delayed.clear()
        return remaining


class SimulationHarness:
    """Replays a scripted feed through a controller deterministically.

    The controller must be constructed with a
    :class:`~repro.service.clock.VirtualClock`; the harness advances it
    ``seconds_per_tick`` per delivered batch so latency accounting and
    deadline behaviour replay exactly.
    """

    def __init__(
        self,
        controller: ConsolidationController,
        feed: ScriptedFeed,
        *,
        injector: Optional[FaultInjector] = None,
        replan_every: int = 1,
        seconds_per_tick: float = 1.0,
    ) -> None:
        if replan_every < 1:
            raise ConfigurationError(
                f"replan_every must be >= 1, got {replan_every}"
            )
        if seconds_per_tick < 0:
            raise ConfigurationError(
                "seconds_per_tick must be >= 0, got "
                f"{seconds_per_tick}"
            )
        clock = controller.clock
        if not hasattr(clock, "advance"):
            raise ConfigurationError(
                "SimulationHarness needs a controller on a VirtualClock"
            )
        self.controller = controller
        self.feed = feed
        self.injector = injector
        self.replan_every = int(replan_every)
        self.seconds_per_tick = float(seconds_per_tick)
        self.reports: List[CycleReport] = []
        self.ingest_errors = 0

    def _deliver(self, batch: Sequence[MonitoringSample]) -> None:
        for sample in batch:
            try:
                self.controller.ingest(sample)
            except ServiceError:
                # Malformed samples degrade telemetry, not the loop.
                self.ingest_errors += 1

    def run(self) -> List[CycleReport]:
        """Replay the whole feed; returns every cycle's report."""
        for index, batch in enumerate(self.feed.batches()):
            if self.injector is not None:
                batch = self.injector.mangle(batch)
            self._deliver(batch)
            self.controller.clock.advance(self.seconds_per_tick)
            if (index + 1) % self.replan_every == 0:
                self.reports.append(self.controller.replan_cycle())
        if self.injector is not None:
            self._deliver(self.injector.drain())
        self.controller.flush_pending()
        self.reports.append(self.controller.replan_cycle())
        return self.reports

    def migrations(self) -> List[Tuple[str, str, str]]:
        """All migrations across the run, in decision order."""
        return [
            move for report in self.reports for move in report.migrations
        ]
