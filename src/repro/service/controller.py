"""Online consolidation controller: streaming ingest + delta replan.

:class:`ConsolidationController` is the event loop at the heart of
``repro-serve``.  It wires together the pieces the batch planner keeps
implicit:

1. **Ingest** — :meth:`ingest` buffers out-of-order monitoring samples
   per tick behind a *watermark*: a tick's column is appended to the
   :class:`~repro.workloads.rolling.RollingTraceStore` once every VM
   reported (or when a later tick completes first, in which case the
   missing cells are gap-filled from last-known values and counted).
   Duplicates are ignored, late samples (behind the watermark) are
   dropped; both are counted, never raised.
2. **Detect** — each :meth:`replan_cycle` measures per-host utilization
   from the latest flushed column and runs the per-host underload /
   overload detectors over a bounded history window.  A detector that
   raises mid-sweep is counted (``detector_errors``) and its host is
   skipped for the cycle — one broken policy never takes the loop down.
3. **Select + delta-repack** — flagged hosts get their VMs re-sized
   from the rolling peak window, then overloaded hosts evict VMs in
   selector order and underloaded hosts are vacated all-or-nothing.
   Every move goes through
   :meth:`~repro.core.incremental.IncrementalPlan.apply_delta`, which
   is atomic — a misfit mid-cycle can fail a *move*, never corrupt the
   plan — and only the affected hosts' accumulators are touched, which
   is what keeps per-cycle work bounded by the flagged set rather than
   the fleet (the soak test pins p99 replan scope ≪ fleet size).

``rebuild_plan_each_cycle=True`` turns the controller into its own
batch twin: the plan is rebuilt from scratch (canonical folds) at the
top of every cycle, and because
:class:`~repro.core.incremental.IncrementalPlan`'s canonical-fold
discipline makes a delta-mutated plan bitwise identical to a rebuilt
one, both modes must produce identical schedules over any stream —
the equivalence the fault-injection suite pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.incremental import HostCapacities, IncrementalPlan
from repro.exceptions import ConfigurationError, PlacementError, ServiceError
from repro.infrastructure.server import PhysicalServer
from repro.service.clock import Clock, MonotonicClock
from repro.service.detectors import (
    MHODOverloadDetector,
    ThresholdUnderloadDetector,
)
from repro.service.selection import MinimumMigrationTimeSelector, VMSelector
from repro.workloads.rolling import RollingTraceStore

__all__ = [
    "ConsolidationController",
    "ControllerConfig",
    "ControllerStats",
    "CycleReport",
    "MonitoringSample",
]


@dataclass(frozen=True)
class MonitoringSample:
    """One VM's demand report for one monitoring tick.

    ``tick`` is the stream position (column index in the rolling
    store's lifetime numbering); ``cpu_util`` is the utilization
    fraction of the VM's source-server capacity.
    """

    tick: int
    vm_id: str
    cpu_util: float
    memory_gb: float


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables for the online controller.

    Parameters
    ----------
    utilization_bound:
        Packing headroom, same convention as the batch planners.
    sizing_window_points:
        Trailing columns whose per-VM peak becomes the sized demand
        when a flagged host's VMs are refreshed.
    history_points:
        Per-host utilization history retained for the detectors.
    deadline_seconds:
        Per-cycle time budget.  When exceeded mid-cycle the remaining
        flagged hosts are deferred to the next cycle (counted in
        ``deadline_aborts``); the plan is always left consistent.
    rebuild_plan_each_cycle:
        Equivalence-twin mode: rebuild the plan from scratch at the top
        of every cycle instead of carrying delta-mutated state.
    stats_window:
        Bounded sample count for latency / replan-scope percentiles.
    """

    utilization_bound: float = 0.9
    sizing_window_points: int = 12
    history_points: int = 32
    deadline_seconds: float = float("inf")
    rebuild_plan_each_cycle: bool = False
    stats_window: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization_bound <= 1.0:
            raise ConfigurationError(
                "utilization_bound must be in (0, 1], got "
                f"{self.utilization_bound}"
            )
        if self.sizing_window_points <= 0:
            raise ConfigurationError(
                "sizing_window_points must be > 0, got "
                f"{self.sizing_window_points}"
            )
        if self.history_points <= 0:
            raise ConfigurationError(
                f"history_points must be > 0, got {self.history_points}"
            )
        if self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.stats_window <= 0:
            raise ConfigurationError(
                f"stats_window must be > 0, got {self.stats_window}"
            )


@dataclass(frozen=True)
class CycleReport:
    """What one :meth:`ConsolidationController.replan_cycle` did."""

    cycle: int
    migrations: Tuple[Tuple[str, str, str], ...]
    overloaded_hosts: Tuple[str, ...]
    underloaded_hosts: Tuple[str, ...]
    touched_hosts: Tuple[str, ...]
    latency_seconds: float
    deadline_hit: bool
    detector_errors: int


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return float(ordered[index])


@dataclass
class ControllerStats:
    """Monotonic counters + bounded windows behind the ``/stats`` op."""

    cycles: int = 0
    samples_ingested: int = 0
    duplicates_ignored: int = 0
    late_dropped: int = 0
    gaps_filled: int = 0
    ticks_flushed: int = 0
    detector_errors: int = 0
    placement_failures: int = 0
    vacate_failures: int = 0
    deadline_aborts: int = 0
    migrations_total: int = 0
    latency_seconds_window: Deque[float] = field(default_factory=deque)
    replan_scope_window: Deque[int] = field(default_factory=deque)

    def record_cycle(
        self, latency_seconds: float, scope: int, window: int
    ) -> None:
        self.cycles += 1
        self.latency_seconds_window.append(latency_seconds)
        self.replan_scope_window.append(scope)
        while len(self.latency_seconds_window) > window:
            self.latency_seconds_window.popleft()
        while len(self.replan_scope_window) > window:
            self.replan_scope_window.popleft()

    def snapshot(self) -> Dict[str, float]:
        """Flat JSON-ready view (the ``/stats`` response payload)."""
        latencies = list(self.latency_seconds_window)
        scopes = [float(s) for s in self.replan_scope_window]
        return {
            "cycles": self.cycles,
            "samples_ingested": self.samples_ingested,
            "duplicates_ignored": self.duplicates_ignored,
            "late_dropped": self.late_dropped,
            "gaps_filled": self.gaps_filled,
            "ticks_flushed": self.ticks_flushed,
            "detector_errors": self.detector_errors,
            "placement_failures": self.placement_failures,
            "vacate_failures": self.vacate_failures,
            "deadline_aborts": self.deadline_aborts,
            "migrations_total": self.migrations_total,
            "latency_seconds_p50": _percentile(latencies, 0.50),
            "latency_seconds_p99": _percentile(latencies, 0.99),
            "replan_scope_p50": _percentile(scopes, 0.50),
            "replan_scope_p99": _percentile(scopes, 0.99),
            "replan_scope_max": max(scopes) if scopes else 0.0,
        }


class ConsolidationController:
    """Event loop: ingest → detect → select → delta-repack.

    Parameters
    ----------
    hosts:
        The physical fleet (fixed for the controller's life).
    store:
        Rolling demand store; ticks appended via :meth:`ingest` (or
        pre-seeded via
        :meth:`~repro.workloads.rolling.RollingTraceStore.from_traces`).
    config:
        Tunables; defaults are sensible for tests and demos.
    overload_detector / underload_detector / selector:
        Policy objects; default to MHOD overload, static threshold
        underload, and minimum-migration-time selection.
    clock:
        Time source for latency and deadline accounting; virtual in
        tests, monotonic in serving.
    """

    def __init__(
        self,
        hosts: Sequence[PhysicalServer],
        store: RollingTraceStore,
        *,
        config: Optional[ControllerConfig] = None,
        overload_detector: Optional[MHODOverloadDetector] = None,
        underload_detector: Optional[ThresholdUnderloadDetector] = None,
        selector: Optional[VMSelector] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.config = config if config is not None else ControllerConfig()
        self.store = store
        self.caps = HostCapacities(hosts, self.config.utilization_bound)
        self.plan = IncrementalPlan(
            self.caps,
            store.vm_ids,
            [0.0] * store.n_servers,
            [0.0] * store.n_servers,
        )
        self.overload_detector = (
            overload_detector
            if overload_detector is not None
            else MHODOverloadDetector()
        )
        self.underload_detector = (
            underload_detector
            if underload_detector is not None
            else ThresholdUnderloadDetector()
        )
        self.selector: VMSelector = (
            selector if selector is not None else MinimumMigrationTimeSelector()
        )
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.stats = ControllerStats()
        self._host_cpu_rpe2 = np.array([h.cpu_rpe2 for h in hosts])
        self._history: List[Deque[float]] = [
            deque(maxlen=self.config.history_points) for _ in hosts
        ]
        # Ingest state: ticks < watermark are flushed (or dropped late).
        n = store.n_servers
        self._watermark = store.total_points
        self._pending: Dict[int, Dict[int, Tuple[float, float]]] = {}
        if store.n_points:
            self._last_cpu_util = np.array(store.last_cpu_util())
            self._last_memory_gb = np.array(store.last_memory_gb())
        else:
            self._last_cpu_util = np.zeros(n)
            self._last_memory_gb = np.zeros(n)

    # -- ingest ----------------------------------------------------------

    def ingest(self, sample: MonitoringSample) -> bool:
        """Buffer one monitoring sample; True if accepted.

        Duplicate (tick, vm) pairs and samples behind the watermark are
        counted and discarded without raising — a noisy feed degrades
        telemetry, not the control loop.  Malformed samples (unknown
        VM, non-finite or negative values) raise
        :class:`~repro.exceptions.ServiceError`.
        """
        if not np.isfinite(sample.cpu_util) or not np.isfinite(
            sample.memory_gb
        ):
            raise ServiceError(
                f"sample for {sample.vm_id!r} has non-finite values"
            )
        if sample.cpu_util < 0 or sample.memory_gb < 0:
            raise ServiceError(
                f"sample for {sample.vm_id!r} has negative demand"
            )
        try:
            row = self.store.row_of(sample.vm_id)
        except Exception:
            raise ServiceError(
                f"sample for unknown vm_id {sample.vm_id!r}"
            ) from None
        self._sync_watermark()
        if sample.tick < self._watermark:
            self.stats.late_dropped += 1
            return False
        bucket = self._pending.setdefault(sample.tick, {})
        if row in bucket:
            self.stats.duplicates_ignored += 1
            return False
        bucket[row] = (float(sample.cpu_util), float(sample.memory_gb))
        self.stats.samples_ingested += 1
        if len(bucket) == self.store.n_servers:
            self._flush_through(sample.tick)
        return True

    def flush_pending(self) -> int:
        """Force-flush every buffered tick; returns columns appended."""
        self._sync_watermark()
        if not self._pending:
            return 0
        return self._flush_through(max(self._pending))

    def _sync_watermark(self) -> None:
        """Catch up after columns were appended to the store directly.

        Seeding warmup data into the rolling store between controller
        construction and the first ingest is a supported bootstrap
        pattern; the stream position moves with the store, and any
        buffered ticks the external append overtook become late.
        """
        if self.store.total_points <= self._watermark:
            return
        self._watermark = self.store.total_points
        self._last_cpu_util = np.array(self.store.last_cpu_util())
        self._last_memory_gb = np.array(self.store.last_memory_gb())
        for tick in [t for t in self._pending if t < self._watermark]:
            self.stats.late_dropped += len(self._pending.pop(tick))

    def _flush_through(self, tick: int) -> int:
        """Append columns for every tick up to ``tick`` inclusive.

        Ticks with no (or partial) data are gap-filled from last-known
        values, so the store's column numbering stays aligned with the
        stream's tick numbering.
        """
        flushed = 0
        for t in range(self._watermark, tick + 1):
            bucket = self._pending.pop(t, {})
            cpu_util = self._last_cpu_util.copy()
            memory_gb = self._last_memory_gb.copy()
            for row, (util, mem) in bucket.items():
                cpu_util[row] = util
                memory_gb[row] = mem
            self.stats.gaps_filled += self.store.n_servers - len(bucket)
            self.store.append_samples(cpu_util, memory_gb)
            self._last_cpu_util = cpu_util
            self._last_memory_gb = memory_gb
            self.stats.ticks_flushed += 1
            flushed += 1
        self._watermark = tick + 1
        return flushed

    # -- placement queries ----------------------------------------------

    def host_of(self, vm_id: str) -> Optional[str]:
        """Current placement of a VM (None while unassigned)."""
        try:
            return self.plan.host_of(vm_id)
        except PlacementError as exc:
            raise ServiceError(str(exc)) from None

    def bootstrap(self) -> Dict[str, str]:
        """Size every VM from the store and first-fit place the fleet.

        Called once after seeding the store (or after the first flushed
        ticks).  Raises :class:`~repro.exceptions.PlacementError` if the
        fleet cannot fit — a bootstrap that does not fit is a capacity
        planning error, not a runtime fault.
        """
        if not self.store.n_points:
            raise ServiceError("cannot bootstrap from an empty store")
        self._refresh_demands(range(self.plan.n_vms))
        for row, vm_id in enumerate(self.plan.vm_ids):
            if self.plan.assignment_rows[row] >= 0:
                continue
            target = self._first_fit(row, exclude=-1, active_only=False)
            if target < 0:
                raise PlacementError(
                    f"bootstrap: {vm_id} does not fit on any host"
                )
            self.plan.apply_delta([vm_id], [self.caps.host_ids[target]])
        return self.plan.assignment()

    # -- replan cycle ----------------------------------------------------

    def replan_cycle(self) -> CycleReport:
        """Run one detect → select → delta-repack cycle."""
        start_seconds = self.clock.now()
        if self.config.rebuild_plan_each_cycle:
            self._rebuild_plan()
        detector_errors = 0
        migrations: List[Tuple[str, str, str]] = []
        touched: set = set()
        deadline_hit = False

        utilization = self._measure_host_utilization()
        for host in range(self.caps.n):
            self._history[host].append(float(utilization[host]))

        overloaded: List[int] = []
        underloaded: List[int] = []
        for host in self.plan.active_hosts():
            history = list(self._history[host])
            try:
                if self.overload_detector.detect(history):
                    overloaded.append(host)
                elif self.underload_detector.detect(history):
                    underloaded.append(host)
            except Exception:
                # A raising detector is a per-host fault: count it,
                # skip the host, keep the cycle alive.
                detector_errors += 1
        self.stats.detector_errors += detector_errors

        flagged_rows = [
            row
            for host in overloaded + underloaded
            for row in self.plan.vm_rows_of_host[host]
        ]
        self._refresh_demands(flagged_rows)

        for host in overloaded:
            if self._deadline_exceeded(start_seconds):
                deadline_hit = True
                break
            migrations.extend(self._relieve_overload(host, touched))
        if not deadline_hit:
            for host in underloaded:
                if self._deadline_exceeded(start_seconds):
                    deadline_hit = True
                    break
                migrations.extend(self._vacate_underload(host, touched))
        if deadline_hit:
            self.stats.deadline_aborts += 1

        latency_seconds = self.clock.now() - start_seconds
        self.stats.migrations_total += len(migrations)
        self.stats.record_cycle(
            latency_seconds, len(touched), self.config.stats_window
        )
        host_ids = self.caps.host_ids
        return CycleReport(
            cycle=self.stats.cycles,
            migrations=tuple(migrations),
            overloaded_hosts=tuple(host_ids[h] for h in overloaded),
            underloaded_hosts=tuple(host_ids[h] for h in underloaded),
            touched_hosts=tuple(host_ids[h] for h in sorted(touched)),
            latency_seconds=latency_seconds,
            deadline_hit=deadline_hit,
            detector_errors=detector_errors,
        )

    # -- internals -------------------------------------------------------

    def _rebuild_plan(self) -> None:
        """Equivalence-twin mode: from-scratch canonical rebuild."""
        plan = self.plan
        self.plan = IncrementalPlan.from_assignment(
            self.caps,
            plan.vm_ids,
            plan.cpu,
            plan.mem,
            plan.assignment(),
            plan.net,
            plan.dsk,
        )

    def _measure_host_utilization(self) -> np.ndarray:
        """Per-host CPU utilization from the latest flushed column."""
        if not self.store.n_points:
            return np.zeros(self.caps.n)
        assignment = np.asarray(self.plan.assignment_rows, dtype=np.intp)
        assigned = assignment >= 0
        demand_rpe2 = np.zeros(self.caps.n)
        np.add.at(
            demand_rpe2,
            assignment[assigned],
            self.store.last_cpu_rpe2()[assigned],
        )
        return demand_rpe2 / self._host_cpu_rpe2

    def _refresh_demands(self, rows: Sequence[int]) -> None:
        """Re-size the given VM rows from the rolling peak window."""
        if not self.store.n_points:
            return
        rows = list(rows)
        if not rows:
            return
        peak_cpu_rpe2, peak_memory_gb = self.store.peak_window(
            self.config.sizing_window_points
        )
        for row in rows:
            self.plan.set_demand(
                self.plan.vm_ids[row],
                float(peak_cpu_rpe2[row]),
                float(peak_memory_gb[row]),
                self.plan.net[row],
                self.plan.dsk[row],
            )

    def _host_fits(self, host: int) -> bool:
        caps = self.caps
        plan = self.plan
        return (
            plan.body_cpu[host] <= caps.eps_cpu[host]
            and plan.body_mem[host] <= caps.eps_mem[host]
            and plan.body_net[host] <= caps.eps_net[host]
            and plan.body_dsk[host] <= caps.eps_dsk[host]
        )

    def _first_fit(
        self, row: int, exclude: int, active_only: bool
    ) -> int:
        """First host (active first, then empty) that fits the row."""
        plan = self.plan
        for host in range(self.caps.n):
            if host != exclude and plan.vm_rows_of_host[host]:
                if plan.fits(row, host):
                    return host
        if not active_only:
            for host in range(self.caps.n):
                if host != exclude and not plan.vm_rows_of_host[host]:
                    if plan.fits(row, host):
                        return host
        return -1

    def _relieve_overload(
        self, source: int, touched: set
    ) -> List[Tuple[str, str, str]]:
        """Evict VMs in selector order until the host fits its bound.

        Each move is an atomic single-VM delta: a misfit counts as a
        placement failure and the loop moves to the next candidate —
        the plan is never left inconsistent.
        """
        plan = self.plan
        host_ids = self.caps.host_ids
        moves: List[Tuple[str, str, str]] = []
        order = self.selector.eviction_order(plan, source)
        for row in order:
            if self._host_fits(source):
                break
            target = self._first_fit(row, exclude=source, active_only=False)
            if target < 0:
                self.stats.placement_failures += 1
                continue
            vm_id = plan.vm_ids[row]
            try:
                touched.update(
                    plan.apply_delta([vm_id], [host_ids[target]])
                )
            except PlacementError:
                self.stats.placement_failures += 1
                continue
            moves.append((vm_id, host_ids[source], host_ids[target]))
        return moves

    def _vacate_underload(
        self, source: int, touched: set
    ) -> List[Tuple[str, str, str]]:
        """All-or-nothing vacate of an underloaded host.

        Targets are chosen by first-fit against *other active* hosts,
        accounting for earlier picks of the same vacate; if any VM has
        no target the host is left alone (counted as a vacate failure).
        The batch goes through one atomic ``apply_delta``.
        """
        plan = self.plan
        caps = self.caps
        host_ids = caps.host_ids
        rows = list(plan.vm_rows_of_host[source])
        if not rows:
            return []
        extra_cpu = [0.0] * caps.n
        extra_mem = [0.0] * caps.n
        extra_net = [0.0] * caps.n
        extra_dsk = [0.0] * caps.n
        targets: List[int] = []
        for row in rows:
            chosen = -1
            for host in range(caps.n):
                if host == source or not plan.vm_rows_of_host[host]:
                    continue
                if (
                    plan.body_cpu[host] + extra_cpu[host] + plan.cpu[row]
                    <= caps.eps_cpu[host]
                    and plan.body_mem[host] + extra_mem[host] + plan.mem[row]
                    <= caps.eps_mem[host]
                    and plan.body_net[host] + extra_net[host] + plan.net[row]
                    <= caps.eps_net[host]
                    and plan.body_dsk[host] + extra_dsk[host] + plan.dsk[row]
                    <= caps.eps_dsk[host]
                ):
                    chosen = host
                    break
            if chosen < 0:
                self.stats.vacate_failures += 1
                return []
            extra_cpu[chosen] += plan.cpu[row]
            extra_mem[chosen] += plan.mem[row]
            extra_net[chosen] += plan.net[row]
            extra_dsk[chosen] += plan.dsk[row]
            targets.append(chosen)
        vm_ids = [plan.vm_ids[row] for row in rows]
        try:
            touched.update(
                plan.apply_delta(
                    vm_ids, [host_ids[t] for t in targets]
                )
            )
        except PlacementError:
            self.stats.vacate_failures += 1
            return []
        return [
            (vm_id, host_ids[source], host_ids[target])
            for vm_id, target in zip(vm_ids, targets)
        ]

    def _deadline_exceeded(self, start_seconds: float) -> bool:
        return (
            self.clock.now() - start_seconds > self.config.deadline_seconds
        )
