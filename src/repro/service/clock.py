"""Clock abstraction for the online controller.

Every latency and deadline the service measures goes through a
:class:`Clock`, so tests drive the controller under a
:class:`VirtualClock` (fully deterministic, advanced explicitly by the
simulation harness) while ``repro-serve`` runs on a
:class:`MonotonicClock`.  Nothing in the decision path *branches* on
wall-clock time — the clock feeds telemetry and deadline enforcement
only — which is what keeps scripted replays reproducible.
"""

from __future__ import annotations

import time
from typing import Protocol

from repro.exceptions import ConfigurationError

__all__ = ["Clock", "MonotonicClock", "VirtualClock"]


class Clock(Protocol):
    """Monotonic seconds source (virtual in tests, real in serving)."""

    def now(self) -> float:
        """Current time in seconds from an arbitrary epoch."""


class VirtualClock:
    """Manually advanced clock for deterministic simulation."""

    def __init__(self, start_seconds: float = 0.0) -> None:
        self._now_seconds = float(start_seconds)

    def now(self) -> float:
        return self._now_seconds

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ConfigurationError(
                f"cannot advance a clock by {seconds} seconds"
            )
        self._now_seconds += seconds
        return self._now_seconds


class MonotonicClock:
    """Real monotonic clock (``repro-serve``'s latency measurements)."""

    def now(self) -> float:
        return time.perf_counter()
