"""Asyncio front-end: NDJSON socket server + monitoring firehose.

The server is deliberately thin: all protocol logic lives in
:func:`repro.service.protocol.handle_request` (sync, unit-tested
without sockets) and all decision logic in the controller.  What this
module adds is concurrency structure:

* :func:`serve_controller` — ``asyncio.start_server`` loop answering
  one NDJSON request per line, many clients at once.
* :func:`run_firehose` — a background task that pushes a scripted
  feed's batches through the controller's ingest path on a fixed
  cadence and replans periodically, simulating the monitoring
  firehose a production deployment would wire to its telemetry bus.

Both share one event loop and one controller.  Requests and firehose
ticks interleave at await points only, and every controller entry
point is synchronous — a placement query never observes a
half-applied delta (and ``apply_delta``'s atomicity guards even
exceptional paths).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.controller import (
    ConsolidationController,
    MonitoringSample,
)
from repro.service.harness import FaultInjector, ScriptedFeed
from repro.service.protocol import handle_request

__all__ = ["run_firehose", "serve_controller"]

#: Oversized request lines are rejected, not buffered without bound.
_MAX_LINE_BYTES = 1 << 16


async def _handle_connection(
    controller: ConsolidationController,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                response = {"ok": False, "error": "request line too long"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                break
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            response = handle_request(controller, text)
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    except asyncio.CancelledError:
        # Server shutting down while this connection is mid-read; the
        # close below is all the cleanup a leaf connection task needs.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass


async def serve_controller(
    controller: ConsolidationController,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.base_events.Server:
    """Start the NDJSON server; returns the listening server object.

    ``port=0`` binds an ephemeral port (tests read it back from
    ``server.sockets[0].getsockname()``).
    """

    async def connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(controller, reader, writer)

    return await asyncio.start_server(
        connection, host, port, limit=_MAX_LINE_BYTES
    )


async def run_firehose(
    controller: ConsolidationController,
    feed: ScriptedFeed,
    *,
    injector: Optional[FaultInjector] = None,
    tick_seconds: float = 0.01,
    replan_every: int = 1,
    repeat: bool = False,
) -> int:
    """Stream the feed through the controller; returns ticks delivered.

    Yields to the event loop between ticks (``tick_seconds`` sleep), so
    socket clients get answers *while* the stream is in flight — the
    concurrency property ``tests/service/test_server.py`` pins.  With
    ``repeat=True`` the script loops (re-numbered ticks) until the task
    is cancelled, which is how ``repro-serve`` runs indefinitely.
    """
    delivered = 0
    tick = feed.start_tick
    while True:
        for index in range(feed.n_ticks):
            batch = feed.tick_batch(index)
            # Re-number on repeat so ticks keep advancing monotonically.
            if tick != batch[0].tick:
                batch = [
                    MonitoringSample(
                        tick, s.vm_id, s.cpu_util, s.memory_gb
                    )
                    for s in batch
                ]
            if injector is not None:
                batch = injector.mangle(batch)
            for sample in batch:
                controller.ingest(sample)
            delivered += 1
            tick += 1
            if (index + 1) % replan_every == 0:
                controller.replan_cycle()
            await asyncio.sleep(tick_seconds)
        if not repeat:
            break
    if injector is not None:
        for sample in injector.drain():
            controller.ingest(sample)
    controller.flush_pending()
    controller.replan_cycle()
    return delivered
