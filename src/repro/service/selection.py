"""VM selection policies: which VM leaves an overloaded host first.

Neat's third subproblem.  Given an overloaded host, a selector ranks
the VMs on it and the controller evicts them in that order until the
host fits under its bound again.  Selectors return a full eviction
*order* (not a single pick) so the controller can walk it without
re-invoking the policy after every removal.

Both policies are deterministic: ties break on ascending plan row, so
a replayed stream always evicts the same VMs.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.core.incremental import IncrementalPlan
from repro.exceptions import ServiceError

__all__ = [
    "MaximumDemandSelector",
    "MinimumMigrationTimeSelector",
    "VMSelector",
]


class VMSelector(Protocol):
    """Ranks a host's VM rows into eviction order (first leaves first)."""

    def eviction_order(self, plan: IncrementalPlan, host: int) -> List[int]:
        """Plan rows on ``host``, ordered by eviction preference."""


def _host_rows(plan: IncrementalPlan, host: int) -> List[int]:
    if not 0 <= host < plan.n_hosts:
        raise ServiceError(f"no host index {host} in plan")
    return list(plan.vm_rows_of_host[host])


class MinimumMigrationTimeSelector:
    """Evict the VM that is fastest to migrate (smallest memory) first.

    Neat's MMT policy: live-migration time is dominated by the memory
    footprint to copy, so evicting small-memory VMs first minimises the
    time the host stays overloaded.
    """

    def eviction_order(self, plan: IncrementalPlan, host: int) -> List[int]:
        rows = _host_rows(plan, host)
        return sorted(rows, key=lambda row: (plan.mem[row], row))


class MaximumDemandSelector:
    """Evict the VM with the largest CPU demand first.

    Frees the most CPU per migration, so the fewest VMs move — the
    greedy complement to MMT when migration cost matters less than
    migration count.
    """

    def eviction_order(self, plan: IncrementalPlan, host: int) -> List[int]:
        rows = _host_rows(plan, host)
        return sorted(rows, key=lambda row: (-plan.cpu[row], row))
