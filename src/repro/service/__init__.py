"""Online consolidation service: streaming ingest + incremental replan.

The batch planners in :mod:`repro.core` answer "given 720 h of history,
what is the best schedule?".  This package answers the production
question the ROADMAP's north star poses: monitoring samples stream in
continuously, and placement decisions must come back at interactive
latency with *bounded* per-update work.  It follows OpenStack Neat's
four-subproblem decomposition — underload detection, overload
detection, VM selection, placement — wired into an event loop:

* :class:`~repro.service.controller.ConsolidationController` — ingests
  :class:`~repro.service.controller.MonitoringSample` streams into an
  appendable :class:`~repro.workloads.rolling.RollingTraceStore`,
  runs per-host detectors, and delta-repacks only the affected hosts
  against a shared :class:`~repro.core.incremental.IncrementalPlan`.
* :mod:`~repro.service.detectors` — threshold detectors plus a port of
  Neat's MHOD Markov-chain overload detector.
* :mod:`~repro.service.harness` — deterministic simulation and
  fault-injection harness (virtual clock, scripted feeds,
  dropped/duplicated/out-of-order updates).
* :mod:`~repro.service.server` / ``repro-serve`` — asyncio
  newline-delimited-JSON front-end answering placement queries while a
  monitoring firehose streams updates.

See ``docs/SERVICE.md`` for the architecture and protocol.
"""

from repro.service.clock import Clock, MonotonicClock, VirtualClock
from repro.service.controller import (
    ConsolidationController,
    ControllerConfig,
    ControllerStats,
    CycleReport,
    MonitoringSample,
)
from repro.service.detectors import (
    MHODOverloadDetector,
    ThresholdOverloadDetector,
    ThresholdUnderloadDetector,
)
from repro.service.selection import (
    MaximumDemandSelector,
    MinimumMigrationTimeSelector,
)

__all__ = [
    "Clock",
    "ConsolidationController",
    "ControllerConfig",
    "ControllerStats",
    "CycleReport",
    "MHODOverloadDetector",
    "MaximumDemandSelector",
    "MinimumMigrationTimeSelector",
    "MonitoringSample",
    "MonotonicClock",
    "ThresholdOverloadDetector",
    "ThresholdUnderloadDetector",
    "VirtualClock",
]
