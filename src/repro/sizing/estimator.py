"""Size estimation: from traces to placeable :class:`VMDemand` objects.

The Size-Estimation step of the consolidation flow (paper §2.1) applies a
sizing function to each VM's demand window and adjusts for the
virtualization platform:

* **CPU overhead** — a virtualized workload needs slightly more CPU than
  it did on bare metal (hypervisor scheduling, I/O virtualization); the
  paper's emulator "captures the impact of virtualization overhead ... in
  a configurable fashion".
* **Per-VM memory overhead** — hypervisor bookkeeping per VM.
* **Memory deduplication** — content-based page sharing reduces the
  memory that must be reserved (configurable; defaults to off because
  the paper's candidates are Windows physical servers whose monitored
  memory reflects real demand).

:class:`SizeEstimator` produces body-only demands; with a
:class:`~repro.sizing.functions.BodyTailSizing` it fills the tail fields
used by stochastic (PCP) placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


from typing import Optional

from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import VMDemand
from repro.sizing.functions import BodyTailSizing, MaxSizing, SizingFunction
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.workloads.trace import ServerTrace, TraceSet

__all__ = ["VirtualizationOverhead", "SizeEstimator"]


@dataclass(frozen=True)
class VirtualizationOverhead:
    """Platform overhead and dedup parameters applied during sizing."""

    cpu_overhead_frac: float = 0.10
    memory_overhead_gb: float = 0.125
    dedup_savings_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_overhead_frac < 0:
            raise ConfigurationError(
                f"cpu_overhead_frac must be >= 0, got {self.cpu_overhead_frac}"
            )
        if self.memory_overhead_gb < 0:
            raise ConfigurationError(
                f"memory_overhead_gb must be >= 0, got "
                f"{self.memory_overhead_gb}"
            )
        if not 0 <= self.dedup_savings_frac < 1:
            raise ConfigurationError(
                f"dedup_savings_frac must be in [0, 1), got "
                f"{self.dedup_savings_frac}"
            )

    def adjust_cpu(self, cpu_rpe2: float) -> float:
        """Inflate CPU demand by the hypervisor overhead."""
        return cpu_rpe2 * (1.0 + self.cpu_overhead_frac)

    def adjust_memory(self, memory_gb: float) -> float:
        """Apply dedup savings, then add the per-VM fixed overhead."""
        return memory_gb * (1.0 - self.dedup_savings_frac) + (
            self.memory_overhead_gb
        )


@dataclass(frozen=True)
class SizeEstimator:
    """Turns demand windows into :class:`VMDemand` reservations."""

    sizing: SizingFunction = field(default_factory=MaxSizing)
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )
    #: Optional I/O models; when set, every sized demand also carries a
    #: network / disk reservation (placement constraints, §3.1).
    network: Optional[NetworkDemandModel] = None
    disk: Optional[DiskDemandModel] = None

    def _network_for(self, workload_class: str, sized_cpu: float) -> float:
        if self.network is None:
            return 0.0
        return self.network.demand_mbps(workload_class, sized_cpu)

    def _disk_for(self, workload_class: str, sized_cpu: float) -> float:
        if self.disk is None:
            return 0.0
        return self.disk.demand_mbps(workload_class, sized_cpu)

    def estimate(self, trace: ServerTrace) -> VMDemand:
        """Size one VM over its (already windowed) trace."""
        cpu_window = trace.cpu_rpe2
        memory_window = trace.memory_gb.values
        if isinstance(self.sizing, BodyTailSizing):
            cpu_body, cpu_tail = self.sizing.split(cpu_window)
            memory_body, memory_tail = self.sizing.split(memory_window)
            adjusted_body = self.overhead.adjust_cpu(cpu_body)
            adjusted_tail = self.overhead.adjust_cpu(cpu_tail)
            return VMDemand(
                vm_id=trace.vm_id,
                cpu_rpe2=adjusted_body,
                memory_gb=self.overhead.adjust_memory(memory_body),
                tail_cpu_rpe2=adjusted_tail,
                # The fixed per-VM overhead is already counted in the body.
                tail_memory_gb=memory_tail
                * (1.0 - self.overhead.dedup_savings_frac),
                network_mbps=self._network_for(
                    trace.vm.workload_class, adjusted_body + adjusted_tail
                ),
                disk_mbps=self._disk_for(
                    trace.vm.workload_class, adjusted_body + adjusted_tail
                ),
            )
        adjusted_cpu = self.overhead.adjust_cpu(self.sizing.size(cpu_window))
        return VMDemand(
            vm_id=trace.vm_id,
            cpu_rpe2=adjusted_cpu,
            memory_gb=self.overhead.adjust_memory(
                self.sizing.size(memory_window)
            ),
            network_mbps=self._network_for(
                trace.vm.workload_class, adjusted_cpu
            ),
            disk_mbps=self._disk_for(
                trace.vm.workload_class, adjusted_cpu
            ),
        )

    def estimate_all(self, trace_set: TraceSet) -> List[VMDemand]:
        """Size every VM in a trace set (kept in trace-set order)."""
        return [self.estimate(trace) for trace in trace_set]

    def estimate_from_values(
        self,
        vm_id: str,
        cpu_rpe2: float,
        memory_gb: float,
        workload_class: Optional[str] = None,
    ) -> VMDemand:
        """Size from already-predicted scalars (dynamic consolidation).

        Dynamic consolidation predicts a peak per interval before sizing;
        by the time it reaches the estimator the window is a single value
        per resource.  Pass ``workload_class`` to include the network
        reservation when a network model is configured.
        """
        if cpu_rpe2 < 0 or memory_gb < 0:
            raise ConfigurationError(
                f"{vm_id}: predicted demand must be >= 0"
            )
        adjusted_cpu = self.overhead.adjust_cpu(cpu_rpe2)
        network = 0.0
        disk = 0.0
        if workload_class is not None:
            network = self._network_for(workload_class, adjusted_cpu)
            disk = self._disk_for(workload_class, adjusted_cpu)
        return VMDemand(
            vm_id=vm_id,
            cpu_rpe2=adjusted_cpu,
            memory_gb=self.overhead.adjust_memory(memory_gb),
            network_mbps=network,
            disk_mbps=disk,
        )
