"""Size estimation: from traces to placeable :class:`VMDemand` objects.

The Size-Estimation step of the consolidation flow (paper §2.1) applies a
sizing function to each VM's demand window and adjusts for the
virtualization platform:

* **CPU overhead** — a virtualized workload needs slightly more CPU than
  it did on bare metal (hypervisor scheduling, I/O virtualization); the
  paper's emulator "captures the impact of virtualization overhead ... in
  a configurable fashion".
* **Per-VM memory overhead** — hypervisor bookkeeping per VM.
* **Memory deduplication** — content-based page sharing reduces the
  memory that must be reserved (configurable; defaults to off because
  the paper's candidates are Windows physical servers whose monitored
  memory reflects real demand).

:class:`SizeEstimator` produces body-only demands; with a
:class:`~repro.sizing.functions.BodyTailSizing` it fills the tail fields
used by stochastic (PCP) placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.infrastructure.vm import VMDemand, WorkloadClass
from repro.sizing.functions import BodyTailSizing, MaxSizing, SizingFunction
from repro.sizing.network import DiskDemandModel, NetworkDemandModel
from repro.workloads.trace import ServerTrace, TraceSet

__all__ = ["VirtualizationOverhead", "SizeEstimator"]


def _split_matrix(
    matrix: np.ndarray, body_percentile: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise :meth:`BodyTailSizing.split` over a demand matrix.

    ``np.percentile(..., axis=1)`` runs the same interpolation per row
    as the 1-D call, so each ``(body, tail)`` pair is bit-identical to
    splitting the row on its own.
    """
    body = np.percentile(matrix, body_percentile, axis=1)
    tail = np.maximum(matrix.max(axis=1) - body, 0.0)
    return body, tail


@dataclass(frozen=True)
class DemandTable:
    """Columnar sized demands: one row per VM, one column per interval.

    The array counterpart of a ``List[VMDemand]`` per interval — all
    adjustments (overhead, dedup, I/O reservations) are already applied
    to whole matrices, and :class:`VMDemand` rows are materialized
    *lazily* (:meth:`demand`, :meth:`column`) only where an object is
    actually needed (error reporting, fallback interop).
    """

    vm_ids: Tuple[str, ...]
    cpu_rpe2: np.ndarray
    memory_gb: np.ndarray
    network_mbps: np.ndarray
    disk_mbps: np.ndarray

    @property
    def n_vms(self) -> int:
        return len(self.vm_ids)

    @property
    def n_columns(self) -> int:
        return self.cpu_rpe2.shape[1]

    def demand(self, row: int, column: int) -> VMDemand:
        """Materialize one sized VM at one interval."""
        return VMDemand(
            vm_id=self.vm_ids[row],
            cpu_rpe2=float(self.cpu_rpe2[row, column]),
            memory_gb=float(self.memory_gb[row, column]),
            network_mbps=float(self.network_mbps[row, column]),
            disk_mbps=float(self.disk_mbps[row, column]),
        )

    def column(self, column: int) -> List[VMDemand]:
        """Materialize one interval's full demand list (VM-row order)."""
        return [self.demand(row, column) for row in range(self.n_vms)]


@dataclass(frozen=True)
class VirtualizationOverhead:
    """Platform overhead and dedup parameters applied during sizing."""

    cpu_overhead_frac: float = 0.10
    memory_overhead_gb: float = 0.125
    dedup_savings_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_overhead_frac < 0:
            raise ConfigurationError(
                f"cpu_overhead_frac must be >= 0, got {self.cpu_overhead_frac}"
            )
        if self.memory_overhead_gb < 0:
            raise ConfigurationError(
                f"memory_overhead_gb must be >= 0, got "
                f"{self.memory_overhead_gb}"
            )
        if not 0 <= self.dedup_savings_frac < 1:
            raise ConfigurationError(
                f"dedup_savings_frac must be in [0, 1), got "
                f"{self.dedup_savings_frac}"
            )

    def adjust_cpu(self, cpu_rpe2: float) -> float:
        """Inflate CPU demand by the hypervisor overhead."""
        return cpu_rpe2 * (1.0 + self.cpu_overhead_frac)

    def adjust_memory(self, memory_gb: float) -> float:
        """Apply dedup savings, then add the per-VM fixed overhead."""
        return memory_gb * (1.0 - self.dedup_savings_frac) + (
            self.memory_overhead_gb
        )


@dataclass(frozen=True)
class SizeEstimator:
    """Turns demand windows into :class:`VMDemand` reservations."""

    sizing: SizingFunction = field(default_factory=MaxSizing)
    overhead: VirtualizationOverhead = field(
        default_factory=VirtualizationOverhead
    )
    #: Optional I/O models; when set, every sized demand also carries a
    #: network / disk reservation (placement constraints, §3.1).
    network: Optional[NetworkDemandModel] = None
    disk: Optional[DiskDemandModel] = None

    def _network_for(self, workload_class: str, sized_cpu: float) -> float:
        if self.network is None:
            return 0.0
        return self.network.demand_mbps(workload_class, sized_cpu)

    def _disk_for(self, workload_class: str, sized_cpu: float) -> float:
        if self.disk is None:
            return 0.0
        return self.disk.demand_mbps(workload_class, sized_cpu)

    def estimate(self, trace: ServerTrace) -> VMDemand:
        """Size one VM over its (already windowed) trace."""
        cpu_window = trace.cpu_rpe2
        memory_window = trace.memory_gb.values
        if isinstance(self.sizing, BodyTailSizing):
            cpu_body, cpu_tail = self.sizing.split(cpu_window)
            memory_body, memory_tail = self.sizing.split(memory_window)
            adjusted_body = self.overhead.adjust_cpu(cpu_body)
            adjusted_tail = self.overhead.adjust_cpu(cpu_tail)
            return VMDemand(
                vm_id=trace.vm_id,
                cpu_rpe2=adjusted_body,
                memory_gb=self.overhead.adjust_memory(memory_body),
                tail_cpu_rpe2=adjusted_tail,
                # The fixed per-VM overhead is already counted in the body.
                tail_memory_gb=memory_tail
                * (1.0 - self.overhead.dedup_savings_frac),
                network_mbps=self._network_for(
                    trace.vm.workload_class, adjusted_body + adjusted_tail
                ),
                disk_mbps=self._disk_for(
                    trace.vm.workload_class, adjusted_body + adjusted_tail
                ),
            )
        adjusted_cpu = self.overhead.adjust_cpu(self.sizing.size(cpu_window))
        return VMDemand(
            vm_id=trace.vm_id,
            cpu_rpe2=adjusted_cpu,
            memory_gb=self.overhead.adjust_memory(
                self.sizing.size(memory_window)
            ),
            network_mbps=self._network_for(
                trace.vm.workload_class, adjusted_cpu
            ),
            disk_mbps=self._disk_for(
                trace.vm.workload_class, adjusted_cpu
            ),
        )

    def estimate_all(
        self, trace_set: TraceSet, engine: str = "auto"
    ) -> List[VMDemand]:
        """Size every VM in a trace set (kept in trace-set order).

        ``engine="matrix"`` sizes all VMs from the cached
        :class:`~repro.workloads.store.TraceStore` matrices in a few
        column reductions; ``"scalar"`` is the retained per-trace
        reference; ``"auto"`` (default) picks the matrix path for the
        sizing functions it covers bit-identically (max and body/tail
        percentile reductions are exact row-wise) and falls back
        otherwise.  Both engines return identical demand lists.
        """
        if engine not in ("auto", "matrix", "scalar"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected 'auto', 'matrix' "
                "or 'scalar'"
            )
        if engine == "auto":
            supported = isinstance(self.sizing, (MaxSizing, BodyTailSizing))
            engine = "matrix" if supported else "scalar"
        if engine == "scalar":
            return [self.estimate(trace) for trace in trace_set]
        store = trace_set.store
        cpu = store.cpu_rpe2
        memory = store.memory_gb
        if cpu.shape[1] == 0 or cpu.shape[0] == 0:
            # Delegate empty-window error reporting to the reference.
            return [self.estimate(trace) for trace in trace_set]
        classes = [trace.vm.workload_class for trace in trace_set]
        vm_ids = list(store.vm_ids)
        if isinstance(self.sizing, BodyTailSizing):
            cpu_body, cpu_tail = _split_matrix(
                cpu, self.sizing.body_percentile
            )
            memory_body, memory_tail = _split_matrix(
                memory, self.sizing.body_percentile
            )
            adjusted_body = cpu_body * (1.0 + self.overhead.cpu_overhead_frac)
            adjusted_tail = cpu_tail * (1.0 + self.overhead.cpu_overhead_frac)
            sized_cpu = adjusted_body + adjusted_tail
            network, disk = self._io_columns(classes, sized_cpu)
            dedup_keep = 1.0 - self.overhead.dedup_savings_frac
            adjusted_memory = (
                memory_body * dedup_keep + self.overhead.memory_overhead_gb
            )
            tail_memory = memory_tail * dedup_keep
            return [
                VMDemand(
                    vm_id=vm_ids[row],
                    cpu_rpe2=float(adjusted_body[row]),
                    memory_gb=float(adjusted_memory[row]),
                    tail_cpu_rpe2=float(adjusted_tail[row]),
                    tail_memory_gb=float(tail_memory[row]),
                    network_mbps=float(network[row]),
                    disk_mbps=float(disk[row]),
                )
                for row in range(len(vm_ids))
            ]
        if not isinstance(self.sizing, MaxSizing):
            raise ConfigurationError(
                f"engine='matrix' does not cover sizing "
                f"{type(self.sizing).__name__}; use engine='scalar'"
            )
        adjusted_cpu = cpu.max(axis=1) * (
            1.0 + self.overhead.cpu_overhead_frac
        )
        adjusted_memory = memory.max(axis=1) * (
            1.0 - self.overhead.dedup_savings_frac
        ) + self.overhead.memory_overhead_gb
        network, disk = self._io_columns(classes, adjusted_cpu)
        return [
            VMDemand(
                vm_id=vm_ids[row],
                cpu_rpe2=float(adjusted_cpu[row]),
                memory_gb=float(adjusted_memory[row]),
                network_mbps=float(network[row]),
                disk_mbps=float(disk[row]),
            )
            for row in range(len(vm_ids))
        ]

    def _io_columns(
        self,
        workload_classes: Sequence[Optional[str]],
        sized_cpu: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Network/disk reservations for already-sized CPU columns.

        Grouped by workload class: each class resolves its intensity
        once and the reservation is one broadcast per class —
        elementwise identical to the per-VM model calls.
        """
        network = np.zeros_like(sized_cpu)
        disk = np.zeros_like(sized_cpu)
        if self.network is None and self.disk is None:
            return network, disk
        by_class: dict = {}
        for row, workload_class in enumerate(workload_classes):
            if workload_class is not None:
                by_class.setdefault(workload_class, []).append(row)
        for workload_class, row_list in by_class.items():
            rows = np.array(row_list, dtype=np.intp)
            top_level = WorkloadClass.top_level(workload_class)
            web = top_level == WorkloadClass.WEB
            if self.network is not None:
                intensity = (
                    self.network.web_mbps_per_rpe2
                    if web
                    else self.network.batch_mbps_per_rpe2
                )
                network[rows] = (
                    self.network.base_mbps + intensity * sized_cpu[rows]
                )
            if self.disk is not None:
                intensity = (
                    self.disk.web_mbps_per_rpe2
                    if web
                    else self.disk.batch_mbps_per_rpe2
                )
                disk[rows] = (
                    self.disk.base_mbps + intensity * sized_cpu[rows]
                )
        return network, disk

    def estimate_matrix(
        self,
        vm_ids: Sequence[str],
        cpu_rpe2: np.ndarray,
        memory_gb: np.ndarray,
        workload_classes: Optional[Sequence[Optional[str]]] = None,
    ) -> DemandTable:
        """Batched :meth:`estimate_from_values` over whole peak tables.

        ``cpu_rpe2`` / ``memory_gb`` are ``(n_vms, n_intervals)``
        predicted peaks; the overhead and I/O adjustments are applied to
        the full matrices (elementwise, so bit-identical to the scalar
        calls) and the result stays columnar — :class:`DemandTable`
        materializes :class:`VMDemand` rows only on request.
        """
        cpu_rpe2 = np.asarray(cpu_rpe2, dtype=float)
        memory_gb = np.asarray(memory_gb, dtype=float)
        if cpu_rpe2.ndim != 2 or cpu_rpe2.shape != memory_gb.shape:
            raise ConfigurationError(
                "estimate_matrix expects matching (n_vms, n_intervals) "
                "peak matrices"
            )
        if cpu_rpe2.shape[0] != len(vm_ids):
            raise ConfigurationError(
                f"{len(vm_ids)} vm_ids for {cpu_rpe2.shape[0]} peak rows"
            )
        negative = (cpu_rpe2 < 0).any(axis=1) | (memory_gb < 0).any(axis=1)
        if negative.any():
            offender = vm_ids[int(np.argmax(negative))]
            raise ConfigurationError(
                f"{offender}: predicted demand must be >= 0"
            )
        adjusted_cpu = cpu_rpe2 * (1.0 + self.overhead.cpu_overhead_frac)
        adjusted_memory = (
            memory_gb * (1.0 - self.overhead.dedup_savings_frac)
            + self.overhead.memory_overhead_gb
        )
        network = np.zeros_like(adjusted_cpu)
        disk = np.zeros_like(adjusted_cpu)
        if workload_classes is not None:
            network, disk = self._io_columns(workload_classes, adjusted_cpu)
        return DemandTable(
            vm_ids=tuple(vm_ids),
            cpu_rpe2=adjusted_cpu,
            memory_gb=adjusted_memory,
            network_mbps=network,
            disk_mbps=disk,
        )

    def estimate_from_values(
        self,
        vm_id: str,
        cpu_rpe2: float,
        memory_gb: float,
        workload_class: Optional[str] = None,
    ) -> VMDemand:
        """Size from already-predicted scalars (dynamic consolidation).

        Dynamic consolidation predicts a peak per interval before sizing;
        by the time it reaches the estimator the window is a single value
        per resource.  Pass ``workload_class`` to include the network
        reservation when a network model is configured.
        """
        if cpu_rpe2 < 0 or memory_gb < 0:
            raise ConfigurationError(
                f"{vm_id}: predicted demand must be >= 0"
            )
        adjusted_cpu = self.overhead.adjust_cpu(cpu_rpe2)
        network = 0.0
        disk = 0.0
        if workload_class is not None:
            network = self._network_for(workload_class, adjusted_cpu)
            disk = self._disk_for(workload_class, adjusted_cpu)
        return VMDemand(
            vm_id=vm_id,
            cpu_rpe2=adjusted_cpu,
            memory_gb=self.overhead.adjust_memory(memory_gb),
            network_mbps=network,
            disk_mbps=disk,
        )
