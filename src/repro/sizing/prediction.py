"""Demand predictors for dynamic consolidation (paper §2.1, *Prediction*).

Dynamic consolidation sizes each VM at "the estimated peak demand in the
consolidation window" (§5.1) — *estimated*, because the window lies in
the future.  Prediction error is the mechanism behind the paper's
contention results (Figs. 8, 9): a spike that the predictor did not see
coming lands on a tightly packed host.

All predictors implement :class:`Predictor`: given the demand history up
to now, predict the peak demand of the next ``horizon`` samples.

* :class:`OraclePredictor` — cheats by looking at the actual future;
  isolates packing effects from prediction effects in ablations.
* :class:`LastIntervalPredictor` — peak of the most recent interval.
* :class:`EwmaPredictor` — EWMA of past interval peaks.
* :class:`PeriodicPeakPredictor` — the default: max over the same
  time-of-day in the last few days plus a safety margin; tracks diurnal
  patterns well, misses heavy-tail spikes — exactly the error profile
  enterprise capacity tools exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigurationError, TraceError

__all__ = [
    "Predictor",
    "OraclePredictor",
    "LastIntervalPredictor",
    "EwmaPredictor",
    "PeriodicPeakPredictor",
]


def _check_history(history: np.ndarray) -> np.ndarray:
    history = np.asarray(history, dtype=float)
    if history.ndim != 1 or history.size == 0:
        raise TraceError("predictor needs a non-empty 1-D history")
    return history


@runtime_checkable
class Predictor(Protocol):
    """Predicts the peak demand of the next ``horizon`` samples."""

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        """Return the predicted peak for the next ``horizon`` samples.

        ``actual_future`` is only consulted by oracle-style predictors;
        honest predictors must ignore it.
        """
        ...


@dataclass(frozen=True)
class OraclePredictor:
    """Perfect foresight: returns the actual future peak.

    Requires ``actual_future``; used to separate "dynamic consolidation
    with perfect prediction" from "dynamic consolidation as deployable".
    """

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        _check_history(history)
        if actual_future is None:
            raise ConfigurationError(
                "OraclePredictor needs the actual future demand"
            )
        future = np.asarray(actual_future, dtype=float)
        if future.size < horizon:
            raise TraceError(
                f"actual future has {future.size} samples, need {horizon}"
            )
        return float(future[:horizon].max())


@dataclass(frozen=True)
class LastIntervalPredictor:
    """Peak of the most recent ``horizon`` samples (naive persistence)."""

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        return float(history[-min(horizon, history.size):].max())


@dataclass(frozen=True)
class EwmaPredictor:
    """EWMA over past interval peaks.

    The history is chopped into ``horizon``-sized intervals (most recent
    last); their peaks are smoothed with factor ``alpha``.  Responds to
    trends faster than :class:`PeriodicPeakPredictor` but has no notion
    of time-of-day.
    """

    alpha: float = 0.3

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        usable = (history.size // horizon) * horizon
        if usable == 0:
            return float(history.max())
        peaks = history[-usable:].reshape(-1, horizon).max(axis=1)
        estimate = peaks[0]
        for peak in peaks[1:]:
            estimate = self.alpha * peak + (1 - self.alpha) * estimate
        return float(estimate)


@dataclass(frozen=True)
class PeriodicPeakPredictor:
    """Same-time-of-day peak over recent days, with a safety margin.

    The prediction for the next interval is the maximum demand observed
    during the same interval of the day over the last ``lookback_days``
    days, inflated by ``safety_margin``.  A recency floor (the last
    ``horizon`` samples) protects against a workload that just shifted
    to a new level the daily history has not caught up with.
    """

    period: int = 24
    lookback_days: int = 7
    safety_margin: float = 0.10

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period}")
        if self.lookback_days <= 0:
            raise ConfigurationError(
                f"lookback_days must be > 0, got {self.lookback_days}"
            )
        if self.safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {self.safety_margin}"
            )

    def predict_peak(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> float:
        history = _check_history(history)
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        n = history.size
        samples = []
        # The next interval covers phases [n, n + horizon) mod period.
        for day in range(1, self.lookback_days + 1):
            start = n - day * self.period
            if start < 0:
                break
            end = min(start + horizon, n)
            samples.append(history[start:end])
        if samples:
            periodic_peak = max(float(s.max()) for s in samples if s.size)
        else:
            periodic_peak = float(history.max())
        recent_peak = float(history[-min(horizon, n):].max())
        return max(periodic_peak, recent_peak) * (1.0 + self.safety_margin)

    def predict_peak_matrix(
        self,
        history: np.ndarray,
        horizon: int,
        actual_future: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`predict_peak` over (n_vms, n_points) history.

        Semantically identical to looping ``predict_peak`` per row;
        used by dynamic consolidation, where the per-interval prediction
        of every VM is the planning hot path.
        """
        history = np.asarray(history, dtype=float)
        if history.ndim != 2 or history.shape[1] == 0:
            raise TraceError("predict_peak_matrix expects (n, t>0) history")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        n = history.shape[1]
        peaks = history[:, -min(horizon, n):].max(axis=1)  # recency floor
        saw_periodic = False
        for day in range(1, self.lookback_days + 1):
            start = n - day * self.period
            if start < 0:
                break
            end = min(start + horizon, n)
            if end > start:
                saw_periodic = True
                peaks = np.maximum(
                    peaks, history[:, start:end].max(axis=1)
                )
        if not saw_periodic:
            peaks = np.maximum(peaks, history.max(axis=1))
        return peaks * (1.0 + self.safety_margin)
